#!/bin/sh
set -e
cd /root/repo
for bin in table2 table3 table4 area_overhead vth_savings cooperative gap_sweep ablation_sensor ablation_rotation ablation_depth ablation_wakeup ablation_tradeoff power_savings thermal_coupling headline; do
  echo "=== running $bin ==="
  ./target/release/$bin > results/$bin.txt 2>results/$bin.log
done
echo ALL_DONE
