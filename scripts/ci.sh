#!/usr/bin/env sh
# Tier-1 verification: release build, full test suite, and a warning-free
# clippy pass over every target. Run from anywhere; works offline (all
# external deps are vendored under compat/).
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --all-targets --offline -- -D warnings

echo "ci: all green"
