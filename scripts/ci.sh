#!/usr/bin/env sh
# Tier-1 verification: release build, full test suite, and a warning-free
# clippy pass over every target. Run from anywhere; works offline (all
# external deps are vendored under compat/).
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline --workspace
cargo clippy --all-targets --offline -- -D warnings

# Overflow checks: the whole suite again with arithmetic overflow traps
# on, so release-profile wrap-arounds cannot hide in the simulator's
# counter and credit arithmetic. A separate target dir keeps the normal
# incremental caches intact.
CARGO_TARGET_DIR=target/overflow RUSTFLAGS="-C overflow-checks=on" \
    cargo test -q --offline --workspace

# Static analysis: the workspace must have zero unsuppressed findings
# under the full noc-analyze rule set (token rules plus the hot-path
# allocation, lock-order, blocking-under-lock, and panic-reachability
# passes).
cargo run -q --offline -p noc-analyze -- --json > /dev/null || {
    cargo run -q --offline -p noc-analyze || true
    echo "ci: noc-analyze found unsuppressed findings" >&2
    exit 1
}

# The fixture tree must trip every rule with its known multiplicity —
# one finding per fixture file, with alloc-in-hot-path covered in both
# the simulator and workload scopes (the analyzer's own tests assert the
# exact per-rule counts; here we gate the shipped binary).
if cargo run -q --offline -p noc-analyze -- --root tools/analyze/fixtures > /dev/null 2>&1; then
    echo "ci: analyzer fixtures unexpectedly clean" >&2
    exit 1
fi
fixture_json=$(cargo run -q --offline -p noc-analyze -- --json --root tools/analyze/fixtures || true)
echo "$fixture_json" | grep -q '"count": 10' || {
    echo "ci: analyzer fixtures must produce exactly 10 findings" >&2
    exit 1
}
for rule in no-unordered-map no-wall-clock no-os-random no-thread-spawn no-unwrap \
        alloc-in-hot-path lock-order blocking-under-lock panic-reachability; do
    echo "$fixture_json" | grep -q "\"rule\": \"$rule\"" || {
        echo "ci: fixture for rule $rule not detected" >&2
        exit 1
    }
done
echo "$fixture_json" | grep -q "acquisition path" || {
    echo "ci: lock-order finding lost its acquisition-path evidence" >&2
    exit 1
}

# Legacy lint shim: still answers the old CLI, still clean on the
# workspace, still trips the five token rules on the fixture tree.
cargo run -q --offline -p lint -- --json > /dev/null
if cargo run -q --offline -p lint -- --root tools/analyze/fixtures > /dev/null 2>&1; then
    echo "ci: lint shim unexpectedly clean on fixtures" >&2
    exit 1
fi

# Model check: every gating policy on small meshes under full runtime
# invariants (gating safety, conservation, idle-on budget, duty closure).
cargo run -q --release --offline -p nbti-noc-bench --bin model_check > /dev/null

# Protocol verification: the exhaustive explorer must close the 2x2/V=2
# state space at the default depth for every policy, reporting state
# counts and zero violations.
verifydir=$(mktemp -d)
trap 'rm -rf "${verifydir:-}"' EXIT
./target/release/nbti-noc verify > "$verifydir/verify.log" 2>&1 || {
    cat "$verifydir/verify.log" >&2
    echo "ci: protocol verification failed" >&2
    exit 1
}
for p in baseline rr-no-sensor sensor-wise-no-traffic sensor-wise sensor-wise-k2; do
    grep -q "^$p: [0-9][0-9]* unique states, .*, exhausted$" "$verifydir/verify.log" || {
        cat "$verifydir/verify.log" >&2
        echo "ci: verify did not exhaust the state space for $p" >&2
        exit 1
    }
done

# Counterexample smoke: a planted protocol fault must fail the
# verification and emit a counterexample trace that the standard
# telemetry pipeline accepts.
if ./target/release/nbti-noc verify --policy sw --depth 6 \
    --inject-fault gate-occupied --counterexample-out "$verifydir/cx.jsonl" \
    > /dev/null 2>&1; then
    echo "ci: planted gate-occupied fault went undetected" >&2
    exit 1
fi
test -s "$verifydir/cx.jsonl" || { echo "ci: empty counterexample trace" >&2; exit 1; }
./target/release/nbti-noc stats --trace "$verifydir/cx.jsonl" \
    | grep -q "violation" || {
    echo "ci: counterexample trace lost the violation event" >&2
    exit 1
}
rm -rf "$verifydir"
verifydir=""

# Telemetry smoke: a traced run must produce a parseable event trace and a
# non-empty metrics series, and `stats` must re-derive a digest from it.
teldir=$(mktemp -d)
trap 'rm -rf "$teldir" "${verifydir:-}" "${servedir:-}" "${campdir:-}" "${remotedir:-}" "${wldir:-}"; for p in "${serve_pid:-}" "${camp_pid:-}" "${rw1_pid:-}" "${rw2_pid:-}" "${rfront_pid:-}"; do [ -n "$p" ] && kill "$p" 2>/dev/null || true; done' EXIT
./target/release/nbti-noc run --cores 4 --vcs 2 --rate 0.1 --policy sw \
    --warmup 200 --measure 2000 \
    --trace-out "$teldir/events.jsonl" --metrics-out "$teldir/metrics.csv" \
    --sample-period 500 > /dev/null 2>&1
test -s "$teldir/events.jsonl" || { echo "ci: empty telemetry trace" >&2; exit 1; }
test -s "$teldir/metrics.csv" || { echo "ci: empty telemetry metrics" >&2; exit 1; }
./target/release/nbti-noc stats --trace "$teldir/events.jsonl" \
    | grep -q "digest: [0-9a-f]\{16\}" || {
    echo "ci: stats did not report a digest" >&2
    exit 1
}

# Profiler smoke: `run --profile` must print the per-stage latency table
# and a kcycles/s throughput summary. (Bit-identity of profiled runs is
# pinned by the noc-sim and sensorwise unit tests.)
./target/release/nbti-noc run --cores 4 --vcs 2 --rate 0.1 --policy sw \
    --warmup 200 --measure 2000 --profile > "$teldir/profile.log" 2>&1
for stage in begin_cycle routing allocation traversal controller finish_cycle; do
    grep -q "^$stage " "$teldir/profile.log" || {
        cat "$teldir/profile.log" >&2
        echo "ci: run --profile missing stage $stage" >&2
        exit 1
    }
done
grep -q "kcycles/s" "$teldir/profile.log" || {
    echo "ci: run --profile reported no throughput summary" >&2
    exit 1
}

# Workload smoke: generate a deterministic mix trace, verify every chunk
# checksum, then require the live-mix run and the trace replay to agree
# bit for bit on the telemetry digest — on the mesh and on a torus.
wldir=$(mktemp -d)
./target/release/nbti-noc trace gen --out "$wldir/mix.nbtitrc" \
    --mix hotspot-server --nodes 16 --cycles 3000 --rate 0.15 --seed 7 > /dev/null
./target/release/nbti-noc trace verify --trace "$wldir/mix.nbtitrc" > /dev/null || {
    echo "ci: trace verify rejected a freshly generated trace" >&2
    exit 1
}
for topo in mesh torus; do
    live=$(./target/release/nbti-noc run --cores 16 --topology "$topo" \
        --mix hotspot-server --rate 0.15 --seed 7 --warmup 0 --measure 3000 \
        --invariants full --digest 2>/dev/null | sed -n 's/^digest: //p')
    replay=$(./target/release/nbti-noc run --cores 16 --topology "$topo" \
        --trace-in "$wldir/mix.nbtitrc" --warmup 0 --measure 3000 \
        --invariants full --digest 2>/dev/null | sed -n 's/^digest: //p')
    [ -n "$live" ] && [ "$live" = "$replay" ] || {
        echo "ci: $topo trace replay digest '$replay' != live mix '$live'" >&2
        exit 1
    }
done
# A corrupted trace must be rejected with the typed checksum error.
cp "$wldir/mix.nbtitrc" "$wldir/bad.nbtitrc"
printf '\377' | dd of="$wldir/bad.nbtitrc" bs=1 seek=64 conv=notrunc 2>/dev/null
if ./target/release/nbti-noc trace verify --trace "$wldir/bad.nbtitrc" > /dev/null 2>&1; then
    echo "ci: corrupted trace passed verification" >&2
    exit 1
fi
rm -rf "$wldir"
wldir=""

# Service smoke: serve on an ephemeral port, drive it with the submitting
# client (which cross-checks every served digest against a local run),
# scrape the Prometheus exposition, then shut down over HTTP and verify
# the drain accounted for every job and dumped the span flight recorder.
servedir=$(mktemp -d)
./target/release/nbti-noc serve --addr 127.0.0.1:0 --workers 2 --queue-depth 4 \
    --spans-out "$servedir/spans.jsonl" > "$servedir/serve.log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^listening on //p' "$servedir/serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "ci: service never reported its address" >&2; exit 1; }
./target/release/nbti-noc submit --addr "$addr" --count 6 --concurrency 3 \
    --measure 3000 > "$servedir/submit.log" 2>&1 || {
    cat "$servedir/submit.log" >&2
    echo "ci: service smoke failed" >&2
    exit 1
}
grep -q "digest check: 6/6" "$servedir/submit.log" || {
    echo "ci: served digests did not match local runs" >&2
    exit 1
}

# Metrics smoke: /metrics must serve Prometheus text exposition whose
# counters agree with the six jobs the client just ran (and with /stats).
curl -sf "http://$addr/metrics" > "$servedir/metrics.txt" || {
    echo "ci: /metrics scrape failed" >&2
    exit 1
}
grep -q '^# TYPE noc_request_duration_us histogram$' "$servedir/metrics.txt" || {
    echo "ci: /metrics lost the request-latency histogram" >&2
    exit 1
}
grep -q '^noc_accepted_total 6$' "$servedir/metrics.txt" || {
    cat "$servedir/metrics.txt" >&2
    echo "ci: /metrics accepted counter != 6" >&2
    exit 1
}
grep -q '^noc_jobs{state="done"} 6$' "$servedir/metrics.txt" || {
    echo "ci: /metrics jobs-by-state gauge != 6 done" >&2
    exit 1
}
curl -sf "http://$addr/stats" | grep -q '"accepted":6' || {
    echo "ci: /stats disagrees with /metrics on accepted jobs" >&2
    exit 1
}

curl -sf -X POST "http://$addr/shutdown" > /dev/null || {
    echo "ci: HTTP shutdown failed" >&2
    exit 1
}
wait "$serve_pid" || { echo "ci: serve exited nonzero" >&2; exit 1; }
serve_pid=""
grep -q "accepted 6 | completed 6" "$servedir/serve.log" || {
    cat "$servedir/serve.log" >&2
    echo "ci: graceful shutdown did not drain all jobs" >&2
    exit 1
}

# Span smoke: the shutdown dump must parse and contain the full
# request -> job -> experiment chain.
test -s "$servedir/spans.jsonl" || { echo "ci: no span dump on shutdown" >&2; exit 1; }
./target/release/nbti-noc spans "$servedir/spans.jsonl" --json \
    | grep -q '"stage":"request/job/experiment"' || {
    echo "ci: span summary lost the request/job/experiment chain" >&2
    exit 1
}
rm -rf "$servedir"

# Campaign smoke: SIGKILL a 4-epoch lifetime campaign mid-flight, resume
# from its checkpoint, and require the final chained digest to match an
# uninterrupted run of the same spec bit for bit.
campdir=$(mktemp -d)
./target/release/nbti-noc campaign run --checkpoint "$campdir/straight.ckpt" \
    --epochs 4 --warmup 300 --measure 10000 > "$campdir/straight.log" 2>&1
straight=$(sed -n 's/^chained digest: //p' "$campdir/straight.log")
[ -n "$straight" ] || { echo "ci: campaign reported no chained digest" >&2; exit 1; }
./target/release/nbti-noc campaign run --checkpoint "$campdir/killed.ckpt" \
    --epochs 4 --warmup 300 --measure 10000 > "$campdir/killed.log" 2>&1 &
camp_pid=$!
for _ in $(seq 1 200); do
    [ -s "$campdir/killed.ckpt" ] && break
    sleep 0.02
done
kill -9 "$camp_pid" 2>/dev/null || true
wait "$camp_pid" 2>/dev/null || true
camp_pid=""
[ -s "$campdir/killed.ckpt" ] || { echo "ci: no checkpoint written before kill" >&2; exit 1; }
./target/release/nbti-noc campaign resume --checkpoint "$campdir/killed.ckpt" \
    > "$campdir/resumed.log" 2>&1 || {
    cat "$campdir/resumed.log" >&2
    echo "ci: campaign resume failed" >&2
    exit 1
}
resumed=$(sed -n 's/^chained digest: //p' "$campdir/resumed.log")
[ "$straight" = "$resumed" ] || {
    echo "ci: resumed campaign digest $resumed != uninterrupted $straight" >&2
    exit 1
}
rm -rf "$campdir"
campdir=""

# Distributed campaign smoke: two workers sharing a result store, a remote
# 4-epoch campaign, SIGKILL of one worker AND the front end mid-flight,
# then `campaign resume` against the survivor — the final chained digest
# must match a single-process run of the same spec bit for bit.
remotedir=$(mktemp -d)
./target/release/nbti-noc campaign run --checkpoint "$remotedir/local.ckpt" \
    --epochs 4 --warmup 300 --measure 20000 > "$remotedir/local.log" 2>&1
local_digest=$(sed -n 's/^chained digest: //p' "$remotedir/local.log")
[ -n "$local_digest" ] || { echo "ci: local reference campaign reported no digest" >&2; exit 1; }
./target/release/nbti-noc serve --addr 127.0.0.1:0 --workers 2 \
    --cache-dir "$remotedir/store" > "$remotedir/w1.log" 2>&1 &
rw1_pid=$!
./target/release/nbti-noc serve --addr 127.0.0.1:0 --workers 2 \
    --cache-dir "$remotedir/store" > "$remotedir/w2.log" 2>&1 &
rw2_pid=$!
rw1_addr=""; rw2_addr=""
for _ in $(seq 1 50); do
    rw1_addr=$(sed -n 's/^listening on //p' "$remotedir/w1.log")
    rw2_addr=$(sed -n 's/^listening on //p' "$remotedir/w2.log")
    [ -n "$rw1_addr" ] && [ -n "$rw2_addr" ] && break
    sleep 0.1
done
[ -n "$rw1_addr" ] && [ -n "$rw2_addr" ] || {
    echo "ci: remote-campaign workers never reported their addresses" >&2
    exit 1
}
./target/release/nbti-noc campaign run --checkpoint "$remotedir/remote.ckpt" \
    --epochs 4 --warmup 300 --measure 20000 \
    --store "$remotedir/store" --remote "$rw1_addr,$rw2_addr" --retries 3 \
    > "$remotedir/front.log" 2>&1 &
rfront_pid=$!
for _ in $(seq 1 200); do
    [ -s "$remotedir/remote.ckpt" ] && break
    sleep 0.02
done
[ -s "$remotedir/remote.ckpt" ] || {
    echo "ci: remote campaign wrote no checkpoint before the kill" >&2
    exit 1
}
kill -9 "$rw1_pid" "$rfront_pid" 2>/dev/null || true
wait "$rfront_pid" 2>/dev/null || true
rw1_pid=""; rfront_pid=""
./target/release/nbti-noc campaign resume --checkpoint "$remotedir/remote.ckpt" \
    --store "$remotedir/store" --remote "$rw2_addr" --retries 3 \
    > "$remotedir/resumed.log" 2>&1 || {
    cat "$remotedir/resumed.log" >&2
    echo "ci: remote campaign resume failed" >&2
    exit 1
}
remote_digest=$(sed -n 's/^chained digest: //p' "$remotedir/resumed.log")
[ "$local_digest" = "$remote_digest" ] || {
    echo "ci: remote campaign digest $remote_digest != local $local_digest" >&2
    exit 1
}
curl -sf -X POST "http://$rw2_addr/shutdown" > /dev/null || true
wait "$rw2_pid" 2>/dev/null || true
rw2_pid=""
rm -rf "$remotedir"
remotedir=""

# Bench trajectories: the serving and campaign benches must run clean and
# append to their BENCH_*.json files (small configurations — this gates
# the harnesses, not absolute numbers).
cargo run -q --release --offline -p nbti-noc-bench --bin service_throughput -- \
    --count 8 --measure 1000 > /dev/null
cargo run -q --release --offline -p nbti-noc-bench --bin campaign_epochs -- \
    --epochs 4 --measure 1500 --warmup 300 > /dev/null
cargo run -q --release --offline -p nbti-noc-bench --bin campaign_remote -- \
    --epochs 4 --measure 1500 --warmup 300 > /dev/null
grep -q '"mode":"remote".*"dispatch_p50_us":' BENCH_campaign.json || {
    echo "ci: campaign_remote did not append a remote-mode entry" >&2
    exit 1
}
cargo run -q --release --offline -p nbti-noc-bench --bin verify_throughput -- \
    --symmetry-only > /dev/null
cargo run -q --release --offline -p nbti-noc-bench --bin analyze_throughput -- \
    --iters 3 > /dev/null
cargo run -q --release --offline -p nbti-noc-bench --bin sim_throughput -- \
    --measure 3000 --warmup 300 > /dev/null
grep -q '"kcycles_per_sec":' BENCH_sim.json || {
    echo "ci: sim_throughput did not append a kcycles/s entry" >&2
    exit 1
}
cargo run -q --release --offline -p nbti-noc-bench --bin workload_throughput -- \
    --cycles 3000 > /dev/null
grep -q '"trace_records_per_sec":' BENCH_workload.json || {
    echo "ci: workload_throughput did not append a trace-records/s entry" >&2
    exit 1
}
grep -q '"topo_kcycles_per_sec":{"mesh":' BENCH_workload.json || {
    echo "ci: workload_throughput did not append per-topology kcycles/s" >&2
    exit 1
}

echo "ci: all green"
