//! Real-traffic demo: a random SPLASH2/WCET benchmark mix on a 16-core
//! mesh (the paper's Table IV protocol, one iteration), comparing the
//! rr-no-sensor and sensor-wise policies port by port.
//!
//! ```sh
//! cargo run --release --example real_traffic_mix
//! ```

use nbti_noc::prelude::*;

fn main() {
    let noc = NocConfig::paper_synthetic(16, 2);
    let mesh = Mesh2D::new(noc.cols, noc.rows);

    // One random benchmark per core, as the paper picks per iteration.
    let mix = BenchmarkMix::random(mesh.num_nodes(), 2013);
    println!("benchmark mix: {}\n", mix.label());

    let mut results = Vec::new();
    for policy in [PolicyKind::RrNoSensor, PolicyKind::SensorWise] {
        let mut traffic = AppTraffic::new(mesh, &mix, 99);
        let cfg = ExperimentConfig::new(noc.clone(), policy)
            .with_cycles(5_000, 50_000)
            .with_pv_seed(4242);
        results.push(run_experiment(&cfg, &mut traffic));
    }
    let (rr, sw) = (&results[0], &results[1]);

    println!(
        "{:<10} {:>4} {:>10} {:>10} {:>8}   (east input of each diagonal router)",
        "router", "MD", "rr MD", "sw MD", "gap"
    );
    for node in mesh.main_diagonal() {
        // The bottom-right corner has no east neighbour; sample west there.
        let port = if mesh.neighbor(node, Direction::East).is_some() {
            PortId::router_input(node, Direction::East)
        } else {
            PortId::router_input(node, Direction::West)
        };
        let rp = rr.port(port).expect("sampled port exists");
        let sp = sw.port(port).expect("sampled port exists");
        println!(
            "{:<10} {:>4} {:>9.1}% {:>9.1}% {:>7.1}%",
            port.to_string(),
            format!("VC{}", rp.md_vc),
            rp.md_duty(),
            sp.md_duty(),
            rp.md_duty() - sp.md_duty()
        );
    }

    println!(
        "\nnetwork health: rr latency {:?} cycles, sensor-wise latency {:?} cycles \
         ({} / {} packets delivered)",
        rr.net.avg_latency().map(|l| l.round()),
        sw.net.avg_latency().map(|l| l.round()),
        rr.net.packets_ejected,
        sw.net.packets_ejected
    );
}
