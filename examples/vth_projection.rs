//! Ten-year threshold-voltage projection: feed each policy's measured
//! NBTI-duty-cycle through the paper's Eq. 1 long-term model and plot the
//! ΔVth trajectory of the most degraded buffer as a text chart — the
//! extraction behind the paper's "54.2 % net NBTI Vth saving" headline.
//!
//! ```sh
//! cargo run --release --example vth_projection
//! ```

use nbti_model::VthProjection;
use nbti_noc::prelude::*;

fn main() {
    let scenario = SyntheticScenario {
        cores: 16,
        vcs: 4,
        injection_rate: 0.2,
    };
    println!("scenario {}: measuring duty cycles...\n", scenario.name());

    let model = LongTermModel::calibrated_45nm();
    let years = 10u32;
    let points = 20usize;
    let mut series = Vec::new();
    for policy in PolicyKind::ALL {
        let result = scenario.run(policy, 2_000, 20_000);
        let port = result.east_input(NodeId(0));
        let alpha = port.md_duty() / 100.0;
        let proj = VthProjection::over_years(&model, alpha, years, points);
        series.push((policy, alpha, proj));
    }

    // Text chart: ΔVth (mV) over years, one column per sample.
    println!("ΔVth of the most degraded VC buffer over {years} years (mV):\n");
    print!("{:<24} ", "policy (α)");
    for i in (points / 5..=points).step_by(points / 5) {
        print!("{:>8}", format!("y{}", i * years as usize / points));
    }
    println!();
    for (policy, alpha, proj) in &series {
        print!("{:<24} ", format!("{} ({:.2})", policy.label(), alpha));
        for i in (points / 5..=points).step_by(points / 5) {
            print!("{:>8.1}", proj.points()[i - 1].delta_vth.as_millivolts());
        }
        println!();
    }

    let baseline = series
        .iter()
        .find(|(p, _, _)| *p == PolicyKind::Baseline)
        .expect("baseline ran");
    println!("\nnet Vth saving vs the NBTI-unaware baseline after {years} years:");
    for (policy, _, proj) in &series {
        if *policy == PolicyKind::Baseline {
            continue;
        }
        let saving = (1.0 - proj.final_shift() / baseline.2.final_shift()) * 100.0;
        println!("  {:<24} {:>5.1}%", policy.label(), saving);
    }
}
