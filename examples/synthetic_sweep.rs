//! Synthetic-pattern sweep: how the sensor-wise gap behaves across traffic
//! patterns and offered loads — the extension study behind the paper's
//! observation that the 2-VC gap shrinks once the network congests while
//! the 4-VC gap keeps growing.
//!
//! ```sh
//! cargo run --release --example synthetic_sweep
//! ```

use nbti_noc::prelude::*;
use sensorwise::PortResult;

/// Runs one (pattern, rate) point under a policy and returns the result of
/// router 0's east input port.
fn run_point(pattern: DestinationPattern, rate: f64, vcs: usize, policy: PolicyKind) -> PortResult {
    let noc = NocConfig::paper_synthetic(16, vcs);
    let mesh = Mesh2D::new(noc.cols, noc.rows);
    let mut traffic = SyntheticTraffic::new(mesh, pattern, rate, noc.flits_per_packet, 77);
    let cfg = ExperimentConfig::new(noc, policy)
        .with_cycles(2_000, 20_000)
        .with_pv_seed(1234);
    let result = run_experiment(&cfg, &mut traffic);
    result.east_input(NodeId(0)).clone()
}

fn main() {
    let patterns = [
        DestinationPattern::UniformRandom,
        DestinationPattern::Transpose,
        DestinationPattern::BitComplement,
        DestinationPattern::Tornado,
        DestinationPattern::HotSpot {
            targets: vec![NodeId(0), NodeId(15)],
            fraction: 0.4,
        },
    ];
    println!("16-core mesh, 2 VCs — rr-no-sensor vs sensor-wise on router 0's east input\n");
    println!(
        "{:<16} {:>6} {:>4} {:>10} {:>10} {:>8}",
        "pattern", "rate", "MD", "rr MD", "sw MD", "gap"
    );
    for pattern in &patterns {
        for rate in [0.2, 0.5] {
            let rr = run_point(pattern.clone(), rate, 2, PolicyKind::RrNoSensor);
            let sw = run_point(pattern.clone(), rate, 2, PolicyKind::SensorWise);
            assert_eq!(rr.md_vc, sw.md_vc, "same PV seed, same MD VC");
            println!(
                "{:<16} {:>6.2} {:>4} {:>9.1}% {:>9.1}% {:>7.1}%",
                pattern.name(),
                rate,
                format!("VC{}", rr.md_vc),
                rr.md_duty(),
                sw.md_duty(),
                rr.md_duty() - sw.md_duty()
            );
        }
    }
    println!(
        "\nnote: the gap holds across patterns while the network has gating \
         headroom; once a pattern saturates the sampled port (transpose or \
         bit-complement at 0.5), every VC is busy, nothing can be gated, \
         and the gap collapses — the same congestion effect the paper \
         observes on its 2-VC scenarios."
    );
}
