//! Trace record and replay: capture a stochastic workload once, then feed
//! the *identical* flit arrival sequence to two different policies — the
//! cleanest way to attribute duty-cycle differences to the policy alone.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use nbti_noc::prelude::*;
use sensorwise::PortResult;

fn run_with(trace: Trace, policy: PolicyKind) -> (PortResult, u64) {
    let noc = NocConfig::paper_synthetic(4, 2);
    let mut replay = TraceReplay::new(trace);
    let cfg = ExperimentConfig::new(noc, policy)
        .with_cycles(1_000, 15_000)
        .with_pv_seed(31337);
    let result = run_experiment(&cfg, &mut replay);
    (
        result.east_input(NodeId(0)).clone(),
        result.net.packets_ejected,
    )
}

fn main() -> std::io::Result<()> {
    // 1. Record a bursty application workload.
    let mesh = Mesh2D::square(2);
    let mix = BenchmarkMix::from_names(&["fft", "radix", "crc", "ocean"]);
    let mut recorder = TraceRecorder::new(AppTraffic::new(mesh, &mix, 5));
    let mut sink = Vec::new();
    for cycle in 0..16_000 {
        recorder.emit(cycle, &mut sink);
    }
    let trace = recorder.into_trace();
    println!(
        "recorded {} packets from mix `{}`",
        trace.len(),
        mix.label()
    );

    // 2. Round-trip through the on-disk format (demonstrates persistence).
    let mut text = Vec::new();
    trace.to_writer(&mut text)?;
    let reloaded = Trace::from_reader(text.as_slice())?;
    assert_eq!(reloaded, trace);
    println!(
        "trace round-trips through the v1 text format ({} bytes)",
        text.len()
    );

    // 3. Replay the identical arrivals under both policies.
    println!(
        "\n{:<16} {:>8} {:>8} {:>6} {:>10}",
        "policy", "VC0", "VC1", "MD", "delivered"
    );
    for policy in [PolicyKind::RrNoSensor, PolicyKind::SensorWise] {
        let (port, delivered) = run_with(reloaded.clone(), policy);
        println!(
            "{:<16} {:>7.1}% {:>7.1}% {:>6} {:>10}",
            policy.label(),
            port.duty_percent[0],
            port.duty_percent[1],
            format!("VC{}", port.md_vc),
            delivered
        );
    }
    println!("\nsame arrivals, same Vth sample — the duty difference is pure policy.");
    Ok(())
}
