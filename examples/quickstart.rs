//! Quickstart: run the paper's sensor-wise policy against the reference
//! round-robin policy on a 4-core mesh and look at what NBTI sees.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nbti_noc::prelude::*;

fn main() {
    // The paper's smallest synthetic scenario: a 2x2 mesh, 2 VCs per input
    // port, uniform traffic at 0.1 flits/cycle/port.
    let scenario = SyntheticScenario {
        cores: 4,
        vcs: 2,
        injection_rate: 0.1,
    };
    println!(
        "scenario {} ({} VCs, effective rate {:.2} flits/cycle/port)",
        scenario.name(),
        scenario.vcs,
        scenario.effective_rate()
    );

    // Run every policy on the same process-variation sample and the same
    // kind of traffic. The paper samples the upper-left router's east
    // input port; so do we.
    let sample = NodeId(0);
    let model = LongTermModel::calibrated_45nm();
    println!(
        "\n{:<24} {:>8} {:>8}   {:>5}  {:>22}",
        "policy", "VC0", "VC1", "MD", "10y Vth saving on MD"
    );
    for policy in PolicyKind::ALL {
        let result = scenario.run(policy, 2_000, 20_000);
        let port = result.east_input(sample);
        let saving = vth_saving_percent(&model, port.md_duty() / 100.0);
        println!(
            "{:<24} {:>7.1}% {:>7.1}%   VC{:<3} {:>21.1}%",
            policy.label(),
            port.duty_percent[0],
            port.duty_percent[1],
            port.md_vc,
            saving
        );
    }

    println!(
        "\nreading: lower duty cycle on the most degraded (MD) VC means less \
         NBTI stress;\nthe sensor-wise policy shields exactly that buffer \
         while keeping the network functional."
    );
}
