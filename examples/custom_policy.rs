//! Writing your own gating policy.
//!
//! This example implements `GatingPolicy` for a naive *pinned* policy that
//! always designates the same VC, drives the simulation loop manually
//! (the same `begin_cycle` / `port_view` / `apply_gate` / `finish_cycle`
//! sequence the experiment runner uses), and shows why sensor steering
//! matters: the pinned policy concentrates all idle stress on one buffer —
//! and with an unlucky pin, on the most degraded one.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use nbti_noc::prelude::*;
use sensorwise::{GatingPolicy, NbtiMonitor};

/// A deliberately bad policy: always keep VC `pin` as the designated idle
/// VC, ignoring both traffic and sensors.
struct PinnedPolicy {
    pin: usize,
}

impl GatingPolicy for PinnedPolicy {
    fn decide(&mut self, _cycle: u64, view: &PortView, _md: usize) -> GateAction {
        if view.vc_status[self.pin].is_free() {
            GateAction::KeepOneIdle { vc: self.pin }
        } else {
            // Pinned VC busy: gate the rest, accept the allocation stall.
            GateAction::AllIdleOff
        }
    }

    fn name(&self) -> &'static str {
        "pinned"
    }
}

fn main() {
    let noc = NocConfig::paper_synthetic(4, 2);
    let mesh = Mesh2D::new(noc.cols, noc.rows);
    let mut traffic = SyntheticTraffic::uniform(mesh, 0.3, noc.flits_per_packet, 3);
    let mut net = Network::new(noc).expect("valid config");
    let port_ids: Vec<PortId> = net.port_ids().to_vec();

    // NBTI bookkeeping exactly as the runner does it.
    let model = LongTermModel::calibrated_45nm();
    let mut pv = ProcessVariation::paper_45nm(77);
    let mut monitor = NbtiMonitor::with_ideal_sensors(&port_ids, 2, &mut pv, model);
    let mut policies: Vec<PinnedPolicy> =
        port_ids.iter().map(|_| PinnedPolicy { pin: 0 }).collect();

    for cycle in 0..30_000u64 {
        inject_from(&mut traffic, &mut net);
        net.begin_cycle();
        for (i, &pid) in port_ids.iter().enumerate() {
            let view = net.port_view(pid);
            let md = monitor.most_degraded(pid);
            let action = policies[i].decide(cycle, &view, md);
            net.apply_gate(pid, action);
        }
        net.finish_cycle();
        for &pid in &port_ids {
            let statuses = net.vc_statuses(pid);
            monitor.record_cycle(pid, &statuses);
        }
    }

    let east0 = PortId::router_input(NodeId(0), Direction::East);
    let duty = monitor.duty_cycles_percent(east0);
    let md = monitor.most_degraded_initial(east0);
    println!("pinned policy on {east0}: duty = {duty:?}, most degraded = VC{md}");
    println!(
        "delivered {} packets, avg latency {:.1}",
        net.stats().packets_ejected,
        net.stats().avg_latency().unwrap_or(f64::NAN)
    );
    if md == 0 {
        println!(
            "\nthe pin landed on the most degraded VC: all idle stress goes exactly\n\
             where it hurts most — this is what the Down_Up sensor link prevents."
        );
    } else {
        println!(
            "\nVC0 absorbs all idle stress regardless of which buffer is weakest;\n\
             the sensor-wise policy instead steers stress away from VC{md}."
        );
    }
}
