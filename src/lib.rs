//! # nbti-noc — sensor-wise NBTI mitigation for NoC virtual-channel buffers
//!
//! A from-scratch reproduction of D. Zoni and W. Fornaciari, *"Sensor-wise
//! methodology to face NBTI stress of NoC buffers"*, DATE 2013.
//!
//! This facade crate re-exports the workspace members so that applications
//! and examples can depend on a single crate:
//!
//! * [`sim`] ([`noc_sim`]) — cycle-accurate 2D-mesh NoC simulator with
//!   3-stage virtual-channel routers and per-VC power gating,
//! * [`telemetry`] ([`noc_telemetry`]) — zero-cost-when-off event tracing,
//!   periodic metrics sampling and the deterministic event-stream digest,
//! * [`nbti`] ([`nbti_model`]) — NBTI physics: duty cycles, the long-term
//!   reaction–diffusion ΔVth model, process variation and sensor models,
//! * [`traffic`] ([`noc_traffic`]) — synthetic patterns and benchmark-profile
//!   application traffic,
//! * [`workload`] ([`noc_workload`]) — the `NBTITRC` binary trace format,
//!   deterministic application-mix generators and the trace/mix injection
//!   adapters,
//! * [`policy`] ([`sensorwise`]) — the paper's mitigation policies
//!   (`baseline`, `rr-no-sensor`, `sensor-wise-no-traffic`, `sensor-wise`),
//!   the cooperative control links, and the experiment runner,
//! * [`area`] ([`noc_area`]) — ORION-style router area model and the
//!   sensor/link overhead analysis,
//! * [`service`] ([`noc_service`]) — the HTTP job API serving deterministic
//!   experiments: bounded queue with backpressure, fixed worker pool,
//!   per-job timeouts and graceful drain.
//!
//! See the `examples/` directory for runnable entry points, starting with
//! `quickstart.rs`.

#![deny(missing_debug_implementations)]
#![warn(
    clippy::semicolon_if_nothing_returned,
    clippy::explicit_iter_loop,
    clippy::redundant_closure_for_method_calls,
    clippy::manual_let_else
)]

pub use nbti_model as nbti;
pub use noc_area as area;
pub use noc_service as service;
pub use noc_sim as sim;
pub use noc_telemetry as telemetry;
pub use noc_traffic as traffic;
pub use noc_workload as workload;
pub use sensorwise as policy;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use nbti_model::{
        vth_saving_percent, DutyCycleCounter, LongTermModel, NbtiParams, ProcessVariation, Volt,
    };
    pub use noc_area::{analyze as analyze_area, AreaParams};
    pub use noc_sim::prelude::*;
    // `noc_telemetry::TraceEvent` stays behind the `telemetry` module path:
    // the traffic prelude already exports a `TraceEvent` (packet traces).
    pub use noc_telemetry::{
        read_jsonl, read_spans_jsonl, EventDigest, EventKind, Histogram, MetricsSeries,
        ProfileReport, Span, SpanKind, StageProfiler, TelemetryReport, TelemetrySpec,
        WorkCounters, NO_PARENT,
    };
    pub use noc_traffic::prelude::*;
    pub use sensorwise::{
        default_jobs, parallel_map, run_batch, run_experiment, run_experiment_profiled,
        validate_jobs, ExperimentConfig, ExperimentJob, ExperimentResult, NbtiMonitor, PolicyKind,
        SyntheticScenario, TrafficSpec,
    };
}
