//! `nbti-noc` — command-line driver for ad-hoc experiments.
//!
//! ```text
//! nbti-noc run    [--cores N] [--vcs V] [--rate R] [--policy P] [--warmup N] [--measure N] [--csv]
//!                 [--trace-out FILE] [--metrics-out FILE] [--sample-period N]
//! nbti-noc sweep  [--cores N] [--vcs V] [--warmup N] [--measure N]
//! nbti-noc record --out FILE [--cores N] [--rate R] [--cycles N] [--seed N]
//! nbti-noc replay --trace FILE [--cores N] [--vcs V] [--policy P]
//!                 [--trace-out FILE] [--metrics-out FILE] [--sample-period N]
//! nbti-noc stats  --trace FILE
//! nbti-noc area
//! nbti-noc serve  [--addr A] [--workers N] [--queue-depth N] [--timeout-ms N]
//! nbti-noc submit [--addr A] [--count N] [--concurrency N] [--cores N] [--vcs V]
//!                 [--rate R] [--policy P] [--warmup N] [--measure N] [--seed N] [--shutdown]
//! nbti-noc help
//! ```
//!
//! The paper's tables have dedicated regeneration binaries in the
//! `nbti-noc-bench` crate; this driver is for exploring other points of
//! the design space.

use nbti_noc::prelude::*;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::process::ExitCode;

/// Minimal flag parser: `--key value` pairs after the subcommand.
struct Args {
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = BTreeMap::new();
        let mut switches = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument `{a}`"));
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(key.to_string(), it.next().unwrap().clone());
                }
                _ => switches.push(key.to_string()),
            }
        }
        Ok(Args { flags, switches })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad --{key}: {e}")),
        }
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.flags
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required --{key}"))
    }

    fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

/// Parses `--jobs` (default: available parallelism) and rejects zero.
fn parse_jobs(args: &Args) -> Result<usize, String> {
    validate_jobs(args.get("jobs", default_jobs())?)
}

/// Parses `--invariants off|cheap|full` (default: off).
fn parse_invariants(args: &Args) -> Result<InvariantLevel, String> {
    args.get("invariants", InvariantLevel::Off)
}

/// Prints any recorded invariant violations; errors out when there were
/// any, so the process exits nonzero.
fn report_invariants(result: &sensorwise::ExperimentResult) -> Result<(), String> {
    if result.invariant_violations == 0 {
        return Ok(());
    }
    for v in &result.violations {
        eprintln!("invariant violation: {v}");
    }
    Err(format!(
        "{} invariant violation(s) detected",
        result.invariant_violations
    ))
}

fn parse_policy(name: &str) -> Result<PolicyKind, String> {
    PolicyKind::parse(name)
}

/// `(p50, p95, p99, max)` upper bounds from the latency histogram, when
/// any packet was delivered.
fn latency_summary(net: &NetStats) -> Option<(u64, u64, u64, u64)> {
    Some((
        net.latency_quantile_upper(0.5)?,
        net.latency_quantile_upper(0.95)?,
        net.latency_quantile_upper(0.99)?,
        net.latency_quantile_upper(1.0)?,
    ))
}

fn print_port_table(result: &sensorwise::ExperimentResult, csv: bool) {
    if csv {
        let vcs = result.ports.first().map_or(0, |p| p.duty_percent.len());
        print!("port,md_vc");
        for v in 0..vcs {
            print!(",duty_vc{v}");
        }
        println!(",flits");
        for p in &result.ports {
            print!("{},{}", p.port, p.md_vc);
            for d in &p.duty_percent {
                print!(",{d:.3}");
            }
            println!(",{}", p.flits_received);
        }
        if let Some((p50, p95, p99, max)) = latency_summary(&result.net) {
            println!("# latency_cycles p50<={p50} p95<={p95} p99<={p99} max<={max}");
        }
        return;
    }
    println!(
        "{:<12} {:>4} {:>10}  per-VC NBTI-duty-cycle",
        "port", "MD", "flits"
    );
    for p in &result.ports {
        let duties: Vec<String> = p.duty_percent.iter().map(|d| format!("{d:5.1}%")).collect();
        println!(
            "{:<12} {:>4} {:>10}  [{}]",
            p.port.to_string(),
            format!("VC{}", p.md_vc),
            p.flits_received,
            duties.join(" ")
        );
    }
    println!(
        "\ndelivered {} packets, avg latency {:.1} cycles",
        result.net.packets_ejected,
        result.net.avg_latency().unwrap_or(f64::NAN)
    );
    if let Some((p50, p95, p99, max)) = latency_summary(&result.net) {
        println!("latency percentiles: p50<={p50} p95<={p95} p99<={p99} max<={max} cycles");
    }
}

/// Telemetry requested on the command line: the spec for the experiment
/// config plus the output destinations.
struct TelemetryArgs {
    spec: TelemetrySpec,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

/// Parses `--trace-out FILE`, `--metrics-out FILE` and `--sample-period N`.
/// Requesting a metrics file without a period uses 1000 cycles.
fn parse_telemetry(args: &Args) -> Result<TelemetryArgs, String> {
    let trace_out = args.flags.get("trace-out").cloned();
    let metrics_out = args.flags.get("metrics-out").cloned();
    let mut sample_period = args.get("sample-period", 0u64)?;
    if metrics_out.is_some() && sample_period == 0 {
        sample_period = 1_000;
    }
    Ok(TelemetryArgs {
        spec: TelemetrySpec {
            trace: trace_out.is_some(),
            trace_capacity: 0,
            sample_period,
        },
        trace_out,
        metrics_out,
    })
}

/// Writes the harvested telemetry to the requested files (JSONL events,
/// CSV metrics) and reports totals and the stream digest on stderr.
fn write_telemetry(result: &sensorwise::ExperimentResult, t: &TelemetryArgs) -> Result<(), String> {
    let Some(report) = result.telemetry.as_ref() else {
        return Ok(());
    };
    if let Some(path) = &t.trace_out {
        let log = report
            .trace
            .as_ref()
            .ok_or_else(|| "trace requested but not harvested".to_string())?;
        let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        let mut w = BufWriter::new(file);
        let mut line = String::new();
        for ev in &log.events {
            line.clear();
            ev.write_jsonl(&mut line);
            w.write_all(line.as_bytes())
                .map_err(|e| format!("write to {path} failed: {e}"))?;
        }
        w.flush().map_err(|e| format!("write to {path} failed: {e}"))?;
        eprintln!(
            "wrote {} events to {path} (digest {:016x})",
            log.total, log.digest
        );
    }
    if let Some(path) = &t.metrics_out {
        let series = report
            .series
            .as_ref()
            .ok_or_else(|| "metrics requested but not sampled".to_string())?;
        std::fs::write(path, series.to_csv())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {} metric rows to {path}", series.len());
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let scenario = SyntheticScenario {
        cores: args.get("cores", 16usize)?,
        vcs: args.get("vcs", 4usize)?,
        injection_rate: args.get("rate", 0.2f64)?,
    };
    let policy = parse_policy(args.get("policy", "sensor-wise".to_string())?.as_str())?;
    let warmup = args.get("warmup", 5_000u64)?;
    let measure = args.get("measure", 50_000u64)?;
    let invariants = parse_invariants(args)?;
    eprintln!(
        "running {} under {} ({} + {} cycles, invariants {invariants})...",
        scenario.name(),
        policy,
        warmup,
        measure
    );
    let mut telemetry = parse_telemetry(args)?;
    let json = args.has("json");
    if json {
        // JSON output always carries the determinism witness.
        telemetry.spec.trace = true;
    }
    let mut job = scenario.job(policy, warmup, measure);
    job.cfg = job
        .cfg
        .with_invariants(invariants)
        .with_telemetry(telemetry.spec);
    let result = job.run();
    if json {
        println!("{}", sensorwise::result_to_json(&result));
    } else {
        print_port_table(&result, args.has("csv"));
    }
    write_telemetry(&result, &telemetry)?;
    report_invariants(&result)
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let cfg = noc_service::ServiceConfig {
        addr: args.get("addr", "127.0.0.1:7878".to_string())?,
        workers: args.get("workers", 2usize)?,
        queue_depth: args.get("queue-depth", 16usize)?,
        job_timeout_ms: args.get("timeout-ms", 0u64)?,
    };
    let server = noc_service::Server::start(&cfg)?;
    println!("listening on {}", server.local_addr());
    eprintln!(
        "{} workers, queue depth {}, job timeout {}",
        cfg.workers,
        cfg.queue_depth,
        if cfg.job_timeout_ms == 0 {
            "off".to_string()
        } else {
            format!("{} ms", cfg.job_timeout_ms)
        }
    );
    let report = server.wait();
    println!(
        "shutdown: accepted {} | completed {} failed {} cancelled {} timed_out {} dropped {} | rejected_busy {}",
        report.accepted,
        report.completed,
        report.failed,
        report.cancelled,
        report.timed_out,
        report.dropped,
        report.rejected_busy
    );
    if report.accounts_for_all() {
        Ok(())
    } else {
        Err("shutdown report does not account for every accepted job".to_string())
    }
}

/// The load-generating client: submits `--count` specs with `--concurrency`
/// parallel submitters, waits for every result, and cross-checks each
/// returned `trace_digest` against a local in-process run of the same spec.
fn cmd_submit(args: &Args) -> Result<(), String> {
    let addr = args.get("addr", "127.0.0.1:7878".to_string())?;
    let count = args.get("count", 8usize)?;
    let concurrency = validate_jobs(args.get("concurrency", 4usize)?)?;
    let scenario = SyntheticScenario {
        cores: args.get("cores", 4usize)?,
        vcs: args.get("vcs", 2usize)?,
        injection_rate: args.get("rate", 0.15f64)?,
    };
    let policy = parse_policy(args.get("policy", "sensor-wise".to_string())?.as_str())?;
    let warmup = args.get("warmup", 500u64)?;
    let measure = args.get("measure", 5_000u64)?;
    let seed = args.get("seed", 1u64)?;
    if count == 0 {
        return Err("--count must be at least 1".to_string());
    }

    // One spec per job: identical scenario, per-job traffic seed, tracing
    // on so every result carries its digest.
    let jobs: Vec<ExperimentJob> = (0..count)
        .map(|i| {
            let mut job = scenario.job(policy, warmup, measure);
            job.cfg.telemetry.trace = true;
            job.traffic = job.traffic.with_seed(seed + i as u64);
            job
        })
        .collect();
    let specs: Vec<String> = jobs
        .iter()
        .map(|j| sensorwise::spec_to_json(j).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;

    eprintln!(
        "submitting {count} jobs to {addr} ({concurrency} concurrent submitters)..."
    );
    let client = noc_service::ServiceClient::new(addr.clone());
    let started = noc_service::clock::now();
    let outcomes = parallel_map(&specs, concurrency, |_, spec| {
        let c = client.clone();
        let (id, busy, latencies) = c.submit_with_retry(spec, 200)?;
        let result = c.wait_result(id, 20, 3_000)?;
        Ok::<_, String>((id, busy, latencies, result))
    });
    let elapsed_ms = noc_service::clock::millis_since(started).max(1);

    let mut latencies: Vec<u64> = Vec::new();
    let mut busy_total = 0u64;
    let mut digests = Vec::with_capacity(count);
    for outcome in outcomes {
        let (_, busy, lat, result) = outcome?;
        busy_total += u64::from(busy);
        latencies.extend(lat);
        digests.push(
            result
                .trace_digest
                .ok_or("server result carried no trace_digest")?,
        );
    }

    eprintln!("cross-checking digests against local runs...");
    let local = run_batch(&jobs, concurrency);
    let mut mismatches = 0usize;
    for (i, (r, served)) in local.iter().zip(&digests).enumerate() {
        let local_digest = r
            .trace_digest()
            .ok_or("local run carried no trace_digest")?;
        if local_digest != *served {
            eprintln!(
                "digest mismatch for job {i}: served {served:016x}, local {local_digest:016x}"
            );
            mismatches += 1;
        }
    }

    latencies.sort_unstable();
    let jobs_per_sec = count as f64 * 1_000.0 / elapsed_ms as f64;
    println!(
        "{count} jobs in {elapsed_ms} ms ({jobs_per_sec:.1} jobs/s), {} submit requests ({busy_total} retried on 429)",
        latencies.len()
    );
    println!(
        "submit latency: p50 {} ms p99 {} ms",
        percentile(&latencies, 0.5),
        percentile(&latencies, 0.99)
    );
    if args.has("shutdown") {
        client.shutdown(false)?;
        eprintln!("requested graceful shutdown of {addr}");
    }
    if mismatches == 0 {
        println!("digest check: {count}/{count} served results identical to local runs");
        Ok(())
    } else {
        Err(format!("digest check failed for {mismatches} job(s)"))
    }
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let cores = args.get("cores", 4usize)?;
    let vcs = args.get("vcs", 2usize)?;
    let warmup = args.get("warmup", 2_000u64)?;
    let measure = args.get("measure", 30_000u64)?;
    let jobs = parse_jobs(args)?;
    let invariants = parse_invariants(args)?;
    println!(
        "{:>6} {:>10} {:>10} {:>8}   ({}x{} mesh, {} VCs, MD VC of r0 east)",
        "rate", "rr MD", "sw MD", "gap", cores, cores, vcs
    );
    let rates = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3];
    let batch: Vec<ExperimentJob> = rates
        .iter()
        .flat_map(|&rate| {
            let scenario = SyntheticScenario {
                cores,
                vcs,
                injection_rate: rate,
            };
            [PolicyKind::RrNoSensor, PolicyKind::SensorWise]
                .into_iter()
                .map(move |policy| {
                    let mut job = scenario.job(policy, warmup, measure);
                    job.cfg = job.cfg.with_invariants(invariants);
                    job
                })
        })
        .collect();
    let results = run_batch(&batch, jobs);
    for (&rate, pair) in rates.iter().zip(results.chunks_exact(2)) {
        let (a, b) = (
            pair[0].east_input(NodeId(0)).md_duty(),
            pair[1].east_input(NodeId(0)).md_duty(),
        );
        println!("{rate:>6.2} {a:>9.1}% {b:>9.1}% {:>7.1}%", a - b);
    }
    for r in &results {
        report_invariants(r)?;
    }
    Ok(())
}

fn cmd_record(args: &Args) -> Result<(), String> {
    let out = args.required("out")?.to_string();
    let cores = args.get("cores", 16usize)?;
    let rate = args.get("rate", 0.2f64)?;
    let cycles = args.get("cycles", 50_000u64)?;
    let seed = args.get("seed", 1u64)?;
    let k = (cores as f64).sqrt().round() as usize;
    let mesh = Mesh2D::new(k, k);
    let mut rec = TraceRecorder::new(SyntheticTraffic::uniform(mesh, rate, 5, seed));
    let mut sink = Vec::new();
    for c in 0..cycles {
        rec.emit(c, &mut sink);
    }
    let trace = rec.into_trace();
    let file = File::create(&out).map_err(|e| format!("cannot create {out}: {e}"))?;
    trace
        .to_writer(BufWriter::new(file))
        .map_err(|e| format!("write failed: {e}"))?;
    println!(
        "recorded {} packets over {cycles} cycles to {out}",
        trace.len()
    );
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let path = args.required("trace")?.to_string();
    let cores = args.get("cores", 16usize)?;
    let vcs = args.get("vcs", 4usize)?;
    let policy = parse_policy(args.get("policy", "sensor-wise".to_string())?.as_str())?;
    let file = File::open(&path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let trace = Trace::from_reader(BufReader::new(file)).map_err(|e| format!("bad trace: {e}"))?;
    let horizon = trace.events().last().map(|e| e.cycle + 1).unwrap_or(0);
    eprintln!(
        "replaying {} packets ({horizon} cycles) under {policy}...",
        trace.len()
    );
    let telemetry = parse_telemetry(args)?;
    let mut replay = TraceReplay::new(trace);
    let cfg = ExperimentConfig::new(NocConfig::paper_synthetic(cores, vcs), policy)
        .with_cycles(0, horizon + 2_000)
        .with_invariants(parse_invariants(args)?)
        .with_telemetry(telemetry.spec);
    let result = run_experiment(&cfg, &mut replay);
    print_port_table(&result, args.has("csv"));
    write_telemetry(&result, &telemetry)?;
    report_invariants(&result)
}

/// Nearest-rank percentile of a sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let path = args.required("trace")?.to_string();
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let events = read_jsonl(&text).map_err(|e| format!("bad trace {path}: {e}"))?;
    println!("{} events from {path}", events.len());

    let mut counts = vec![0u64; EventKind::TAGS.len()];
    let mut churn: BTreeMap<String, u64> = BTreeMap::new();
    let mut latencies: Vec<u64> = Vec::new();
    for ev in &events {
        // TAGS covers every kind; position() cannot miss.
        if let Some(i) = EventKind::TAGS.iter().position(|&t| t == ev.kind.tag()) {
            counts[i] += 1;
        }
        match &ev.kind {
            EventKind::GateOn { port, .. } | EventKind::GateOff { port, .. } => {
                *churn.entry(port.to_string()).or_insert(0) += 1;
            }
            EventKind::PacketDone { latency, .. } => latencies.push(*latency),
            _ => {}
        }
    }

    println!("event counts:");
    for (tag, n) in EventKind::TAGS.iter().zip(&counts) {
        if *n > 0 {
            println!("  {tag:<10} {n}");
        }
    }
    if !churn.is_empty() {
        println!("gating churn per port (gate_on + gate_off):");
        for (port, n) in &churn {
            println!("  {port:<12} {n}");
        }
    }
    if !latencies.is_empty() {
        latencies.sort_unstable();
        println!(
            "latency: p50 {} p95 {} p99 {} max {} cycles ({} packets)",
            percentile(&latencies, 0.5),
            percentile(&latencies, 0.95),
            percentile(&latencies, 0.99),
            latencies[latencies.len() - 1],
            latencies.len()
        );
    }
    println!("digest: {:016x}", EventDigest::of(&events));
    Ok(())
}

fn cmd_area() -> Result<(), String> {
    println!("{}", analyze_area(&AreaParams::paper_45nm()));
    Ok(())
}

const HELP: &str = "nbti-noc — sensor-wise NBTI mitigation for NoC buffers (DATE 2013 reproduction)

subcommands:
  run     one scenario under one policy    [--cores --vcs --rate --policy --warmup --measure --invariants --csv]
                                           [--trace-out FILE --metrics-out FILE --sample-period N]
  sweep   gap vs injection rate            [--cores --vcs --warmup --measure --invariants --jobs]
  record  record a synthetic trace         --out FILE [--cores --rate --cycles --seed]
  replay  replay a trace under a policy    --trace FILE [--cores --vcs --policy --invariants --csv]
                                           [--trace-out FILE --metrics-out FILE --sample-period N]
  stats   summarize a telemetry trace      --trace FILE (event counts, churn, latency, digest)
  area    print the §III-D area overhead report
  serve   HTTP job API for experiments     [--addr 127.0.0.1:7878 --workers N --queue-depth N --timeout-ms N]
  submit  load-generating client           [--addr --count --concurrency --cores --vcs --rate --policy
                                            --warmup --measure --seed --shutdown]
  help    this text

policies: baseline | rr | sw-nt | sw | sw-kN (e.g. sw-k2)
invariant levels: off (default) | cheap | full — runtime protocol checks; violations exit nonzero
telemetry: --trace-out writes a JSONL event trace, --metrics-out a per-port CSV series
serving: `run --json` prints the same result JSON the service returns (digest included);
         `submit` cross-checks every served digest against a local run of the same spec
paper tables: see `cargo run -p nbti-noc-bench --bin table2|table3|table4|...`";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        println!("{HELP}");
        return ExitCode::SUCCESS;
    };
    let run = || -> Result<(), String> {
        let args = Args::parse(rest)?;
        match cmd.as_str() {
            "run" => cmd_run(&args),
            "sweep" => cmd_sweep(&args),
            "record" => cmd_record(&args),
            "replay" => cmd_replay(&args),
            "stats" => cmd_stats(&args),
            "area" => cmd_area(),
            "serve" => cmd_serve(&args),
            "submit" => cmd_submit(&args),
            "help" | "--help" | "-h" => {
                println!("{HELP}");
                Ok(())
            }
            other => Err(format!("unknown subcommand `{other}` (try help)")),
        }
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
