//! `nbti-noc` — command-line driver for ad-hoc experiments.
//!
//! ```text
//! nbti-noc run    [--cores N] [--vcs V] [--rate R] [--policy P] [--warmup N] [--measure N] [--csv]
//!                 [--topology mesh|torus|ring|irregular] [--edges "a-b,c-d"]
//!                 [--mix KIND | --trace-in FILE] [--len L] [--seed N] [--digest]
//!                 [--trace-out FILE] [--metrics-out FILE] [--sample-period N] [--profile]
//! nbti-noc sweep  [--cores N] [--vcs V] [--warmup N] [--measure N] [--store DIR]
//!                 [--remote addr1,addr2 --retries N]
//! nbti-noc record --out FILE [--cores N] [--rate R] [--cycles N] [--seed N]
//! nbti-noc replay --trace FILE [--cores N] [--vcs V] [--policy P]
//!                 [--trace-out FILE] [--metrics-out FILE] [--sample-period N]
//! nbti-noc stats  --trace FILE
//! nbti-noc trace gen    --out FILE --mix KIND [--nodes N] [--cycles N] [--rate R] [--len L] [--seed N]
//! nbti-noc trace info   --trace FILE [--json]
//! nbti-noc trace verify --trace FILE
//! nbti-noc verify [--policy P] [--depth N] [--symmetry] [--counterexample-out FILE]
//!                 [--inject-fault gate-occupied|double-credit|drop-flit]
//! nbti-noc area
//! nbti-noc serve  [--addr A] [--workers N] [--queue-depth N] [--timeout-ms N] [--cache-dir DIR]
//!                 [--spans-out FILE]
//! nbti-noc spans  FILE [--json]
//! nbti-noc submit [--addr A] [--count N] [--concurrency N] [--cores N] [--vcs V]
//!                 [--rate R] [--policy P] [--warmup N] [--measure N] [--seed N]
//!                 [--batch] [--shutdown]
//! nbti-noc campaign run    --checkpoint FILE [--epochs N] [--age-acceleration F] [--drain-limit N]
//!                          [--cores N] [--vcs V] [--rate R] [--policy P] [--warmup N] [--measure N]
//!                          [--seed N] [--pv-seed N] [--store DIR]
//!                          [--remote addr1,addr2 --retries N]
//! nbti-noc campaign resume --checkpoint FILE [--store DIR] [--remote addr1,addr2 --retries N]
//! nbti-noc campaign status --checkpoint FILE
//! nbti-noc cache stats --dir DIR
//! nbti-noc cache gc    --dir DIR --keep N
//! nbti-noc help
//! ```
//!
//! The paper's tables have dedicated regeneration binaries in the
//! `nbti-noc-bench` crate; this driver is for exploring other points of
//! the design space.

use nbti_noc::prelude::*;
use nbti_noc::telemetry::profclock;
use nbti_noc::workload;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::process::ExitCode;

/// Minimal flag parser: `--key value` pairs after the subcommand.
struct Args {
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = BTreeMap::new();
        let mut switches = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument `{a}`"));
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(key.to_string(), it.next().unwrap().clone());
                }
                _ => switches.push(key.to_string()),
            }
        }
        Ok(Args { flags, switches })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad --{key}: {e}")),
        }
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.flags
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required --{key}"))
    }

    fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

/// Parses `--jobs` (default: available parallelism) and rejects zero.
fn parse_jobs(args: &Args) -> Result<usize, String> {
    validate_jobs(args.get("jobs", default_jobs())?)
}

/// Parses `--invariants off|cheap|full` (default: off).
fn parse_invariants(args: &Args) -> Result<InvariantLevel, String> {
    args.get("invariants", InvariantLevel::Off)
}

/// Parses `--topology mesh|torus|ring|irregular` (default: mesh).
/// Irregular fabrics take their adjacency from `--edges "a-b,c-d,..."`.
fn parse_topology(args: &Args) -> Result<TopologyKind, String> {
    match args.get("topology", "mesh".to_string())?.as_str() {
        "mesh" => Ok(TopologyKind::Mesh),
        "torus" => Ok(TopologyKind::Torus),
        "ring" => Ok(TopologyKind::Ring),
        "irregular" => {
            let spec = args
                .required("edges")
                .map_err(|_| "topology `irregular` needs --edges \"a-b,c-d,...\"".to_string())?;
            let mut edges = Vec::new();
            for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
                let (a, b) = part
                    .split_once('-')
                    .ok_or_else(|| format!("bad edge `{part}` (expected `a-b`)"))?;
                let a = a.trim().parse::<usize>().map_err(|e| format!("bad edge `{part}`: {e}"))?;
                let b = b.trim().parse::<usize>().map_err(|e| format!("bad edge `{part}`: {e}"))?;
                edges.push((a, b));
            }
            Ok(TopologyKind::Irregular { edges })
        }
        other => Err(format!(
            "unknown topology `{other}` (mesh | torus | ring | irregular)"
        )),
    }
}

/// Prints any recorded invariant violations; errors out when there were
/// any, so the process exits nonzero.
fn report_invariants(result: &sensorwise::ExperimentResult) -> Result<(), String> {
    if result.invariant_violations == 0 {
        return Ok(());
    }
    for v in &result.violations {
        eprintln!("invariant violation: {v}");
    }
    Err(format!(
        "{} invariant violation(s) detected",
        result.invariant_violations
    ))
}

fn parse_policy(name: &str) -> Result<PolicyKind, String> {
    PolicyKind::parse(name)
}

/// `(p50, p95, p99, max)` upper bounds from the latency histogram, when
/// any packet was delivered.
fn latency_summary(net: &NetStats) -> Option<(u64, u64, u64, u64)> {
    Some((
        net.latency_quantile_upper(0.5)?,
        net.latency_quantile_upper(0.95)?,
        net.latency_quantile_upper(0.99)?,
        net.latency_quantile_upper(1.0)?,
    ))
}

/// Prints the per-port duty/flit table. Port labels come from the
/// topology (`r3-ccw` on a ring, `r3-l1` on an irregular fabric) rather
/// than the mesh's hardcoded compass letters.
fn print_port_table(result: &sensorwise::ExperimentResult, topo: &AnyTopology, csv: bool) {
    if csv {
        let vcs = result.ports.first().map_or(0, |p| p.duty_percent.len());
        print!("port,md_vc");
        for v in 0..vcs {
            print!(",duty_vc{v}");
        }
        println!(",flits");
        for p in &result.ports {
            print!("{},{}", topo.port_label(p.port), p.md_vc);
            for d in &p.duty_percent {
                print!(",{d:.3}");
            }
            println!(",{}", p.flits_received);
        }
        if let Some((p50, p95, p99, max)) = latency_summary(&result.net) {
            println!("# latency_cycles p50<={p50} p95<={p95} p99<={p99} max<={max}");
        }
        return;
    }
    println!(
        "{:<12} {:>4} {:>10}  per-VC NBTI-duty-cycle",
        "port", "MD", "flits"
    );
    for p in &result.ports {
        let duties: Vec<String> = p.duty_percent.iter().map(|d| format!("{d:5.1}%")).collect();
        println!(
            "{:<12} {:>4} {:>10}  [{}]",
            topo.port_label(p.port),
            format!("VC{}", p.md_vc),
            p.flits_received,
            duties.join(" ")
        );
    }
    println!(
        "\ndelivered {} packets, avg latency {:.1} cycles",
        result.net.packets_ejected,
        result.net.avg_latency().unwrap_or(f64::NAN)
    );
    if let Some((p50, p95, p99, max)) = latency_summary(&result.net) {
        println!("latency percentiles: p50<={p50} p95<={p95} p99<={p99} max<={max} cycles");
    }
}

/// Telemetry requested on the command line: the spec for the experiment
/// config plus the output destinations.
struct TelemetryArgs {
    spec: TelemetrySpec,
    trace_out: Option<String>,
    metrics_out: Option<String>,
}

/// Parses `--trace-out FILE`, `--metrics-out FILE` and `--sample-period N`.
/// Requesting a metrics file without a period uses 1000 cycles.
fn parse_telemetry(args: &Args) -> Result<TelemetryArgs, String> {
    let trace_out = args.flags.get("trace-out").cloned();
    let metrics_out = args.flags.get("metrics-out").cloned();
    let mut sample_period = args.get("sample-period", 0u64)?;
    if metrics_out.is_some() && sample_period == 0 {
        sample_period = 1_000;
    }
    Ok(TelemetryArgs {
        spec: TelemetrySpec {
            trace: trace_out.is_some(),
            trace_capacity: 0,
            sample_period,
        },
        trace_out,
        metrics_out,
    })
}

/// Writes the harvested telemetry to the requested files (JSONL events,
/// CSV metrics) and reports totals and the stream digest on stderr.
fn write_telemetry(result: &sensorwise::ExperimentResult, t: &TelemetryArgs) -> Result<(), String> {
    let Some(report) = result.telemetry.as_ref() else {
        return Ok(());
    };
    if let Some(path) = &t.trace_out {
        let log = report
            .trace
            .as_ref()
            .ok_or_else(|| "trace requested but not harvested".to_string())?;
        let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        let mut w = BufWriter::new(file);
        let mut line = String::new();
        for ev in &log.events {
            line.clear();
            ev.write_jsonl(&mut line);
            w.write_all(line.as_bytes())
                .map_err(|e| format!("write to {path} failed: {e}"))?;
        }
        w.flush().map_err(|e| format!("write to {path} failed: {e}"))?;
        eprintln!(
            "wrote {} events to {path} (digest {:016x})",
            log.total, log.digest
        );
    }
    if let Some(path) = &t.metrics_out {
        let series = report
            .series
            .as_ref()
            .ok_or_else(|| "metrics requested but not sampled".to_string())?;
        std::fs::write(path, series.to_csv())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {} metric rows to {path}", series.len());
    }
    Ok(())
}

/// Runs `job` with the stage profiler attached and prints the per-stage
/// latency table plus simulated-throughput summary. With `--json` the
/// table goes to stderr so stdout stays pure result JSON.
fn run_profiled(job: &ExperimentJob, cycles: u64, json: bool) -> sensorwise::ExperimentResult {
    let t0 = profclock::now();
    let (result, prof) = job.run_profiled();
    let wall_ms = profclock::ms_since_f64(t0).max(1e-3);
    report_profile(&prof, cycles, wall_ms, json);
    result
}

/// Prints the per-stage latency table plus simulated-throughput summary.
/// With `--json` the table goes to stderr so stdout stays pure result JSON.
fn report_profile(prof: &StageProfiler, cycles: u64, wall_ms: f64, json: bool) {
    let report = prof.report();
    // cycles/ms is numerically kcycles/s.
    let kcps = cycles as f64 / wall_ms;
    let summary = format!("profiled {cycles} cycles in {wall_ms:.1} ms ({kcps:.1} kcycles/s)");
    if json {
        eprint!("{report}");
        eprintln!("{summary}");
    } else {
        print!("{report}");
        println!("{summary}\n");
    }
}

/// Builds the optional workload source requested by `--trace-in` (replay
/// an `NBTITRC` file) or `--mix` (drive a generator live). The trace's
/// node count must match the fabric's so recorded node indices stay valid.
fn parse_workload_source(
    args: &Args,
    noc: &NocConfig,
) -> Result<Option<Box<dyn TrafficSource>>, String> {
    let trace_in = args.flags.get("trace-in");
    let mix = args.flags.get("mix");
    match (trace_in, mix) {
        (Some(_), Some(_)) => Err("--trace-in and --mix are mutually exclusive".into()),
        (Some(path), None) => {
            let reader = workload::TraceReader::open(std::path::Path::new(path))
                .map_err(|e| format!("{path}: {e}"))?;
            let header = reader.header();
            if usize::from(header.num_nodes) != noc.num_nodes() {
                return Err(format!(
                    "{path} was recorded for {} nodes, but this fabric has {}",
                    header.num_nodes,
                    noc.num_nodes()
                ));
            }
            let records = reader.read_all().map_err(|e| format!("{path}: {e}"))?;
            let label = std::path::Path::new(path)
                .file_name()
                .map_or_else(|| path.clone(), |n| n.to_string_lossy().into_owned());
            Ok(Some(Box::new(workload::TraceSource::from_records(
                records,
                format!("trace:{label}"),
            ))))
        }
        (None, Some(kind)) => {
            let spec = workload::MixSpec {
                kind: workload::MixKind::parse(kind)?,
                nodes: noc.num_nodes() as u16,
                rate: args.get("rate", 0.2f64)?,
                packet_len: args.get("len", 5u16)?,
                seed: args.get("seed", 1u64)?,
            };
            Ok(Some(Box::new(workload::MixSource::new(spec))))
        }
        (None, None) => Ok(None),
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let scenario = SyntheticScenario {
        cores: args.get("cores", 16usize)?,
        vcs: args.get("vcs", 4usize)?,
        injection_rate: args.get("rate", 0.2f64)?,
    };
    let policy = parse_policy(args.get("policy", "sensor-wise".to_string())?.as_str())?;
    let warmup = args.get("warmup", 5_000u64)?;
    let measure = args.get("measure", 50_000u64)?;
    let invariants = parse_invariants(args)?;
    let mut telemetry = parse_telemetry(args)?;
    let json = args.has("json");
    let want_digest = args.has("digest");
    if json || want_digest {
        // JSON output (and --digest) always carries the determinism witness.
        telemetry.spec.trace = true;
    }
    let mut job = scenario.job(policy, warmup, measure);
    job.cfg.noc.topology = parse_topology(args)?;
    job.cfg = job
        .cfg
        .with_invariants(invariants)
        .with_telemetry(telemetry.spec);
    let topo = job.cfg.noc.build_topology().map_err(|e| e.to_string())?;
    let mut source = parse_workload_source(args, &job.cfg.noc)?;
    if source.is_some() {
        // Workload runs tie process variation to the architecture alone:
        // an NBTITRC file carries no injection-rate field, so a replayed
        // trace must reproduce the live-mix digest whatever --rate was.
        job.cfg = job.cfg.with_pv_seed(
            SyntheticScenario {
                injection_rate: 0.0,
                ..scenario
            }
            .seed(),
        );
    }
    eprintln!(
        "running {} on {} under {} ({} + {} cycles, invariants {invariants})...",
        source.as_ref().map_or_else(|| scenario.name(), |s| s.name()),
        topo.kind_name(),
        policy,
        warmup,
        measure
    );
    let result = match source.as_mut() {
        Some(src) => {
            if args.has("profile") {
                let t0 = profclock::now();
                let (result, prof) = run_experiment_profiled(&job.cfg, src.as_mut());
                let wall_ms = profclock::ms_since_f64(t0).max(1e-3);
                report_profile(&prof, warmup + measure, wall_ms, json);
                result
            } else {
                run_experiment(&job.cfg, src.as_mut())
            }
        }
        None if args.has("profile") => run_profiled(&job, warmup + measure, json),
        None => job.run(),
    };
    if json {
        println!("{}", sensorwise::result_to_json(&result));
    } else {
        print_port_table(&result, &topo, args.has("csv"));
    }
    if want_digest {
        match result.trace_digest() {
            Some(d) => println!("digest: {d:016x}"),
            None => return Err("--digest requested but no trace was harvested".into()),
        }
    }
    write_telemetry(&result, &telemetry)?;
    report_invariants(&result)
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let cfg = noc_service::ServiceConfig {
        addr: args.get("addr", "127.0.0.1:7878".to_string())?,
        workers: args.get("workers", 2usize)?,
        queue_depth: args.get("queue-depth", 16usize)?,
        job_timeout_ms: args.get("timeout-ms", 0u64)?,
        spans_out: args.flags.get("spans-out").cloned(),
    };
    let cache: Option<std::sync::Arc<dyn sensorwise::ResultCache + Send + Sync>> =
        match args.flags.get("cache-dir") {
            None => None,
            Some(dir) => Some(std::sync::Arc::new(
                noc_campaign::FsResultStore::open(dir).map_err(|e| e.to_string())?,
            )),
        };
    let server = noc_service::Server::start_with_cache(&cfg, cache)?;
    println!("listening on {}", server.local_addr());
    eprintln!(
        "{} workers, queue depth {}, job timeout {}, cache {}",
        cfg.workers,
        cfg.queue_depth,
        if cfg.job_timeout_ms == 0 {
            "off".to_string()
        } else {
            format!("{} ms", cfg.job_timeout_ms)
        },
        args.flags
            .get("cache-dir")
            .map_or("off".to_string(), |d| d.clone())
    );
    let report = server.wait();
    println!(
        "shutdown: accepted {} | completed {} failed {} cancelled {} timed_out {} dropped {} | rejected_busy {} cache_hits {}",
        report.accepted,
        report.completed,
        report.failed,
        report.cancelled,
        report.timed_out,
        report.dropped,
        report.rejected_busy,
        report.cache_hits
    );
    if report.accounts_for_all() {
        Ok(())
    } else {
        Err("shutdown report does not account for every accepted job".to_string())
    }
}

/// The load-generating client: submits `--count` specs with `--concurrency`
/// parallel submitters, waits for every result, and cross-checks each
/// returned `trace_digest` against a local in-process run of the same spec.
fn cmd_submit(args: &Args) -> Result<(), String> {
    let addr = args.get("addr", "127.0.0.1:7878".to_string())?;
    let count = args.get("count", 8usize)?;
    let concurrency = validate_jobs(args.get("concurrency", 4usize)?)?;
    let scenario = SyntheticScenario {
        cores: args.get("cores", 4usize)?,
        vcs: args.get("vcs", 2usize)?,
        injection_rate: args.get("rate", 0.15f64)?,
    };
    let policy = parse_policy(args.get("policy", "sensor-wise".to_string())?.as_str())?;
    let warmup = args.get("warmup", 500u64)?;
    let measure = args.get("measure", 5_000u64)?;
    let seed = args.get("seed", 1u64)?;
    if count == 0 {
        return Err("--count must be at least 1".to_string());
    }

    // One spec per job: identical scenario, per-job traffic seed, tracing
    // on so every result carries its digest.
    let jobs: Vec<ExperimentJob> = (0..count)
        .map(|i| {
            let mut job = scenario.job(policy, warmup, measure);
            job.cfg.telemetry.trace = true;
            job.traffic = job.traffic.with_seed(seed + i as u64);
            job
        })
        .collect();
    let specs: Vec<String> = jobs
        .iter()
        .map(|j| sensorwise::spec_to_json(j).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;

    let client = noc_service::ServiceClient::new(addr.clone());
    let started = noc_service::clock::now();
    let outcomes = if args.has("batch") {
        // One `POST /jobs/batch`: the server reserves queue slots in a
        // single pass, answering 202/429 per item. Items bounced with
        // 429 fall back to the retrying single-submit path.
        eprintln!("submitting {count} jobs to {addr} in one batch request...");
        let rows = client.submit_batch(&specs)?;
        if rows.len() != specs.len() {
            return Err(format!(
                "batch answered {} items for {} jobs",
                rows.len(),
                specs.len()
            ));
        }
        let indexed: Vec<(usize, noc_service::Submitted)> =
            rows.into_iter().enumerate().collect();
        parallel_map(&indexed, concurrency, |_, (i, row)| {
            let c = client.clone();
            let (id, busy) = match row {
                noc_service::Submitted::Accepted { id } => (*id, 0u32),
                noc_service::Submitted::Busy { .. } => {
                    let (id, busy, _) = c.submit_with_retry(&specs[*i], 200)?;
                    (id, busy + 1)
                }
                noc_service::Submitted::Refused { status, error } => {
                    return Err(format!("job {i} refused ({status}): {error}"));
                }
            };
            let result = c.wait_result(id, 20, 3_000)?;
            Ok::<_, String>((id, busy, Vec::new(), result))
        })
    } else {
        eprintln!(
            "submitting {count} jobs to {addr} ({concurrency} concurrent submitters)..."
        );
        parallel_map(&specs, concurrency, |_, spec| {
            let c = client.clone();
            let (id, busy, latencies) = c.submit_with_retry(spec, 200)?;
            let result = c.wait_result(id, 20, 3_000)?;
            Ok::<_, String>((id, busy, latencies, result))
        })
    };
    let elapsed_ms = noc_service::clock::millis_since(started).max(1);

    let mut latencies: Vec<u64> = Vec::new();
    let mut busy_total = 0u64;
    let mut digests = Vec::with_capacity(count);
    for outcome in outcomes {
        let (_, busy, lat, result) = outcome?;
        busy_total += u64::from(busy);
        latencies.extend(lat);
        digests.push(
            result
                .trace_digest
                .ok_or("server result carried no trace_digest")?,
        );
    }

    eprintln!("cross-checking digests against local runs...");
    let local = run_batch(&jobs, concurrency);
    let mut mismatches = 0usize;
    for (i, (r, served)) in local.iter().zip(&digests).enumerate() {
        let local_digest = r
            .trace_digest()
            .ok_or("local run carried no trace_digest")?;
        if local_digest != *served {
            eprintln!(
                "digest mismatch for job {i}: served {served:016x}, local {local_digest:016x}"
            );
            mismatches += 1;
        }
    }

    latencies.sort_unstable();
    let jobs_per_sec = count as f64 * 1_000.0 / elapsed_ms as f64;
    println!(
        "{count} jobs in {elapsed_ms} ms ({jobs_per_sec:.1} jobs/s), {} submit requests ({busy_total} retried on 429)",
        latencies.len()
    );
    if !latencies.is_empty() {
        println!(
            "submit latency: p50 {} ms p99 {} ms",
            percentile(&latencies, 0.5),
            percentile(&latencies, 0.99)
        );
    }
    if args.has("shutdown") {
        client.shutdown(false)?;
        eprintln!("requested graceful shutdown of {addr}");
    }
    if mismatches == 0 {
        println!("digest check: {count}/{count} served results identical to local runs");
        Ok(())
    } else {
        Err(format!("digest check failed for {mismatches} job(s)"))
    }
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let cores = args.get("cores", 4usize)?;
    let vcs = args.get("vcs", 2usize)?;
    let warmup = args.get("warmup", 2_000u64)?;
    let measure = args.get("measure", 30_000u64)?;
    let jobs = parse_jobs(args)?;
    let invariants = parse_invariants(args)?;
    let json = args.has("json");
    let rates = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3];
    let batch: Vec<ExperimentJob> = rates
        .iter()
        .flat_map(|&rate| {
            let scenario = SyntheticScenario {
                cores,
                vcs,
                injection_rate: rate,
            };
            PolicyKind::REFERENCE_PAIR
                .into_iter()
                .map(move |policy| {
                    let mut job = scenario.job(policy, warmup, measure);
                    job.cfg = job.cfg.with_invariants(invariants);
                    job
                })
        })
        .collect();

    // `(rr_md_duty, sw_md_duty, invariant_violations)` per rate: computed
    // fresh, served from a content-addressed `--store`, or run as served
    // jobs on a `--remote` worker pool (per-point batch dispatch; the
    // workers' shared `--cache-dir` memoizes repeats).
    let sampled = PortId::router_input(NodeId(0), Direction::East).to_string();
    let md_duty = |r: &sensorwise::WireResult| -> Result<f64, String> {
        let row = r
            .ports
            .iter()
            .find(|p| p.port == sampled)
            .ok_or_else(|| format!("served result lacks port {sampled}"))?;
        row.duty_percent
            .get(row.md_vc)
            .copied()
            .ok_or_else(|| format!("served result has no duty for VC {}", row.md_vc))
    };
    let wire_rows = |results: &[sensorwise::WireResult]| -> Result<Vec<(f64, f64, u64)>, String> {
        results
            .chunks_exact(2)
            .map(|pair| {
                Ok((
                    md_duty(&pair[0])?,
                    md_duty(&pair[1])?,
                    pair[0].invariant_violations + pair[1].invariant_violations,
                ))
            })
            .collect()
    };
    let rows: Vec<(f64, f64, u64)> = if let Some(list) = args.flags.get("remote") {
        let addrs: Vec<String> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        let pool = noc_campaign::WorkerPool::new(&addrs).map_err(|e| e.to_string())?;
        let retries = args.get("retries", 2u32)?;
        let specs: Vec<String> = batch
            .iter()
            .map(|j| sensorwise::spec_to_json(j).map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        eprintln!(
            "dispatching {} sweep points to {} worker(s)...",
            specs.len(),
            pool.len()
        );
        let results = noc_campaign::run_batch_remote(&pool, &specs, retries, 10, 60_000)
            .map_err(|e| e.to_string())?;
        wire_rows(&results)?
    } else if let Some(dir) = args.flags.get("store") {
        let store = noc_campaign::FsResultStore::open(dir).map_err(|e| e.to_string())?;
        let outcome =
            sensorwise::run_batch_cached(&batch, jobs, &store).map_err(|e| e.to_string())?;
        eprintln!(
            "result store {dir}: {} hits, {} misses",
            outcome.hits, outcome.misses
        );
        wire_rows(&outcome.results)?
    } else {
        let results = run_batch(&batch, jobs);
        for r in &results {
            report_invariants(r)?;
        }
        results
            .chunks_exact(2)
            .map(|pair| {
                (
                    pair[0].east_input(NodeId(0)).md_duty(),
                    pair[1].east_input(NodeId(0)).md_duty(),
                    0,
                )
            })
            .collect()
    };

    if json {
        // Same canonical float formatting as the wire codec: Rust's
        // shortest round-trip `Display`.
        let mut out = format!(
            "{{\"cores\":{cores},\"vcs\":{vcs},\"warmup\":{warmup},\"measure\":{measure},\
             \"sampled_port\":{},\"points\":[",
            sensorwise::codec::json_string(&sampled)
        );
        for (i, (&rate, &(rr, sw, _))) in rates.iter().zip(&rows).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rate\":{rate},\"rr_md_duty\":{rr},\"sw_md_duty\":{sw},\"gap\":{}}}",
                rr - sw
            ));
        }
        out.push_str("]}");
        println!("{out}");
    } else {
        println!(
            "{:>6} {:>10} {:>10} {:>8}   ({}x{} mesh, {} VCs, MD VC of r0 east)",
            "rate", "rr MD", "sw MD", "gap", cores, cores, vcs
        );
        for (&rate, &(a, b, _)) in rates.iter().zip(&rows) {
            println!("{rate:>6.2} {a:>9.1}% {b:>9.1}% {:>7.1}%", a - b);
        }
    }
    let violations: u64 = rows.iter().map(|r| r.2).sum();
    if violations > 0 {
        return Err(format!("{violations} invariant violation(s) detected"));
    }
    Ok(())
}

fn cmd_record(args: &Args) -> Result<(), String> {
    let out = args.required("out")?.to_string();
    let cores = args.get("cores", 16usize)?;
    let rate = args.get("rate", 0.2f64)?;
    let cycles = args.get("cycles", 50_000u64)?;
    let seed = args.get("seed", 1u64)?;
    let k = (cores as f64).sqrt().round() as usize;
    let mesh = Mesh2D::new(k, k);
    let mut rec = TraceRecorder::new(SyntheticTraffic::uniform(mesh, rate, 5, seed));
    let mut sink = Vec::new();
    for c in 0..cycles {
        rec.emit(c, &mut sink);
    }
    let trace = rec.into_trace();
    let file = File::create(&out).map_err(|e| format!("cannot create {out}: {e}"))?;
    trace
        .to_writer(BufWriter::new(file))
        .map_err(|e| format!("write failed: {e}"))?;
    println!(
        "recorded {} packets over {cycles} cycles to {out}",
        trace.len()
    );
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let path = args.required("trace")?.to_string();
    let cores = args.get("cores", 16usize)?;
    let vcs = args.get("vcs", 4usize)?;
    let policy = parse_policy(args.get("policy", "sensor-wise".to_string())?.as_str())?;
    let file = File::open(&path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let trace = Trace::from_reader(BufReader::new(file)).map_err(|e| format!("bad trace: {e}"))?;
    let horizon = trace.events().last().map(|e| e.cycle + 1).unwrap_or(0);
    eprintln!(
        "replaying {} packets ({horizon} cycles) under {policy}...",
        trace.len()
    );
    let telemetry = parse_telemetry(args)?;
    let mut replay = TraceReplay::new(trace);
    let mut noc = NocConfig::paper_synthetic(cores, vcs);
    noc.topology = parse_topology(args)?;
    let topo = noc.build_topology().map_err(|e| e.to_string())?;
    let cfg = ExperimentConfig::new(noc, policy)
        .with_cycles(0, horizon + 2_000)
        .with_invariants(parse_invariants(args)?)
        .with_telemetry(telemetry.spec);
    let result = run_experiment(&cfg, &mut replay);
    print_port_table(&result, &topo, args.has("csv"));
    write_telemetry(&result, &telemetry)?;
    report_invariants(&result)
}

/// Nearest-rank percentile of a sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let path = args.required("trace")?.to_string();
    let json = args.has("json");
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let events = read_jsonl(&text).map_err(|e| format!("bad trace {path}: {e}"))?;
    if !json {
        println!("{} events from {path}", events.len());
    }

    let mut counts = vec![0u64; EventKind::TAGS.len()];
    let mut churn: BTreeMap<String, u64> = BTreeMap::new();
    let mut latencies: Vec<u64> = Vec::new();
    for ev in &events {
        // TAGS covers every kind; position() cannot miss.
        if let Some(i) = EventKind::TAGS.iter().position(|&t| t == ev.kind.tag()) {
            counts[i] += 1;
        }
        match &ev.kind {
            EventKind::GateOn { port, .. } | EventKind::GateOff { port, .. } => {
                *churn.entry(port.to_string()).or_insert(0) += 1;
            }
            EventKind::PacketDone { latency, .. } => latencies.push(*latency),
            _ => {}
        }
    }

    latencies.sort_unstable();
    if json {
        // Machine-readable summary, keyed and quoted via the shared
        // wire-codec string escaper; the digest matches `run --json`.
        let mut out = format!("{{\"events\":{},\"counts\":{{", events.len());
        let mut first = true;
        for (tag, n) in EventKind::TAGS.iter().zip(&counts) {
            if *n > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("{}:{n}", sensorwise::codec::json_string(tag)));
            }
        }
        out.push_str("},\"gating_churn\":{");
        for (i, (port, n)) in churn.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{n}", sensorwise::codec::json_string(port)));
        }
        out.push_str("},");
        if latencies.is_empty() {
            out.push_str("\"latency\":null,");
        } else {
            out.push_str(&format!(
                "\"latency\":{{\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{},\"packets\":{}}},",
                percentile(&latencies, 0.5),
                percentile(&latencies, 0.95),
                percentile(&latencies, 0.99),
                latencies[latencies.len() - 1],
                latencies.len()
            ));
        }
        out.push_str(&format!("\"digest\":\"{:016x}\"}}", EventDigest::of(&events)));
        println!("{out}");
        return Ok(());
    }
    println!("event counts:");
    for (tag, n) in EventKind::TAGS.iter().zip(&counts) {
        if *n > 0 {
            println!("  {tag:<10} {n}");
        }
    }
    if !churn.is_empty() {
        println!("gating churn per port (gate_on + gate_off):");
        for (port, n) in &churn {
            println!("  {port:<12} {n}");
        }
    }
    if !latencies.is_empty() {
        println!(
            "latency: p50 {} p95 {} p99 {} max {} cycles ({} packets)",
            percentile(&latencies, 0.5),
            percentile(&latencies, 0.95),
            percentile(&latencies, 0.99),
            latencies[latencies.len() - 1],
            latencies.len()
        );
    }
    println!("digest: {:016x}", EventDigest::of(&events));
    Ok(())
}

/// Exhaustively model-checks the cooperative gating protocol: breadth-
/// first enumeration of every reachable whole-cycle state of the
/// reference 2×2/2-VC mesh under every interleaving of injections,
/// controller firings and control-epoch gaps, with the full invariant
/// oracle consulted at each state. A found violation exits nonzero and,
/// with `--counterexample-out`, lowers the shortest violating path to a
/// JSONL trace consumable by `stats --trace`.
fn cmd_verify(args: &Args) -> Result<(), String> {
    use noc_modelcheck::{explore, FaultKind, StandardOracle};

    let depth = args.get("depth", sensorwise::modelcheck::DEFAULT_DEPTH)?;
    let symmetry = args.has("symmetry");
    let fault = match args.flags.get("inject-fault") {
        Some(name) => Some(FaultKind::parse(name)?),
        None => None,
    };
    let policies = match args.flags.get("policy") {
        Some(name) => vec![parse_policy(name)?],
        None => sensorwise::checked_policies(),
    };
    let cx_out = args.flags.get("counterexample-out");

    let mut failures = 0usize;
    for policy in policies {
        let mut cfg = sensorwise::explore_config_for(policy, depth, symmetry);
        cfg.fault = fault;
        let mut ctrl = sensorwise::controller_for(policy);
        let report = explore(&cfg, &mut ctrl, &mut StandardOracle);
        println!("{}: {}", policy.label(), report.summary());
        if let Some(cx) = &report.counterexample {
            failures += 1;
            eprintln!("counterexample for {}: {}", policy.label(), cx.describe());
            if let Some(path) = cx_out {
                let jsonl = cx.to_jsonl(&cfg, &mut ctrl);
                std::fs::write(path, jsonl)
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("counterexample trace written to {path}");
            }
        }
    }
    if failures > 0 {
        Err(format!("{failures} exploration(s) violated the protocol invariants"))
    } else {
        Ok(())
    }
}

fn cmd_area() -> Result<(), String> {
    println!("{}", analyze_area(&AreaParams::paper_45nm()));
    Ok(())
}

/// Builds a lifetime-campaign spec from `campaign run` flags.
fn campaign_spec_from_args(args: &Args) -> Result<noc_campaign::CampaignSpec, String> {
    let scenario = SyntheticScenario {
        cores: args.get("cores", 4usize)?,
        vcs: args.get("vcs", 2usize)?,
        injection_rate: args.get("rate", 0.15f64)?,
    };
    let policy = parse_policy(args.get("policy", "sensor-wise".to_string())?.as_str())?;
    let warmup = args.get("warmup", 500u64)?;
    let measure = args.get("measure", 5_000u64)?;
    let mut job = scenario.job(policy, warmup, measure);
    job.traffic = job.traffic.with_seed(args.get("seed", 1u64)?);
    if args.flags.contains_key("pv-seed") {
        job.cfg = job.cfg.with_pv_seed(args.get("pv-seed", 0u64)?);
    }
    Ok(noc_campaign::CampaignSpec {
        base: job,
        epochs: args.get("epochs", 4u32)?,
        age_acceleration: args.get("age-acceleration", 1.0e9f64)?,
        drain_limit: args.get("drain-limit", 10_000u64)?,
    })
}

/// Opens the optional content-addressed result store named by `--store`.
fn open_optional_store(args: &Args) -> Result<Option<noc_campaign::FsResultStore>, String> {
    match args.flags.get("store") {
        None => Ok(None),
        Some(dir) => noc_campaign::FsResultStore::open(dir)
            .map(Some)
            .map_err(|e| e.to_string()),
    }
}

/// Builds the remote executor named by `--remote addr1,addr2,...` (with
/// `--retries N` reassignments per epoch), when the flag is present. The
/// workers must share the `--store` directory as their `--cache-dir`:
/// the store is the result plane the campaign recovers from after kills.
fn open_optional_remote(args: &Args) -> Result<Option<noc_campaign::RemoteExecutor>, String> {
    let Some(list) = args.flags.get("remote") else {
        return Ok(None);
    };
    let addrs: Vec<String> = list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let retries = args.get("retries", 2u32)?;
    let pool = noc_campaign::WorkerPool::new(&addrs).map_err(|e| e.to_string())?;
    Ok(Some(noc_campaign::RemoteExecutor::new(pool, retries)))
}

/// The spans sidecar next to a campaign checkpoint: one `epoch` span per
/// completed epoch, appended as each epoch checkpoints so `campaign
/// status` can report wall time and throughput without re-running.
fn campaign_spans_path(checkpoint: &std::path::Path) -> std::path::PathBuf {
    checkpoint.with_extension("spans.jsonl")
}

/// Appends one span to `path`. Sidecar timing is observability, not
/// state: failures are reported but never fail the campaign.
fn append_span(path: &std::path::Path, span: &Span) {
    let mut line = String::new();
    span.write_jsonl(&mut line);
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("warning: cannot append span to {}: {e}", path.display());
    }
}

/// Prints one epoch row of the campaign trajectory table.
fn print_epoch_row(report: &noc_campaign::EpochReport) {
    println!(
        "{:>5} {:>10} {:>7} {:>16x} {:>12.4} {:>9.4}",
        report.index,
        report.end_cycle,
        report.drain_cycles,
        report.digest,
        report.max_delta_vth_mv,
        report.worst_delay_degradation_percent
    );
}

/// Runs every remaining epoch, checkpointing after each one, and prints
/// the per-epoch aging trajectory plus the final chained digest — the
/// witness the kill-and-resume smoke test diffs.
///
/// With a `remote` executor the epochs run as served jobs on the worker
/// pool instead of this thread, and the checkpoint doubles as the
/// coordination log: the in-flight dispatch is checkpointed *before* the
/// job leaves, and cleared (with the epoch's outcome folded in) after —
/// so a kill at any moment leaves either a completed epoch or a visible
/// in-flight entry for the resume path to re-dispatch.
fn run_epochs(
    campaign: &mut noc_campaign::Campaign,
    store: Option<&noc_campaign::FsResultStore>,
    checkpoint: &std::path::Path,
    remote: Option<&noc_campaign::RemoteExecutor>,
) -> Result<(), String> {
    println!(
        "{:>5} {:>10} {:>7} {:>16} {:>12} {:>9}",
        "epoch", "end_cycle", "drain", "digest", "max dVth mV", "delay %"
    );
    let spans_path = campaign_spans_path(checkpoint);
    let anchor = profclock::now();
    // A remote resume first folds in epochs some worker already filed in
    // the shared result store — no re-simulation, no worker contact.
    if remote.is_some() {
        if let Some(shared) = store {
            let recovered = noc_campaign::recover_from_store(campaign, shared)
                .map_err(|e| e.to_string())?;
            if !recovered.is_empty() {
                campaign.clear_dispatch();
                campaign.save(checkpoint).map_err(|e| e.to_string())?;
                eprintln!(
                    "recovered {} epoch(s) from the shared result store",
                    recovered.len()
                );
                for report in &recovered {
                    print_epoch_row(report);
                }
            }
        }
    }
    while !campaign.is_finished() {
        let start_us = profclock::us_since(anchor);
        let index = campaign.completed();
        let report = match remote {
            Some(exec) => {
                let worker = exec
                    .planned_worker(index, 0)
                    .unwrap_or_else(|| "-".to_string());
                campaign.push_dispatch(noc_campaign::DispatchEntry {
                    epoch: index,
                    worker,
                    attempt: 0,
                });
                campaign.save(checkpoint).map_err(|e| e.to_string())?;
                let report = campaign
                    .run_next_epoch_with(exec, store.map(|s| s as &dyn sensorwise::ResultCache))
                    .map_err(|e| e.to_string())?;
                campaign.clear_dispatch();
                report
            }
            None => campaign
                .run_next_epoch(store.map(|s| s as &dyn sensorwise::ResultCache))
                .map_err(|e| e.to_string())?,
        };
        let dur_us = profclock::us_since(anchor).saturating_sub(start_us);
        campaign.save(checkpoint).map_err(|e| e.to_string())?;
        append_span(
            &spans_path,
            &Span::new(
                SpanKind::Epoch,
                &format!("epoch-{}", report.index),
                NO_PARENT,
                start_us,
                dur_us,
            ),
        );
        if let Some(exec) = remote {
            for span in exec.drain_spans() {
                append_span(&spans_path, &span);
            }
        }
        print_epoch_row(&report);
    }
    println!("chained digest: {:016x}", campaign.chained_digest());
    Ok(())
}

/// Summarizes a span JSONL file (`serve --spans-out`, a worker-failure
/// dump, or a campaign spans sidecar): aggregates durations per
/// kind-chain (`request`, `request/job`, `request/job/experiment`,
/// `epoch`, …) and prints an indented latency breakdown tree.
fn cmd_spans(file: &str, args: &Args) -> Result<(), String> {
    let text =
        std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let spans = read_spans_jsonl(&text).map_err(|e| format!("{file}: {e}"))?;
    if spans.is_empty() {
        println!("{file}: no spans");
        return Ok(());
    }
    // Spans link by derived id; resolve each span's ancestry to group by
    // the chain of kinds from its outermost recorded ancestor.
    let by_id: BTreeMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    let mut groups: BTreeMap<String, Histogram> = BTreeMap::new();
    for s in &spans {
        let mut chain = vec![s.kind.tag()];
        let mut cur = s.parent;
        // Cap the walk so a (malformed) parent cycle cannot hang us.
        for _ in 0..8 {
            if cur == NO_PARENT {
                break;
            }
            let Some(parent) = by_id.get(&cur) else { break };
            chain.push(parent.kind.tag());
            cur = parent.parent;
        }
        chain.reverse();
        groups
            .entry(chain.join("/"))
            .or_default()
            .record(s.dur_us);
    }
    println!("{}: {} spans", file, spans.len());
    println!(
        "{:<34} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "stage", "count", "p50(us)", "p95(us)", "p99(us)", "total(ms)"
    );
    // BTreeMap orders `request` before `request/job`, so parents print
    // directly above their children; indent by chain depth.
    for (path, h) in &groups {
        let depth = path.matches('/').count();
        let leaf = path.rsplit('/').next().unwrap_or(path);
        let label = format!("{}{}", "  ".repeat(depth), leaf);
        println!(
            "{:<34} {:>8} {:>10} {:>10} {:>10} {:>12.2}",
            label,
            h.count(),
            h.quantile_upper(0.5).unwrap_or(0),
            h.quantile_upper(0.95).unwrap_or(0),
            h.quantile_upper(0.99).unwrap_or(0),
            h.sum() as f64 / 1e3
        );
    }
    if args.has("json") {
        // Machine-readable variant for scripts, keyed by chain path.
        let rows: Vec<String> = groups
            .iter()
            .map(|(path, h)| {
                format!(
                    "{{\"stage\":\"{path}\",\"count\":{},\"p50_us\":{},\"p95_us\":{},\
                     \"p99_us\":{},\"total_us\":{}}}",
                    h.count(),
                    h.quantile_upper(0.5).unwrap_or(0),
                    h.quantile_upper(0.95).unwrap_or(0),
                    h.quantile_upper(0.99).unwrap_or(0),
                    h.sum()
                )
            })
            .collect();
        println!("[{}]", rows.join(","));
    }
    Ok(())
}

fn cmd_campaign(action: &str, args: &Args) -> Result<(), String> {
    let checkpoint = std::path::PathBuf::from(args.required("checkpoint")?);
    match action {
        "run" => {
            let spec = campaign_spec_from_args(args)?;
            let store = open_optional_store(args)?;
            let remote = open_optional_remote(args)?;
            let mut campaign =
                noc_campaign::Campaign::new(spec).map_err(|e| e.to_string())?;
            eprintln!(
                "campaign: {} epochs, age acceleration {:e}, checkpoint {}{}",
                campaign.spec().epochs,
                campaign.spec().age_acceleration,
                checkpoint.display(),
                remote
                    .as_ref()
                    .map(|r| format!(", {} remote worker(s)", r.pool().len()))
                    .unwrap_or_default()
            );
            run_epochs(&mut campaign, store.as_ref(), &checkpoint, remote.as_ref())
        }
        "resume" => {
            let mut campaign =
                noc_campaign::Campaign::load(&checkpoint).map_err(|e| e.to_string())?;
            if campaign.is_finished() {
                println!(
                    "campaign already finished ({} epochs)",
                    campaign.completed()
                );
                println!("chained digest: {:016x}", campaign.chained_digest());
                return Ok(());
            }
            eprintln!(
                "resuming at epoch {}/{}",
                campaign.completed(),
                campaign.spec().epochs
            );
            for entry in campaign.dispatch_ledger() {
                eprintln!(
                    "in flight at checkpoint: epoch {} on {} (attempt {}) — re-dispatching",
                    entry.epoch, entry.worker, entry.attempt
                );
            }
            let store = open_optional_store(args)?;
            let remote = open_optional_remote(args)?;
            run_epochs(&mut campaign, store.as_ref(), &checkpoint, remote.as_ref())
        }
        "status" => {
            let campaign =
                noc_campaign::Campaign::load(&checkpoint).map_err(|e| e.to_string())?;
            println!(
                "{}: {}/{} epochs completed",
                checkpoint.display(),
                campaign.completed(),
                campaign.spec().epochs
            );
            if let Some(cycle) = campaign.current_cycle() {
                println!("simulated cycles: {cycle}");
            }
            // Wall-time per epoch from the spans sidecar, when present.
            // Old checkpoints without one degrade to the bare listing.
            let spans = std::fs::read_to_string(campaign_spans_path(&checkpoint))
                .ok()
                .and_then(|text| read_spans_jsonl(&text).ok())
                .unwrap_or_default();
            let epoch_wall_us: BTreeMap<String, u64> = spans
                .iter()
                .filter(|s| s.kind == SpanKind::Epoch)
                .map(|s| (s.name.clone(), s.dur_us))
                .collect();
            let mut prev_end = 0u64;
            for (i, (end, digest)) in campaign.epoch_ends().iter().enumerate() {
                let cycles = end.saturating_sub(prev_end);
                prev_end = *end;
                match epoch_wall_us.get(&format!("epoch-{i}")) {
                    Some(&us) if us > 0 => {
                        // cycles per wall-millisecond is numerically kcycles/s.
                        let kcps = cycles as f64 * 1e3 / us as f64;
                        println!(
                            "  epoch {i}: end_cycle {end} digest {digest:016x} \
                             wall {:.1} ms ({kcps:.1} kcycles/s)",
                            us as f64 / 1e3
                        );
                    }
                    _ => println!("  epoch {i}: end_cycle {end} digest {digest:016x}"),
                }
            }
            // Per-worker dispatch state from the checkpoint's
            // coordination log: entries here were in flight on a remote
            // pool when the front end last checkpointed (or died).
            for entry in campaign.dispatch_ledger() {
                println!(
                    "  in flight: epoch {} on worker {} (attempt {})",
                    entry.epoch, entry.worker, entry.attempt
                );
            }
            if let Some(ledger) = campaign.ledger() {
                println!("max dVth: {:.4} mV", ledger.max_delta_vth_mv());
            }
            println!("chained digest: {:016x}", campaign.chained_digest());
            Ok(())
        }
        other => Err(format!(
            "unknown campaign action `{other}` (run | resume | status)"
        )),
    }
}

/// `trace gen | info | verify` — the `NBTITRC` binary-trace toolbox.
///
/// `gen` materializes a deterministic application mix, `info` summarizes
/// a trace file, `verify` streams it end to end checking every chunk
/// checksum (corruption exits nonzero with the typed reason).
fn cmd_trace(action: &str, args: &Args) -> Result<(), String> {
    match action {
        "gen" => {
            let out = args.required("out")?.to_string();
            let kind = workload::MixKind::parse(args.required("mix")?)?;
            let spec = workload::MixSpec {
                kind,
                nodes: args.get("nodes", 16u16)?,
                rate: args.get("rate", 0.2f64)?,
                packet_len: args.get("len", 5u16)?,
                seed: args.get("seed", 1u64)?,
            };
            let cycles = args.get("cycles", 10_000u64)?;
            let writer = workload::MixGenerator::new(spec)
                .write_trace(cycles)
                .map_err(|e| e.to_string())?;
            let records = writer.len();
            writer
                .save(std::path::Path::new(&out))
                .map_err(|e| format!("cannot write {out}: {e}"))?;
            println!(
                "wrote {records} records ({} nodes, {cycles} cycles, mix {}) to {out}",
                spec.nodes,
                kind.name()
            );
            Ok(())
        }
        "info" | "verify" => {
            let path = args.required("trace")?.to_string();
            let summary = workload::verify_file(std::path::Path::new(&path))
                .map_err(|e| format!("{path}: {e}"))?;
            if action == "verify" {
                println!(
                    "{path}: OK ({} records in {} chunks, every checksum valid)",
                    summary.records, summary.chunks
                );
            } else if args.has("json") {
                println!(
                    "{{\"nodes\":{},\"records\":{},\"chunks\":{},\"first_cycle\":{},\
                     \"last_cycle\":{},\"flits\":{}}}",
                    summary.header.num_nodes,
                    summary.records,
                    summary.chunks,
                    summary.first_cycle,
                    summary.last_cycle,
                    summary.flits
                );
            } else {
                println!("{path}: NBTITRC v{}", workload::FORMAT_VERSION);
                println!("  nodes   {}", summary.header.num_nodes);
                println!("  records {} (in {} chunks)", summary.records, summary.chunks);
                println!("  cycles  {}..={}", summary.first_cycle, summary.last_cycle);
                println!("  flits   {}", summary.flits);
            }
            Ok(())
        }
        other => Err(format!("unknown trace action `{other}` (gen | info | verify)")),
    }
}

fn cmd_cache(action: &str, args: &Args) -> Result<(), String> {
    let store =
        noc_campaign::FsResultStore::open(args.required("dir")?).map_err(|e| e.to_string())?;
    match action {
        "stats" => {
            let stats = store.stats().map_err(|e| e.to_string())?;
            if args.has("json") {
                println!("{{\"entries\":{},\"bytes\":{}}}", stats.entries, stats.bytes);
            } else {
                println!(
                    "{}: {} entries, {} bytes",
                    store.dir().display(),
                    stats.entries,
                    stats.bytes
                );
            }
            Ok(())
        }
        "gc" => {
            let keep: usize = args
                .required("keep")?
                .parse()
                .map_err(|e| format!("bad --keep: {e}"))?;
            let report = store.gc(keep).map_err(|e| e.to_string())?;
            println!("removed {} entries, kept {}", report.removed, report.kept);
            Ok(())
        }
        other => Err(format!("unknown cache action `{other}` (stats | gc)")),
    }
}

const HELP: &str = "nbti-noc — sensor-wise NBTI mitigation for NoC buffers (DATE 2013 reproduction)

subcommands:
  run     one scenario under one policy    [--cores --vcs --rate --policy --warmup --measure --invariants --csv]
                                           [--topology mesh|torus|ring|irregular --edges \"a-b,c-d\" (irregular)]
                                           [--mix KIND | --trace-in FILE (NBTITRC workload) --len L --seed N]
                                           [--digest (print the telemetry digest) --profile]
                                           [--trace-out FILE --metrics-out FILE --sample-period N]
  sweep   gap vs injection rate            [--cores --vcs --warmup --measure --invariants --jobs]
                                           [--store DIR (memoize probes) --json]
                                           [--remote addr1,addr2 --retries N (dispatch points to workers)]
  record  record a synthetic trace         --out FILE [--cores --rate --cycles --seed]
  replay  replay a trace under a policy    --trace FILE [--cores --vcs --policy --invariants --csv]
                                           [--trace-out FILE --metrics-out FILE --sample-period N]
  stats   summarize a telemetry trace      --trace FILE [--json] (event counts, churn, latency, digest)
  trace gen     generate an NBTITRC mix trace    --out FILE --mix KIND [--nodes 16 --cycles 10000
                                                  --rate 0.2 --len 5 --seed 1]
  trace info    summarize an NBTITRC trace       --trace FILE [--json]
  trace verify  stream-check every checksum      --trace FILE (corruption exits nonzero, typed)
  verify  exhaustively model-check the     [--policy P (default: every policy) --depth N --symmetry]
          gating protocol on a 2x2 mesh    [--counterexample-out FILE
                                            --inject-fault gate-occupied|double-credit|drop-flit]
  area    print the §III-D area overhead report
  serve   HTTP job API for experiments     [--addr 127.0.0.1:7878 --workers N --queue-depth N --timeout-ms N]
                                           [--cache-dir DIR (serve repeat specs from the result store)]
                                           [--spans-out FILE (flight-recorder span dump, JSONL)]
  spans   summarize a span JSONL file      FILE [--json] (per-stage latency breakdown tree)
  submit  load-generating client           [--addr --count --concurrency --cores --vcs --rate --policy
                                            --warmup --measure --seed --batch --shutdown]
  campaign run     multi-epoch lifetime campaign   --checkpoint FILE [--epochs 4 --age-acceleration 1e9
                   with aging feedback              --drain-limit N --cores --vcs --rate --policy
                                                    --warmup --measure --seed --pv-seed --store DIR
                                                    --remote addr1,addr2 --retries N]
  campaign resume  continue from a checkpoint      --checkpoint FILE [--store DIR --remote ... --retries N]
  campaign status  inspect a checkpoint            --checkpoint FILE (shows in-flight dispatches)
  cache stats      result-store statistics         --dir DIR [--json]
  cache gc         evict oldest store entries      --dir DIR --keep N
  help    this text

policies: baseline | rr | sw-nt | sw | sw-kN (e.g. sw-k2)
topologies: mesh (default, the paper's fabric) | torus | ring | irregular --edges \"a-b,c-d\"
mixes: hotspot-server | all-to-all-shuffle | nearest-neighbor-stencil | bursty-client;
       `run --mix K` drives the generator live, `trace gen` + `run --trace-in F` replays the
       same schedule from disk — both yield bit-identical telemetry digests
invariant levels: off (default) | cheap | full — runtime protocol checks; violations exit nonzero
telemetry: --trace-out writes a JSONL event trace, --metrics-out a per-port CSV series;
           `run --profile` prints per-stage p50/p95/p99 latency (ns) and kcycles/s —
           results and digests stay bit-identical to an unprofiled run
serving: `run --json` prints the same result JSON the service returns (digest included);
         `sweep --json` and `stats --json` emit machine-readable summaries in the same codec;
         `submit` cross-checks every served digest against a local run of the same spec
campaigns: per-buffer NBTI drift carries across epochs and feeds the next epoch's sensors;
           checkpoints (NBTICAMP v2, reads v1) make resume bit-identical to an uninterrupted run;
           `--remote` dispatches epochs to `serve` workers sharing a `--store`/`--cache-dir` result
           plane — digests stay bit-identical to a local run, even across a worker kill + resume
paper tables: see `cargo run -p nbti-noc-bench --bin table2|table3|table4|...`";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        println!("{HELP}");
        return ExitCode::SUCCESS;
    };
    let run = || -> Result<(), String> {
        // `campaign`, `cache` and `trace` take an action word before the
        // flags.
        if cmd == "campaign" || cmd == "cache" || cmd == "trace" {
            let Some((action, flags)) = rest.split_first() else {
                return Err(format!(
                    "{cmd} needs an action: {}",
                    match cmd.as_str() {
                        "campaign" => "run | resume | status",
                        "cache" => "stats | gc",
                        _ => "gen | info | verify",
                    }
                ));
            };
            let args = Args::parse(flags)?;
            return match cmd.as_str() {
                "campaign" => cmd_campaign(action, &args),
                "cache" => cmd_cache(action, &args),
                _ => cmd_trace(action, &args),
            };
        }
        // `spans` takes the file as a positional argument.
        if cmd == "spans" {
            let Some((file, flags)) = rest.split_first() else {
                return Err("spans needs a JSONL file (try `nbti-noc spans spans.jsonl`)".into());
            };
            let args = Args::parse(flags)?;
            return cmd_spans(file, &args);
        }
        let args = Args::parse(rest)?;
        match cmd.as_str() {
            "run" => cmd_run(&args),
            "sweep" => cmd_sweep(&args),
            "record" => cmd_record(&args),
            "replay" => cmd_replay(&args),
            "stats" => cmd_stats(&args),
            "verify" => cmd_verify(&args),
            "area" => cmd_area(),
            "serve" => cmd_serve(&args),
            "submit" => cmd_submit(&args),
            "help" | "--help" | "-h" => {
                println!("{HELP}");
                Ok(())
            }
            other => Err(format!("unknown subcommand `{other}` (try help)")),
        }
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
