//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to a crates.io registry, so the
//! workspace vendors the exact API subset it consumes: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`) and the
//! [`distributions::Distribution`] trait.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — small, fast
//! and statistically solid for simulation workloads. It is **not** the
//! upstream `StdRng` (ChaCha12), so absolute random streams differ from
//! builds against crates.io `rand`; every test in this repository asserts
//! distributional or qualitative properties rather than golden values, and
//! the repository's own determinism contract (same seed ⇒ same stream) is
//! preserved exactly.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`f64` in `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range from which a uniform sample can be drawn (`rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128 * span) >> 64;
                self.start + draw as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                lo + draw as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + u * (self.end - self.start);
                // Guard the open upper bound against rounding.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::{unit_f64, Rng};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample using `rng`.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: `[0, 1)` floats, uniform integers, fair
    /// booleans.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f64(rng.next_u64()) as f32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    ///
    /// Deterministic: the stream is a pure function of the seed, with no
    /// global or thread-local state — the property the parallel experiment
    /// engine's determinism contract rests on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Standard};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn int_ranges_are_uniform_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            let v = rng.gen_range(0usize..5);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed counts: {counts:?}");
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(3u8..=7);
            assert!((3..=7).contains(&v));
        }
    }

    #[test]
    fn float_ranges_are_bounded() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
            let w = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn standard_distribution_samples_through_trait() {
        let mut rng = StdRng::seed_from_u64(5);
        let x: f64 = Standard.sample(&mut rng);
        assert!((0.0..1.0).contains(&x));
        let _: bool = Standard.sample(&mut rng);
    }
}
