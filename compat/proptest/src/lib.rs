//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a crates.io registry, so this crate
//! vendors the subset of proptest's API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple strategies, [`collection::vec`],
//! [`arbitrary::any`], [`strategy::Just`], `prop_oneof!`, and the
//! `proptest!` test macro with `prop_assert*` / `prop_assume!`.
//!
//! Differences from upstream proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the full generated
//!   inputs instead of a minimized counterexample.
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of
//!   the test name (override with `PROPTEST_RNG_SEED`), so failures
//!   reproduce exactly across runs and machines.
//! * **Default case count 64** (override with `PROPTEST_CASES`); the
//!   cycle-accurate simulator makes upstream's 256 needlessly slow here.

/// Test-runner plumbing: configuration, RNG and case-level errors.
pub mod test_runner {
    /// Run configuration, mirroring `proptest::test_runner::ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum `prop_assume!` rejections tolerated before the run
        /// aborts.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig {
                cases,
                max_global_rejects: 4096,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// An assertion failed; the test fails.
        Fail(String),
    }

    /// The per-test deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from the test name (or `PROPTEST_RNG_SEED`).
        pub fn for_test(name: &str) -> Self {
            let base = std::env::var("PROPTEST_RNG_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0xDA7E_2013_C0FF_EE00u64);
            // FNV-1a over the name keeps distinct tests on distinct streams.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: base ^ h,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform index in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "index over empty range");
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }
    }
}

/// Strategies: the value-generation half of proptest.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe shim behind [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<V: Debug, S: Strategy<Value = V>> DynStrategy<V> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> V {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Picks one of several strategies uniformly (the `prop_oneof!`
    /// backing type).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V: Debug> Union<V> {
        /// A union over `arms`.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.index(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let draw = (rng.next_u64() as u128 * span) >> 64;
                    self.start + draw as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    let draw = (rng.next_u64() as u128 * span) >> 64;
                    lo + draw as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                    if v < self.end { v } else { self.start }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + rng.unit_f64() as $t * (hi - lo)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite full-range doubles: sign * mantissa * 2^exp.
            let m = rng.unit_f64() * 2.0 - 1.0;
            let e = rng.index(129) as i32 - 64;
            m * (e as f64).exp2()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// An inclusive-exclusive element-count specification.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo
                + if span > 0 {
                    rng.index(span)
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob import used by every property test.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` == `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{:?}` != `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

/// Rejects the current inputs (the case is regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn` runs `cases` times over freshly
/// generated inputs; failures panic with the generated values (no
/// shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr)) => {};
    (cfg = ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(why)) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "too many prop_assume! rejections ({rejected}); last: {why}"
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(why)) => {
                        panic!(
                            "proptest case {} failed: {why}\n  inputs: {inputs}",
                            passed + 1
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tag {
        A,
        B(usize),
    }

    fn tag_strategy() -> impl Strategy<Value = Tag> {
        prop_oneof![
            Just(Tag::A),
            (1usize..10).prop_map(Tag::B),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0.5f64..=2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..=2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            for &b in &v {
                prop_assert!(b < 4);
            }
        }

        #[test]
        fn flat_map_threads_dependent_values(
            pair in (2usize..5).prop_flat_map(|n| {
                crate::collection::vec(0usize..n, 1..4).prop_map(move |v| (n, v))
            })
        ) {
            let (n, v) = pair;
            for &x in &v {
                prop_assert!(x < n);
            }
        }

        #[test]
        fn oneof_produces_every_arm_eventually(t in tag_strategy()) {
            match t {
                Tag::A => {}
                Tag::B(n) => prop_assert!((1..10).contains(&n)),
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = 0usize..1000;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unused)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}
