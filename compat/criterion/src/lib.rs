//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach a crates.io registry, so this crate
//! vendors the API subset the workspace's benches use: [`Criterion`],
//! benchmark groups with [`Throughput`] annotations, [`BenchmarkId`],
//! `iter` / `iter_batched` benchers and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Statistics are intentionally simple: each benchmark is warmed up, then
//! timed over a fixed wall-clock budget, and the per-iteration mean and
//! min are printed. No HTML reports, no regression analysis — enough to
//! compare hot paths before and after a change.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box`.
pub use std::hint::black_box;

/// Wall-clock budget spent measuring each benchmark after warm-up.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Wall-clock budget spent warming each benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Ignored tuning knob, kept for API compatibility.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group {}", name.into());
        BenchmarkGroup {
            _parent: self,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }
}

/// Units-of-work annotation for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A titled collection of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("  {id}"), self.throughput, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("  {id}"), self.throughput, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group (a no-op here, kept for API compatibility).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label with both a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// A label with only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// How much setup output to batch per timing draw (ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The timing loop handle passed to each benchmark closure.
pub struct Bencher {
    /// (iterations, total busy time) accumulated by the harness.
    samples: Vec<(u64, Duration)>,
    budget: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push((1, t0.elapsed()));
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push((1, t0.elapsed()));
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, f: &mut F) {
    // Warm-up pass: discarded measurements.
    let mut warm = Bencher {
        samples: Vec::new(),
        budget: WARMUP_BUDGET,
    };
    f(&mut warm);
    let mut b = Bencher {
        samples: Vec::new(),
        budget: MEASURE_BUDGET,
    };
    f(&mut b);
    let iters: u64 = b.samples.iter().map(|(n, _)| n).sum();
    if iters == 0 {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().map(|(_, d)| *d).sum();
    let mean = total / iters as u32;
    let min = b
        .samples
        .iter()
        .map(|(_, d)| *d)
        .min()
        .unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 * iters as f64 / total.as_secs_f64();
            format!("  {per_sec:>12.0} elem/s")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 * iters as f64 / total.as_secs_f64();
            format!("  {per_sec:>12.0} B/s")
        }
        None => String::new(),
    };
    println!("{label:<48} mean {mean:>10.3?}  min {min:>10.3?}  ({iters} iters){rate}");
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, quick_bench);

    #[test]
    fn harness_runs_and_collects_samples() {
        benches();
    }

    #[test]
    fn bencher_iter_batched_separates_setup() {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: Duration::from_millis(5),
        };
        b.iter_batched(|| vec![1u64; 16], |v| v.iter().sum::<u64>(), BatchSize::SmallInput);
        assert!(!b.samples.is_empty());
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
