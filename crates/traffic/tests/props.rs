//! Property-based tests of the traffic generators.

use noc_sim::topology::Mesh2D;
use noc_sim::types::NodeId;
use noc_traffic::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_pattern() -> impl Strategy<Value = DestinationPattern> {
    prop_oneof![
        Just(DestinationPattern::UniformRandom),
        Just(DestinationPattern::Transpose),
        Just(DestinationPattern::BitComplement),
        Just(DestinationPattern::BitReverse),
        Just(DestinationPattern::Shuffle),
        Just(DestinationPattern::Tornado),
        Just(DestinationPattern::Neighbor),
        (proptest::collection::vec(0usize..16, 1..4), 0.0f64..=1.0).prop_map(|(t, f)| {
            DestinationPattern::HotSpot {
                targets: t.into_iter().map(NodeId).collect(),
                fraction: f,
            }
        }),
    ]
}

proptest! {
    /// Every pattern produces in-range, non-self destinations on every
    /// mesh shape.
    #[test]
    fn patterns_are_sound(
        pattern in any_pattern(),
        cols in 1usize..6,
        rows in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mesh = Mesh2D::new(cols, rows);
        let mut rng = StdRng::seed_from_u64(seed);
        for src in mesh.nodes() {
            for _ in 0..8 {
                if let Some(d) = pattern.dest(&mesh, src, &mut rng) {
                    prop_assert!(d.index() < mesh.num_nodes());
                    prop_assert_ne!(d, src);
                }
            }
        }
    }

    /// Synthetic traffic hits its offered flit rate within 15 % over a
    /// long window, for any rate and packet length.
    #[test]
    fn synthetic_rate_is_accurate(
        rate_milli in 20u32..400,
        len in 1usize..9,
        seed in any::<u64>(),
    ) {
        let rate = rate_milli as f64 / 1000.0;
        prop_assume!(rate / len as f64 <= 1.0);
        let mesh = Mesh2D::square(3);
        let mut src = SyntheticTraffic::uniform(mesh, rate, len, seed);
        let mut out = Vec::new();
        let cycles = 30_000u64;
        for c in 0..cycles {
            src.emit(c, &mut out);
        }
        let measured = (out.len() * len) as f64 / (cycles as f64 * 9.0);
        prop_assert!(
            (measured - rate).abs() / rate < 0.15,
            "offered {rate}, measured {measured}"
        );
    }

    /// Recording any synthetic source and replaying the trace yields the
    /// identical packet sequence, including through the text format.
    #[test]
    fn record_replay_round_trip(rate_milli in 10u32..300, seed in any::<u64>()) {
        let mesh = Mesh2D::square(2);
        let src = SyntheticTraffic::uniform(mesh, rate_milli as f64 / 1000.0, 5, seed);
        let mut rec = TraceRecorder::new(src);
        let mut direct = Vec::new();
        for c in 0..3_000 {
            rec.emit(c, &mut direct);
        }
        let trace = rec.into_trace();
        let mut text = Vec::new();
        trace.to_writer(&mut text).unwrap();
        let reloaded = Trace::from_reader(text.as_slice()).unwrap();
        prop_assert_eq!(&reloaded, &trace);
        let mut replay = TraceReplay::new(reloaded);
        let mut replayed = Vec::new();
        for c in 0..3_000 {
            replay.emit(c, &mut replayed);
        }
        prop_assert_eq!(direct, replayed);
        prop_assert!(replay.finished());
    }

    /// Application traffic only emits packets whose lengths match the
    /// per-core profile, and never self-traffic.
    #[test]
    fn app_traffic_respects_profiles(mix_seed in any::<u64>(), seed in any::<u64>()) {
        let mesh = Mesh2D::square(2);
        let mix = BenchmarkMix::random(4, mix_seed);
        let mut app = AppTraffic::new(mesh, &mix, seed);
        let mut out = Vec::new();
        for c in 0..5_000 {
            app.emit(c, &mut out);
        }
        for s in &out {
            prop_assert_eq!(s.len, mix.profiles()[s.src.index()].packet_len);
            prop_assert_ne!(s.src, s.dst);
            prop_assert!(s.dst.index() < 4);
        }
    }

    /// Markov on/off long-run rate converges to the analytic value.
    #[test]
    fn markov_rate_converges(
        prob_milli in 10u32..300,
        mean_on in 10.0f64..500.0,
        mean_off in 10.0f64..500.0,
    ) {
        let p = prob_milli as f64 / 1000.0;
        let mut inj = MarkovOnOffInjection::new(p, mean_on, mean_off);
        let analytic = inj.mean_packet_rate();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 150_000u32;
        let fired = (0..n).filter(|_| inj.fires(&mut rng)).count();
        let measured = fired as f64 / n as f64;
        prop_assert!(
            (measured - analytic).abs() < 0.25 * analytic + 0.003,
            "analytic {analytic}, measured {measured}"
        );
    }
}
