//! Per-node synthetic traffic: a destination pattern driven by an
//! injection process on every node.

use crate::injection::{BernoulliInjection, InjectionProcess};
use crate::pattern::DestinationPattern;
use crate::source::{PacketSpec, TrafficSource};
use noc_sim::topology::Mesh2D;
use noc_sim::types::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Synthetic traffic: every node runs its own seeded injection process and
/// draws destinations from a shared pattern.
///
/// ```
/// use noc_traffic::prelude::*;
/// use noc_sim::topology::Mesh2D;
///
/// let mesh = Mesh2D::square(2);
/// // The paper's uniform pattern at 0.2 flits/cycle/port, 5-flit packets.
/// let mut src = SyntheticTraffic::uniform(mesh, 0.2, 5, 7);
/// let mut out = Vec::new();
/// for cycle in 0..1000 { src.emit(cycle, &mut out); }
/// // Rate 0.2 flits/cycle/node over 4 nodes and 1000 cycles ≈ 160 packets.
/// assert!(out.len() > 100 && out.len() < 230, "{}", out.len());
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTraffic {
    mesh: Mesh2D,
    pattern: DestinationPattern,
    processes: Vec<BernoulliInjection>,
    rngs: Vec<StdRng>,
    packet_len: usize,
}

impl SyntheticTraffic {
    /// Creates synthetic traffic with a Bernoulli process per node at
    /// `rate_flits` flits/cycle/node and the given pattern.
    ///
    /// # Panics
    ///
    /// Panics if `packet_len` is zero or the rate implies a per-cycle
    /// packet probability above 1.
    pub fn new(
        mesh: Mesh2D,
        pattern: DestinationPattern,
        rate_flits: f64,
        packet_len: usize,
        seed: u64,
    ) -> Self {
        let n = mesh.num_nodes();
        SyntheticTraffic {
            mesh,
            pattern,
            processes: vec![BernoulliInjection::from_flit_rate(rate_flits, packet_len); n],
            rngs: (0..n)
                .map(|i| {
                    StdRng::seed_from_u64(seed.wrapping_add(0x9e37_79b9).wrapping_mul(i as u64 + 1))
                })
                .collect(),
            packet_len,
        }
    }

    /// The paper's synthetic workload: uniform random destinations.
    pub fn uniform(mesh: Mesh2D, rate_flits: f64, packet_len: usize, seed: u64) -> Self {
        Self::new(
            mesh,
            DestinationPattern::UniformRandom,
            rate_flits,
            packet_len,
            seed,
        )
    }

    /// The destination pattern.
    pub fn pattern(&self) -> &DestinationPattern {
        &self.pattern
    }

    /// The configured packet length in flits.
    pub fn packet_len(&self) -> usize {
        self.packet_len
    }

    /// Long-run offered load in flits/cycle/node.
    pub fn offered_flit_rate(&self) -> f64 {
        self.processes
            .first()
            .map(|p| p.mean_packet_rate() * self.packet_len as f64)
            .unwrap_or(0.0)
    }
}

impl TrafficSource for SyntheticTraffic {
    fn emit(&mut self, _cycle: u64, out: &mut Vec<PacketSpec>) {
        for (i, (proc_, rng)) in self.processes.iter_mut().zip(&mut self.rngs).enumerate() {
            if !proc_.fires(rng) {
                continue;
            }
            let src = NodeId(i);
            if let Some(dst) = self.pattern.dest(&self.mesh, src, rng) {
                out.push(PacketSpec {
                    src,
                    dst,
                    len: self.packet_len,
                });
            }
        }
    }

    fn name(&self) -> String {
        format!(
            "synthetic-{}-{:.2}",
            self.pattern.name(),
            self.offered_flit_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_rate_matches_configuration() {
        let mesh = Mesh2D::square(4);
        let src = SyntheticTraffic::uniform(mesh, 0.3, 5, 1);
        assert!((src.offered_flit_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn emitted_rate_is_close_to_offered() {
        let mesh = Mesh2D::square(4);
        let mut src = SyntheticTraffic::uniform(mesh, 0.1, 5, 11);
        let mut out = Vec::new();
        let cycles = 20_000u64;
        for c in 0..cycles {
            src.emit(c, &mut out);
        }
        let flits = (out.len() * 5) as f64;
        let rate = flits / (cycles as f64 * 16.0);
        assert!((rate - 0.1).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mesh = Mesh2D::square(2);
        let collect = || {
            let mut src = SyntheticTraffic::uniform(mesh, 0.2, 5, 99);
            let mut out = Vec::new();
            for c in 0..500 {
                src.emit(c, &mut out);
            }
            out
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn nodes_have_independent_streams() {
        let mesh = Mesh2D::square(2);
        let mut src = SyntheticTraffic::uniform(mesh, 0.5, 2, 5);
        let mut out = Vec::new();
        for c in 0..2000 {
            src.emit(c, &mut out);
        }
        let mut per_node = [0usize; 4];
        for s in &out {
            per_node[s.src.index()] += 1;
        }
        // Every node injects a comparable share.
        for (i, &count) in per_node.iter().enumerate() {
            assert!(count > 300, "node {i} injected only {count}");
        }
    }

    #[test]
    fn transpose_diagonal_nodes_emit_nothing() {
        let mesh = Mesh2D::square(4);
        let mut src = SyntheticTraffic::new(mesh, DestinationPattern::Transpose, 0.5, 2, 3);
        let mut out = Vec::new();
        for c in 0..2000 {
            src.emit(c, &mut out);
        }
        assert!(out
            .iter()
            .all(|s| mesh.coords(s.src).0 != mesh.coords(s.src).1));
    }

    #[test]
    fn name_is_descriptive() {
        let mesh = Mesh2D::square(2);
        let src = SyntheticTraffic::uniform(mesh, 0.25, 5, 0);
        assert_eq!(src.name(), "synthetic-uniform-0.25");
    }
}
