//! Benchmark-profile application traffic.
//!
//! The paper's "real traffic" experiments (Table IV) run random mixes of
//! SPLASH2 and WCET benchmarks on GEM5 and observe the resulting NoC
//! traffic. Without the full-system simulator, we substitute each benchmark
//! with a *profile*: a Markov-modulated on/off injection process with a
//! per-benchmark mean rate, burstiness and destination locality. This
//! preserves what Table IV actually exercises — policy behaviour under
//! heterogeneous, bursty, spatially asymmetric traffic (see DESIGN.md §4).
//!
//! Ten profiles are provided, named after the kernels in the paper's two
//! suites. Parameters are chosen to span the qualitative range of those
//! workloads: low-rate control-dominated kernels (WCET) up to
//! communication-heavy scientific phases (SPLASH2).

use crate::injection::{InjectionProcess, MarkovOnOffInjection};
use crate::pattern::DestinationPattern;
use crate::source::{PacketSpec, TrafficSource};
use noc_sim::topology::Mesh2D;
use noc_sim::types::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Destination locality of a benchmark's coherence/memory traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Locality {
    /// All-to-all sharing: uniform destinations.
    Uniform,
    /// Nearest-neighbour dominated (stencil-style): with probability
    /// `neighbor_prob` the destination is a mesh neighbour, else uniform.
    NeighborBiased {
        /// Probability of targeting an adjacent tile.
        neighbor_prob: f64,
    },
    /// Memory-controller dominated: with probability `hot_prob` the
    /// destination is a corner tile (where the paper's setup places the
    /// memory controllers), else uniform.
    MemoryBound {
        /// Probability of targeting a memory-controller corner.
        hot_prob: f64,
    },
}

/// The traffic profile of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Kernel name (SPLASH2 or WCET).
    pub name: &'static str,
    /// Per-cycle packet probability during a communication burst.
    pub burst_packet_prob: f64,
    /// Mean burst length in cycles.
    pub mean_on: f64,
    /// Mean compute-phase (silent) length in cycles.
    pub mean_off: f64,
    /// Packet length in flits (data vs control dominated).
    pub packet_len: usize,
    /// Destination locality.
    pub locality: Locality,
}

impl BenchmarkProfile {
    /// The ten built-in profiles (six SPLASH2-like, four WCET-like).
    pub fn all() -> &'static [BenchmarkProfile] {
        &PROFILES
    }

    /// Looks a profile up by name.
    pub fn by_name(name: &str) -> Option<&'static BenchmarkProfile> {
        PROFILES.iter().find(|p| p.name == name)
    }

    /// Long-run offered load in flits/cycle.
    pub fn mean_flit_rate(&self) -> f64 {
        let duty = self.mean_on / (self.mean_on + self.mean_off);
        self.burst_packet_prob * duty * self.packet_len as f64
    }
}

/// SPLASH2-like profiles: longer data packets, heavier communication
/// phases. WCET-like profiles: short control packets, long compute phases.
/// Burst intensities are calibrated to land the per-port duty cycles in
/// the band the paper's GEM5 runs report (see `LOAD_CALIBRATION` in the
/// `sensorwise` crate and EXPERIMENTS.md).
static PROFILES: [BenchmarkProfile; 10] = [
    BenchmarkProfile {
        name: "fft",
        burst_packet_prob: 0.150,
        mean_on: 400.0,
        mean_off: 600.0,
        packet_len: 5,
        locality: Locality::Uniform,
    },
    BenchmarkProfile {
        name: "lu",
        burst_packet_prob: 0.120,
        mean_on: 300.0,
        mean_off: 700.0,
        packet_len: 5,
        locality: Locality::NeighborBiased { neighbor_prob: 0.6 },
    },
    BenchmarkProfile {
        name: "radix",
        burst_packet_prob: 0.180,
        mean_on: 500.0,
        mean_off: 500.0,
        packet_len: 5,
        locality: Locality::Uniform,
    },
    BenchmarkProfile {
        name: "barnes",
        burst_packet_prob: 0.090,
        mean_on: 250.0,
        mean_off: 750.0,
        packet_len: 5,
        locality: Locality::Uniform,
    },
    BenchmarkProfile {
        name: "ocean",
        burst_packet_prob: 0.165,
        mean_on: 600.0,
        mean_off: 400.0,
        packet_len: 5,
        locality: Locality::NeighborBiased { neighbor_prob: 0.7 },
    },
    BenchmarkProfile {
        name: "water",
        burst_packet_prob: 0.075,
        mean_on: 300.0,
        mean_off: 900.0,
        packet_len: 5,
        locality: Locality::Uniform,
    },
    BenchmarkProfile {
        name: "crc",
        burst_packet_prob: 0.045,
        mean_on: 150.0,
        mean_off: 1350.0,
        packet_len: 2,
        locality: Locality::MemoryBound { hot_prob: 0.8 },
    },
    BenchmarkProfile {
        name: "matmult",
        burst_packet_prob: 0.105,
        mean_on: 400.0,
        mean_off: 800.0,
        packet_len: 5,
        locality: Locality::MemoryBound { hot_prob: 0.6 },
    },
    BenchmarkProfile {
        name: "fir",
        burst_packet_prob: 0.060,
        mean_on: 200.0,
        mean_off: 1000.0,
        packet_len: 2,
        locality: Locality::MemoryBound { hot_prob: 0.7 },
    },
    BenchmarkProfile {
        name: "qsort",
        burst_packet_prob: 0.054,
        mean_on: 180.0,
        mean_off: 1100.0,
        packet_len: 2,
        locality: Locality::Uniform,
    },
];

/// A benchmark assignment: one profile per core, as in the paper's
/// randomly picked per-iteration mixes.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkMix {
    assignment: Vec<&'static BenchmarkProfile>,
}

impl BenchmarkMix {
    /// Randomly assigns one of the built-in profiles to each of `num_nodes`
    /// cores (with repetition, like the paper's random picks).
    pub fn random(num_nodes: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let all = BenchmarkProfile::all();
        BenchmarkMix {
            assignment: (0..num_nodes)
                .map(|_| &all[rng.gen_range(0..all.len())])
                .collect(),
        }
    }

    /// Builds a mix from explicit per-core profile names.
    ///
    /// # Panics
    ///
    /// Panics if a name is unknown.
    pub fn from_names(names: &[&str]) -> Self {
        BenchmarkMix {
            assignment: names
                .iter()
                .map(|n| {
                    BenchmarkProfile::by_name(n)
                        .unwrap_or_else(|| panic!("unknown benchmark profile `{n}`"))
                })
                .collect(),
        }
    }

    /// The per-core profiles.
    pub fn profiles(&self) -> &[&'static BenchmarkProfile] {
        &self.assignment
    }

    /// A compact `name+name+…` label for reports.
    pub fn label(&self) -> String {
        self.assignment
            .iter()
            .map(|p| p.name)
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// Application traffic: each node runs its assigned benchmark profile.
#[derive(Debug, Clone)]
pub struct AppTraffic {
    mesh: Mesh2D,
    profiles: Vec<&'static BenchmarkProfile>,
    processes: Vec<MarkovOnOffInjection>,
    rngs: Vec<StdRng>,
    memory_corners: Vec<NodeId>,
}

impl AppTraffic {
    /// Creates application traffic from a mix.
    ///
    /// # Panics
    ///
    /// Panics if the mix size does not match the mesh.
    pub fn new(mesh: Mesh2D, mix: &BenchmarkMix, seed: u64) -> Self {
        assert_eq!(
            mix.profiles().len(),
            mesh.num_nodes(),
            "one benchmark per core required"
        );
        let corners = vec![
            mesh.node_at(0, 0),
            mesh.node_at(mesh.cols() - 1, 0),
            mesh.node_at(0, mesh.rows() - 1),
            mesh.node_at(mesh.cols() - 1, mesh.rows() - 1),
        ];
        AppTraffic {
            mesh,
            profiles: mix.profiles().to_vec(),
            processes: mix
                .profiles()
                .iter()
                .map(|p| MarkovOnOffInjection::new(p.burst_packet_prob, p.mean_on, p.mean_off))
                .collect(),
            rngs: (0..mesh.num_nodes())
                .map(|i| {
                    StdRng::seed_from_u64(
                        seed ^ (0xA076_1D64_78BD_642F_u64.wrapping_mul(i as u64 + 1)),
                    )
                })
                .collect(),
            memory_corners: corners,
        }
    }

    fn pick_dest(
        mesh: &Mesh2D,
        locality: Locality,
        corners: &[NodeId],
        src: NodeId,
        rng: &mut StdRng,
    ) -> Option<NodeId> {
        let uniform = DestinationPattern::UniformRandom;
        match locality {
            Locality::Uniform => uniform.dest(mesh, src, rng),
            Locality::NeighborBiased { neighbor_prob } => {
                let neighbors: Vec<NodeId> = noc_sim::types::Direction::MESH
                    .iter()
                    .filter_map(|&d| mesh.neighbor(src, d))
                    .collect();
                if !neighbors.is_empty() && rng.gen_bool(neighbor_prob.clamp(0.0, 1.0)) {
                    Some(neighbors[rng.gen_range(0..neighbors.len())])
                } else {
                    uniform.dest(mesh, src, rng)
                }
            }
            Locality::MemoryBound { hot_prob } => {
                let candidates: Vec<NodeId> =
                    corners.iter().copied().filter(|&c| c != src).collect();
                if !candidates.is_empty() && rng.gen_bool(hot_prob.clamp(0.0, 1.0)) {
                    Some(candidates[rng.gen_range(0..candidates.len())])
                } else {
                    uniform.dest(mesh, src, rng)
                }
            }
        }
    }
}

impl TrafficSource for AppTraffic {
    fn emit(&mut self, _cycle: u64, out: &mut Vec<PacketSpec>) {
        for node in 0..self.profiles.len() {
            if !self.processes[node].fires(&mut self.rngs[node]) {
                continue;
            }
            let dst = Self::pick_dest(
                &self.mesh,
                self.profiles[node].locality,
                &self.memory_corners,
                NodeId(node),
                &mut self.rngs[node],
            );
            if let Some(dst) = dst {
                out.push(PacketSpec {
                    src: NodeId(node),
                    dst,
                    len: self.profiles[node].packet_len,
                });
            }
        }
    }

    fn name(&self) -> String {
        format!("app-{}", self.profiles.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_distinct_profiles() {
        let all = BenchmarkProfile::all();
        assert_eq!(all.len(), 10);
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "profile names must be unique");
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(BenchmarkProfile::by_name("fft").unwrap().name, "fft");
        assert!(BenchmarkProfile::by_name("doom").is_none());
    }

    #[test]
    fn profile_rates_are_sane() {
        for p in BenchmarkProfile::all() {
            let r = p.mean_flit_rate();
            assert!(r > 0.0 && r < 0.6, "{}: rate {r}", p.name);
        }
    }

    #[test]
    fn random_mixes_are_seeded() {
        let a = BenchmarkMix::random(16, 5);
        let b = BenchmarkMix::random(16, 5);
        let c = BenchmarkMix::random(16, 6);
        assert_eq!(a, b);
        assert_ne!(a.label(), c.label());
        assert_eq!(a.profiles().len(), 16);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark profile")]
    fn from_names_rejects_unknown() {
        let _ = BenchmarkMix::from_names(&["fft", "nope"]);
    }

    #[test]
    fn app_traffic_rate_tracks_profiles() {
        let mesh = Mesh2D::square(2);
        let mix = BenchmarkMix::from_names(&["fft", "fft", "fft", "fft"]);
        let mut app = AppTraffic::new(mesh, &mix, 3);
        let mut out = Vec::new();
        let cycles = 100_000u64;
        for c in 0..cycles {
            app.emit(c, &mut out);
        }
        let measured = out.iter().map(|s| s.len).sum::<usize>() as f64 / (cycles as f64 * 4.0);
        let expected = BenchmarkProfile::by_name("fft").unwrap().mean_flit_rate();
        assert!(
            (measured - expected).abs() / expected < 0.2,
            "measured {measured}, expected {expected}"
        );
    }

    #[test]
    fn memory_bound_profile_hits_corners() {
        let mesh = Mesh2D::square(4);
        let mix = BenchmarkMix::from_names(&["crc"; 16]);
        let mut app = AppTraffic::new(mesh, &mix, 9);
        let mut out = Vec::new();
        for c in 0..200_000 {
            app.emit(c, &mut out);
        }
        assert!(!out.is_empty());
        let corners = [NodeId(0), NodeId(3), NodeId(12), NodeId(15)];
        let hot = out.iter().filter(|s| corners.contains(&s.dst)).count();
        let frac = hot as f64 / out.len() as f64;
        assert!(frac > 0.6, "corner fraction = {frac}");
    }

    #[test]
    fn heterogeneous_mix_gives_heterogeneous_rates() {
        let mesh = Mesh2D::square(2);
        let mix = BenchmarkMix::from_names(&["radix", "radix", "crc", "crc"]);
        let mut app = AppTraffic::new(mesh, &mix, 17);
        let mut out = Vec::new();
        for c in 0..150_000 {
            app.emit(c, &mut out);
        }
        let count = |n: usize| out.iter().filter(|s| s.src == NodeId(n)).count();
        assert!(
            count(0) > 3 * count(2),
            "radix ({}) should out-inject crc ({})",
            count(0),
            count(2)
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mesh = Mesh2D::square(2);
        let mix = BenchmarkMix::random(4, 1);
        let run = || {
            let mut app = AppTraffic::new(mesh, &mix, 42);
            let mut out = Vec::new();
            for c in 0..5000 {
                app.emit(c, &mut out);
            }
            out
        };
        assert_eq!(run(), run());
    }
}
