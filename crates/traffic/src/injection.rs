//! Injection processes: when does a node generate a packet?
//!
//! The paper's synthetic experiments inject at constant rates of 0.1, 0.2
//! and 0.3 flits/cycle/port, which a [`BernoulliInjection`] reproduces. The
//! application-profile traffic (Table IV substitute) modulates a Bernoulli
//! process with a two-state Markov chain ([`MarkovOnOffInjection`]) to model
//! the bursty compute/communicate phases of real benchmarks.

use rand::Rng;

/// Decides, cycle by cycle, whether a node generates a new packet.
pub trait InjectionProcess {
    /// Returns `true` when a packet should be generated this cycle.
    fn fires<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool;

    /// The long-run average packet rate (packets/cycle), used for reports
    /// and sanity checks.
    fn mean_packet_rate(&self) -> f64;
}

/// Memoryless injection: a packet with fixed probability each cycle.
///
/// The probability is `rate_flits / packet_len`, so that the *flit*
/// injection rate matches the paper's `flits/cycle/port` figure.
///
/// ```
/// use noc_traffic::injection::{BernoulliInjection, InjectionProcess};
/// let p = BernoulliInjection::from_flit_rate(0.3, 5);
/// assert!((p.mean_packet_rate() - 0.06).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BernoulliInjection {
    packet_prob: f64,
}

impl BernoulliInjection {
    /// Creates a process firing with probability `packet_prob` per cycle.
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]`.
    pub fn new(packet_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&packet_prob),
            "probability must be in [0, 1]"
        );
        BernoulliInjection { packet_prob }
    }

    /// Creates a process matching a flit injection rate (flits/cycle) for
    /// packets of `packet_len` flits.
    ///
    /// # Panics
    ///
    /// Panics if `packet_len` is zero or the implied probability exceeds 1.
    pub fn from_flit_rate(rate_flits: f64, packet_len: usize) -> Self {
        assert!(packet_len > 0, "packet length must be positive");
        Self::new(rate_flits / packet_len as f64)
    }
}

impl InjectionProcess for BernoulliInjection {
    fn fires<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        self.packet_prob > 0.0 && rng.gen_bool(self.packet_prob)
    }

    fn mean_packet_rate(&self) -> f64 {
        self.packet_prob
    }
}

/// Markov-modulated on/off injection: bursts of Bernoulli traffic separated
/// by silent phases.
///
/// The process alternates between an *on* state (firing with probability
/// `on_packet_prob` per cycle) and an *off* state (never firing). Phase
/// lengths are geometric with the given means.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovOnOffInjection {
    on_packet_prob: f64,
    exit_on_prob: f64,
    exit_off_prob: f64,
    on: bool,
}

impl MarkovOnOffInjection {
    /// Creates a bursty process.
    ///
    /// * `on_packet_prob` — per-cycle packet probability while on,
    /// * `mean_on` / `mean_off` — average phase lengths in cycles.
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]` or a mean phase length
    /// is below one cycle.
    pub fn new(on_packet_prob: f64, mean_on: f64, mean_off: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&on_packet_prob),
            "probability must be in [0, 1]"
        );
        assert!(
            mean_on >= 1.0 && mean_off >= 1.0,
            "mean phase lengths must be at least one cycle"
        );
        MarkovOnOffInjection {
            on_packet_prob,
            exit_on_prob: 1.0 / mean_on,
            exit_off_prob: 1.0 / mean_off,
            on: true,
        }
    }

    /// The long-run fraction of time spent in the on state.
    pub fn duty(&self) -> f64 {
        let mean_on = 1.0 / self.exit_on_prob;
        let mean_off = 1.0 / self.exit_off_prob;
        mean_on / (mean_on + mean_off)
    }

    /// `true` while in the on phase (for tests and introspection).
    pub fn is_on(&self) -> bool {
        self.on
    }
}

impl InjectionProcess for MarkovOnOffInjection {
    fn fires<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        let fires = self.on && self.on_packet_prob > 0.0 && rng.gen_bool(self.on_packet_prob);
        // Phase transition at cycle end.
        let exit_prob = if self.on {
            self.exit_on_prob
        } else {
            self.exit_off_prob
        };
        if rng.gen_bool(exit_prob.clamp(0.0, 1.0)) {
            self.on = !self.on;
        }
        fires
    }

    fn mean_packet_rate(&self) -> f64 {
        self.on_packet_prob * self.duty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_rate_matches_empirically() {
        let mut p = BernoulliInjection::from_flit_rate(0.2, 5);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let fired = (0..n).filter(|_| p.fires(&mut rng)).count();
        let rate = fired as f64 / n as f64;
        assert!((rate - 0.04).abs() < 0.002, "rate = {rate}");
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut p = BernoulliInjection::new(0.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..1000).all(|_| !p.fires(&mut rng)));
    }

    #[test]
    fn markov_long_run_rate_matches() {
        let mut p = MarkovOnOffInjection::new(0.2, 100.0, 300.0);
        assert!((p.duty() - 0.25).abs() < 1e-12);
        assert!((p.mean_packet_rate() - 0.05).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 400_000;
        let fired = (0..n).filter(|_| p.fires(&mut rng)).count();
        let rate = fired as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.005, "rate = {rate}");
    }

    #[test]
    fn markov_actually_bursts() {
        // With long phases, consecutive cycles should be correlated: count
        // transitions of the fire/no-fire sequence aggregated per window.
        let mut p = MarkovOnOffInjection::new(0.5, 200.0, 200.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut window_rates = Vec::new();
        for _ in 0..200 {
            let fired = (0..100).filter(|_| p.fires(&mut rng)).count();
            window_rates.push(fired as f64 / 100.0);
        }
        // Bursty: some windows nearly silent, some nearly half-rate.
        let min = window_rates.iter().cloned().fold(f64::MAX, f64::min);
        let max = window_rates.iter().cloned().fold(f64::MIN, f64::max);
        assert!(min < 0.1, "min window rate = {min}");
        assert!(max > 0.3, "max window rate = {max}");
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn overunity_rate_panics() {
        let _ = BernoulliInjection::from_flit_rate(6.0, 5);
    }

    #[test]
    #[should_panic(expected = "phase lengths")]
    fn subcycle_phase_panics() {
        let _ = MarkovOnOffInjection::new(0.1, 0.5, 10.0);
    }
}
