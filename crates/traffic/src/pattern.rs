//! Synthetic destination patterns.
//!
//! The paper's synthetic evaluation (Section IV-B) uses *uniform* traffic;
//! the rest of the classic pattern family is provided for the extension
//! sweeps. Permutation patterns follow the standard definitions (Dally &
//! Towles): bit-style patterns assume a power-of-two node count and fall
//! back to a documented equivalent otherwise.

use noc_sim::topology::Mesh2D;
use noc_sim::types::NodeId;
use rand::Rng;

/// A destination-selection rule.
#[derive(Debug, Clone, PartialEq)]
pub enum DestinationPattern {
    /// Uniformly random destination, excluding the source (the paper's
    /// pattern).
    UniformRandom,
    /// `(x, y) → (y, x)`. Diagonal nodes have no destination.
    Transpose,
    /// Destination is the bitwise complement of the source index
    /// (`N-1-src`, exact for power-of-two meshes).
    BitComplement,
    /// Destination index is the bit-reversed source index (power-of-two
    /// node counts; otherwise falls back to [`Self::BitComplement`]).
    BitReverse,
    /// Perfect shuffle: rotate the source index bits left by one
    /// (power-of-two node counts; otherwise falls back to
    /// [`Self::BitComplement`]).
    Shuffle,
    /// Tornado: halfway around each dimension
    /// (`x → (x + ⌈cols/2⌉ − ...) `; here `(x + cols/2) mod cols`, same for
    /// rows). Degenerates to self-traffic on 1-wide dimensions.
    Tornado,
    /// Nearest neighbour: one hop east, wrapping at the boundary.
    Neighbor,
    /// With probability `fraction`, send to a uniformly chosen hotspot;
    /// otherwise uniform random.
    HotSpot {
        /// The hotspot nodes (e.g. memory-controller tiles).
        targets: Vec<NodeId>,
        /// Probability of addressing a hotspot.
        fraction: f64,
    },
}

impl DestinationPattern {
    /// Picks a destination for a packet from `src`, or `None` when the
    /// pattern sends this node no traffic (e.g. transpose diagonal,
    /// patterns mapping a node to itself).
    pub fn dest<R: Rng + ?Sized>(&self, mesh: &Mesh2D, src: NodeId, rng: &mut R) -> Option<NodeId> {
        let n = mesh.num_nodes();
        if n <= 1 {
            return None;
        }
        let dst = match self {
            DestinationPattern::UniformRandom => loop {
                let d = NodeId(rng.gen_range(0..n));
                if d != src {
                    break d;
                }
            },
            DestinationPattern::Transpose => {
                let (x, y) = mesh.coords(src);
                if x >= mesh.rows() || y >= mesh.cols() {
                    return None;
                }
                mesh.node_at(y, x)
            }
            DestinationPattern::BitComplement => NodeId(n - 1 - src.index()),
            DestinationPattern::BitReverse => match bits_of(n) {
                Some(b) => {
                    let mut v = src.index();
                    let mut r = 0usize;
                    for _ in 0..b {
                        r = (r << 1) | (v & 1);
                        v >>= 1;
                    }
                    NodeId(r)
                }
                None => NodeId(n - 1 - src.index()),
            },
            DestinationPattern::Shuffle => match bits_of(n) {
                Some(b) => {
                    let s = src.index();
                    NodeId(((s << 1) | (s >> (b - 1))) & (n - 1))
                }
                None => NodeId(n - 1 - src.index()),
            },
            DestinationPattern::Tornado => {
                let (x, y) = mesh.coords(src);
                mesh.node_at(
                    (x + mesh.cols() / 2) % mesh.cols(),
                    (y + mesh.rows() / 2) % mesh.rows(),
                )
            }
            DestinationPattern::Neighbor => {
                let (x, y) = mesh.coords(src);
                mesh.node_at((x + 1) % mesh.cols(), y)
            }
            DestinationPattern::HotSpot { targets, fraction } => {
                // Only targets that exist in this mesh and differ from the
                // source are eligible; anything else falls back to uniform.
                let eligible: Vec<NodeId> = targets
                    .iter()
                    .copied()
                    .filter(|t| t.index() < n && *t != src)
                    .collect();
                if !eligible.is_empty() && rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                    eligible[rng.gen_range(0..eligible.len())]
                } else {
                    loop {
                        let d = NodeId(rng.gen_range(0..n));
                        if d != src {
                            break d;
                        }
                    }
                }
            }
        };
        (dst != src).then_some(dst)
    }

    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DestinationPattern::UniformRandom => "uniform",
            DestinationPattern::Transpose => "transpose",
            DestinationPattern::BitComplement => "bit-complement",
            DestinationPattern::BitReverse => "bit-reverse",
            DestinationPattern::Shuffle => "shuffle",
            DestinationPattern::Tornado => "tornado",
            DestinationPattern::Neighbor => "neighbor",
            DestinationPattern::HotSpot { .. } => "hotspot",
        }
    }
}

/// `log2(n)` when `n` is a power of two.
fn bits_of(n: usize) -> Option<usize> {
    n.is_power_of_two().then(|| n.trailing_zeros() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_never_targets_self_and_covers_everyone() {
        let mesh = Mesh2D::square(4);
        let mut rng = rng();
        let mut seen = [false; 16];
        for _ in 0..2000 {
            let d = DestinationPattern::UniformRandom
                .dest(&mesh, NodeId(5), &mut rng)
                .unwrap();
            assert_ne!(d, NodeId(5));
            seen[d.index()] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 15);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mesh = Mesh2D::square(4);
        let mut rng = rng();
        // (1,2) = node 9 → (2,1) = node 6.
        assert_eq!(
            DestinationPattern::Transpose.dest(&mesh, NodeId(9), &mut rng),
            Some(NodeId(6))
        );
        // Diagonal: no traffic.
        assert_eq!(
            DestinationPattern::Transpose.dest(&mesh, NodeId(5), &mut rng),
            None
        );
    }

    #[test]
    fn bit_complement_mirrors_index() {
        let mesh = Mesh2D::square(4);
        let mut rng = rng();
        assert_eq!(
            DestinationPattern::BitComplement.dest(&mesh, NodeId(0), &mut rng),
            Some(NodeId(15))
        );
        assert_eq!(
            DestinationPattern::BitComplement.dest(&mesh, NodeId(6), &mut rng),
            Some(NodeId(9))
        );
    }

    #[test]
    fn bit_reverse_on_16_nodes() {
        let mesh = Mesh2D::square(4);
        let mut rng = rng();
        // 0b0001 -> 0b1000.
        assert_eq!(
            DestinationPattern::BitReverse.dest(&mesh, NodeId(1), &mut rng),
            Some(NodeId(8))
        );
        // Palindromic index (0b0110) maps to itself: no traffic.
        assert_eq!(
            DestinationPattern::BitReverse.dest(&mesh, NodeId(6), &mut rng),
            None
        );
    }

    #[test]
    fn shuffle_rotates_bits() {
        let mesh = Mesh2D::square(4);
        let mut rng = rng();
        // 0b0110 -> 0b1100.
        assert_eq!(
            DestinationPattern::Shuffle.dest(&mesh, NodeId(6), &mut rng),
            Some(NodeId(12))
        );
        // 0b1001 -> 0b0011.
        assert_eq!(
            DestinationPattern::Shuffle.dest(&mesh, NodeId(9), &mut rng),
            Some(NodeId(3))
        );
    }

    #[test]
    fn tornado_moves_half_way() {
        let mesh = Mesh2D::square(4);
        let mut rng = rng();
        // (0,0) -> (2,2) = node 10.
        assert_eq!(
            DestinationPattern::Tornado.dest(&mesh, NodeId(0), &mut rng),
            Some(NodeId(10))
        );
    }

    #[test]
    fn neighbor_wraps_east() {
        let mesh = Mesh2D::square(4);
        let mut rng = rng();
        assert_eq!(
            DestinationPattern::Neighbor.dest(&mesh, NodeId(3), &mut rng),
            Some(NodeId(0))
        );
        assert_eq!(
            DestinationPattern::Neighbor.dest(&mesh, NodeId(4), &mut rng),
            Some(NodeId(5))
        );
    }

    #[test]
    fn hotspot_prefers_targets() {
        let mesh = Mesh2D::square(4);
        let mut rng = rng();
        let pattern = DestinationPattern::HotSpot {
            targets: vec![NodeId(15)],
            fraction: 0.9,
        };
        let mut hot = 0;
        let trials = 2000;
        for _ in 0..trials {
            if pattern.dest(&mesh, NodeId(0), &mut rng) == Some(NodeId(15)) {
                hot += 1;
            }
        }
        // 90% direct hits plus occasional uniform picks of node 15.
        assert!(hot as f64 / trials as f64 > 0.85, "hot fraction = {hot}");
    }

    #[test]
    fn hotspot_ignores_out_of_mesh_and_self_targets() {
        let mesh = Mesh2D::new(1, 2);
        let mut rng = rng();
        let pattern = DestinationPattern::HotSpot {
            targets: vec![NodeId(15), NodeId(0)],
            fraction: 1.0,
        };
        for _ in 0..50 {
            // Node 15 does not exist here; node 0 is the only valid target.
            assert_eq!(pattern.dest(&mesh, NodeId(1), &mut rng), Some(NodeId(0)));
            // From node 0, the only eligible target is itself ⇒ uniform
            // fallback to node 1.
            assert_eq!(pattern.dest(&mesh, NodeId(0), &mut rng), Some(NodeId(1)));
        }
    }

    #[test]
    fn single_node_mesh_generates_nothing() {
        let mesh = Mesh2D::new(1, 1);
        let mut rng = rng();
        assert_eq!(
            DestinationPattern::UniformRandom.dest(&mesh, NodeId(0), &mut rng),
            None
        );
    }

    #[test]
    fn every_pattern_stays_in_range() {
        let mesh = Mesh2D::new(4, 4);
        let mut rng = rng();
        let patterns = [
            DestinationPattern::UniformRandom,
            DestinationPattern::Transpose,
            DestinationPattern::BitComplement,
            DestinationPattern::BitReverse,
            DestinationPattern::Shuffle,
            DestinationPattern::Tornado,
            DestinationPattern::Neighbor,
            DestinationPattern::HotSpot {
                targets: vec![NodeId(0), NodeId(15)],
                fraction: 0.3,
            },
        ];
        for p in &patterns {
            for src in mesh.nodes() {
                for _ in 0..20 {
                    if let Some(d) = p.dest(&mesh, src, &mut rng) {
                        assert!(d.index() < 16, "{} produced {d}", p.name());
                        assert_ne!(d, src, "{} produced self-traffic", p.name());
                    }
                }
            }
        }
    }
}
