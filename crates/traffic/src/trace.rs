//! Traffic trace record and replay.
//!
//! Traces let a stochastic workload be captured once and replayed
//! deterministically — e.g. to compare the three gating policies on the
//! *identical* flit arrival sequence, or to import externally generated
//! traffic. The on-disk format is a plain text file, one event per line:
//!
//! ```text
//! # nbti-noc trace v1
//! <cycle> <src> <dst> <len>
//! ```

use crate::source::{PacketSpec, TrafficSource};
use noc_sim::types::NodeId;
use std::io::{self, BufRead, BufReader, Read, Write};

/// One traffic event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Injection cycle.
    pub cycle: u64,
    /// The packet.
    pub spec: PacketSpec,
}

/// A recorded traffic trace, ordered by cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// The recorded events, in nondecreasing cycle order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no event was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics if `event.cycle` precedes the last recorded cycle.
    pub fn push(&mut self, event: TraceEvent) {
        if let Some(last) = self.events.last() {
            assert!(
                event.cycle >= last.cycle,
                "trace events must be pushed in cycle order"
            );
        }
        self.events.push(event);
    }

    /// Writes the trace in the plain-text `v1` format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn to_writer<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "# nbti-noc trace v1")?;
        for e in &self.events {
            writeln!(
                w,
                "{} {} {} {}",
                e.cycle,
                e.spec.src.index(),
                e.spec.dst.index(),
                e.spec.len
            )?;
        }
        Ok(())
    }

    /// Reads a trace in the plain-text `v1` format. Blank lines and `#`
    /// comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed lines or out-of-order cycles.
    pub fn from_reader<R: Read>(r: R) -> io::Result<Self> {
        let mut trace = Trace::new();
        for (lineno, line) in BufReader::new(r).lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let mut next = |what: &str| {
                parts
                    .next()
                    .ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("line {}: missing {what}", lineno + 1),
                        )
                    })?
                    .parse::<u64>()
                    .map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("line {}: bad {what}: {e}", lineno + 1),
                        )
                    })
            };
            let cycle = next("cycle")?;
            let src = next("src")? as usize;
            let dst = next("dst")? as usize;
            let len = next("len")? as usize;
            if len == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: zero-length packet", lineno + 1),
                ));
            }
            let event = TraceEvent {
                cycle,
                spec: PacketSpec {
                    src: NodeId(src),
                    dst: NodeId(dst),
                    len,
                },
            };
            if trace.events.last().map(|l| event.cycle < l.cycle) == Some(true) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: events out of cycle order", lineno + 1),
                ));
            }
            trace.events.push(event);
        }
        Ok(trace)
    }
}

/// Wraps a source, recording everything it emits.
#[derive(Debug)]
pub struct TraceRecorder<S> {
    inner: S,
    trace: Trace,
}

impl<S: TrafficSource> TraceRecorder<S> {
    /// Starts recording `inner`.
    pub fn new(inner: S) -> Self {
        TraceRecorder {
            inner,
            trace: Trace::new(),
        }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Stops recording and returns the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl<S: TrafficSource> TrafficSource for TraceRecorder<S> {
    fn emit(&mut self, cycle: u64, out: &mut Vec<PacketSpec>) {
        let before = out.len();
        self.inner.emit(cycle, out);
        for spec in &out[before..] {
            self.trace.push(TraceEvent { cycle, spec: *spec });
        }
    }

    fn name(&self) -> String {
        format!("recorded-{}", self.inner.name())
    }
}

/// Replays a recorded trace.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: Trace,
    cursor: usize,
}

impl TraceReplay {
    /// Creates a replay source.
    pub fn new(trace: Trace) -> Self {
        TraceReplay { trace, cursor: 0 }
    }

    /// `true` when every event has been replayed.
    pub fn finished(&self) -> bool {
        self.cursor >= self.trace.len()
    }
}

impl TrafficSource for TraceReplay {
    fn emit(&mut self, cycle: u64, out: &mut Vec<PacketSpec>) {
        while let Some(e) = self.trace.events().get(self.cursor) {
            if e.cycle > cycle {
                break;
            }
            out.push(e.spec);
            self.cursor += 1;
        }
    }

    fn name(&self) -> String {
        "trace-replay".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticTraffic;
    use noc_sim::topology::Mesh2D;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        for (c, s, d) in [(0u64, 0usize, 1usize), (5, 1, 2), (5, 2, 3), (9, 3, 0)] {
            t.push(TraceEvent {
                cycle: c,
                spec: PacketSpec {
                    src: NodeId(s),
                    dst: NodeId(d),
                    len: 5,
                },
            });
        }
        t
    }

    #[test]
    fn round_trip_through_text_format() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.to_writer(&mut buf).unwrap();
        let t2 = Trace::from_reader(buf.as_slice()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn reader_ignores_comments_and_blanks() {
        let text = "# header\n\n 1 0 1 5 \n# mid comment\n2 1 0 3\n";
        let t = Trace::from_reader(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[1].spec.len, 3);
    }

    #[test]
    fn reader_rejects_garbage() {
        assert!(Trace::from_reader("1 2 3".as_bytes()).is_err());
        assert!(Trace::from_reader("a b c d".as_bytes()).is_err());
        assert!(Trace::from_reader("1 0 1 0".as_bytes()).is_err());
        assert!(Trace::from_reader("5 0 1 5\n2 0 1 5".as_bytes()).is_err());
    }

    #[test]
    #[should_panic(expected = "cycle order")]
    fn push_out_of_order_panics() {
        let mut t = sample_trace();
        t.push(TraceEvent {
            cycle: 1,
            spec: PacketSpec {
                src: NodeId(0),
                dst: NodeId(1),
                len: 1,
            },
        });
    }

    #[test]
    fn replay_reproduces_events_at_their_cycles() {
        let t = sample_trace();
        let mut replay = TraceReplay::new(t.clone());
        let mut seen = Vec::new();
        for cycle in 0..12 {
            let mut out = Vec::new();
            replay.emit(cycle, &mut out);
            for s in out {
                seen.push(TraceEvent { cycle, spec: s });
            }
        }
        assert!(replay.finished());
        assert_eq!(seen, t.events());
    }

    #[test]
    fn record_then_replay_is_identical() {
        let mesh = Mesh2D::square(2);
        let src = SyntheticTraffic::uniform(mesh, 0.3, 5, 21);
        let mut rec = TraceRecorder::new(src);
        let mut direct = Vec::new();
        for c in 0..2000 {
            rec.emit(c, &mut direct);
        }
        let trace = rec.into_trace();
        let mut replay = TraceReplay::new(trace);
        let mut replayed = Vec::new();
        for c in 0..2000 {
            replay.emit(c, &mut replayed);
        }
        assert_eq!(direct, replayed);
    }

    #[test]
    fn recorder_name_mentions_inner() {
        let mesh = Mesh2D::square(2);
        let rec = TraceRecorder::new(SyntheticTraffic::uniform(mesh, 0.1, 5, 0));
        assert!(rec.name().starts_with("recorded-synthetic"));
    }
}
