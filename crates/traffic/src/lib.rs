//! # noc-traffic — traffic generation for the NoC simulator
//!
//! Provides the workloads of the DATE 2013 reproduction:
//!
//! * [`source`] — the [`TrafficSource`] abstraction: a generator that emits
//!   [`PacketSpec`]s cycle by cycle, decoupled from the simulator so it can
//!   be tested, recorded and replayed in isolation,
//! * [`pattern`] — synthetic destination patterns (uniform random as in the
//!   paper's Section IV-B, plus the classic transpose / bit-complement /
//!   tornado / hotspot / neighbour family),
//! * [`injection`] — injection processes: Bernoulli (the paper's constant
//!   injection rates) and Markov-modulated on/off bursts,
//! * [`synthetic`] — per-node synthetic traffic combining a pattern with an
//!   injection process,
//! * [`app`] — benchmark-profile application traffic standing in for the
//!   paper's SPLASH2 and WCET benchmark mixes (see DESIGN.md §4),
//! * [`trace`] — record/replay of traffic traces in a plain-text format.
//!
//! ```
//! use noc_traffic::prelude::*;
//! use noc_sim::prelude::*;
//!
//! let mesh = Mesh2D::square(4);
//! let mut src = SyntheticTraffic::uniform(mesh, 0.1, 5, 42);
//! let mut net = Network::new(NocConfig::paper_synthetic(16, 2))?;
//! for _ in 0..100 {
//!     inject_from(&mut src, &mut net);
//!     net.step();
//! }
//! assert!(net.stats().packets_injected > 0);
//! # Ok::<(), noc_sim::config::InvalidConfigError>(())
//! ```

#![deny(missing_debug_implementations)]
#![warn(
    clippy::semicolon_if_nothing_returned,
    clippy::explicit_iter_loop,
    clippy::redundant_closure_for_method_calls,
    clippy::manual_let_else
)]

pub mod app;
pub mod injection;
pub mod pattern;
pub mod source;
pub mod synthetic;
pub mod trace;

pub use app::{AppTraffic, BenchmarkMix, BenchmarkProfile, Locality};
pub use injection::{BernoulliInjection, InjectionProcess, MarkovOnOffInjection};
pub use pattern::DestinationPattern;
pub use source::{inject_from, PacketSpec, TrafficSource};
pub use synthetic::SyntheticTraffic;
pub use trace::{Trace, TraceEvent, TraceRecorder, TraceReplay};

/// Convenient glob import.
pub mod prelude {
    pub use crate::app::{AppTraffic, BenchmarkMix, BenchmarkProfile, Locality};
    pub use crate::injection::{BernoulliInjection, InjectionProcess, MarkovOnOffInjection};
    pub use crate::pattern::DestinationPattern;
    pub use crate::source::{inject_from, PacketSpec, TrafficSource};
    pub use crate::synthetic::SyntheticTraffic;
    pub use crate::trace::{Trace, TraceEvent, TraceRecorder, TraceReplay};
}
