//! The traffic-source abstraction.
//!
//! A [`TrafficSource`] produces packet descriptions cycle by cycle. Keeping
//! generation separate from the simulator makes sources unit-testable,
//! recordable ([`crate::trace::TraceRecorder`]) and replayable without a
//! network in the loop.

use noc_sim::network::Network;
use noc_sim::types::NodeId;

/// A packet to be injected: source, destination and length in flits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketSpec {
    /// Injecting node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Length in flits.
    pub len: usize,
}

/// A generator of traffic.
///
/// Implementations append zero or more [`PacketSpec`]s for the given cycle.
/// `emit` must be called with strictly increasing cycle numbers; sources may
/// keep internal per-cycle state (burst phases, trace cursors).
pub trait TrafficSource {
    /// Appends this cycle's packets to `out`.
    fn emit(&mut self, cycle: u64, out: &mut Vec<PacketSpec>);

    /// A short human-readable name for reports.
    fn name(&self) -> String {
        "traffic".to_string()
    }
}

impl<T: TrafficSource + ?Sized> TrafficSource for Box<T> {
    fn emit(&mut self, cycle: u64, out: &mut Vec<PacketSpec>) {
        (**self).emit(cycle, out);
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

/// Pulls this cycle's packets from `source` and queues them in `net`'s NIC
/// injection queues. Call once per cycle, before `Network::begin_cycle`.
/// Returns the number of packets injected.
pub fn inject_from<S: TrafficSource + ?Sized, T: noc_sim::telemetry::TraceSink>(
    source: &mut S,
    net: &mut Network<T>,
) -> usize {
    let mut specs = Vec::new();
    source.emit(net.cycle(), &mut specs);
    for spec in &specs {
        net.inject_packet_with_len(spec.src, spec.dst, spec.len);
    }
    specs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::config::NocConfig;

    /// A source that emits one fixed packet every `period` cycles.
    struct Periodic {
        period: u64,
        spec: PacketSpec,
    }

    impl TrafficSource for Periodic {
        fn emit(&mut self, cycle: u64, out: &mut Vec<PacketSpec>) {
            if cycle.is_multiple_of(self.period) {
                out.push(self.spec);
            }
        }
    }

    #[test]
    fn inject_from_queues_packets() {
        let mut src = Periodic {
            period: 2,
            spec: PacketSpec {
                src: NodeId(0),
                dst: NodeId(3),
                len: 5,
            },
        };
        let mut net = Network::new(NocConfig::paper_synthetic(4, 2)).unwrap();
        let mut injected = 0;
        for _ in 0..10 {
            injected += inject_from(&mut src, &mut net);
            net.step();
        }
        assert_eq!(injected, 5);
        assert_eq!(net.stats().packets_injected, 5);
    }

    #[test]
    fn boxed_sources_delegate() {
        let mut boxed: Box<dyn TrafficSource> = Box::new(Periodic {
            period: 1,
            spec: PacketSpec {
                src: NodeId(1),
                dst: NodeId(2),
                len: 1,
            },
        });
        let mut out = Vec::new();
        boxed.emit(0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(boxed.name(), "traffic");
    }
}
