//! The NBTI mitigation policies (the paper's Section III).
//!
//! Every policy is a per-port controller implementing the pre-VA stage of
//! one upstream/downstream port pair. Each cycle it receives the paper's
//! three information sources — the output VC state, the
//! `is_new_traffic_outport_x()` predicate (both in the [`PortView`]) and
//! the most-degraded VC identifier from the `Down_Up` sensor link — and
//! produces the `Up_Down` payload as a [`GateAction`].
//!
//! | Policy | Sensors | Traffic info | Paper reference |
//! |---|---|---|---|
//! | [`BaselinePolicy`] | – | – | NBTI-unaware Garnet baseline |
//! | [`RrNoSensorPolicy`] | – | yes | Algorithm 1 (*rr-no-sensor*) |
//! | [`SensorWisePolicy`] (no traffic) | yes | forced to 1 | *sensor-wise-no-traffic* |
//! | [`SensorWisePolicy`] | yes | yes | Algorithm 2 (*sensor-wise*) |

use noc_sim::view::{GateAction, PortView};
use std::fmt;

/// A per-port gating controller.
///
/// `most_degraded` is the VC identifier carried by the `Down_Up` link —
/// the downstream router's sensor election. Sensor-less policies ignore it.
pub trait GatingPolicy {
    /// Computes this cycle's `Up_Down` payload for the port.
    fn decide(&mut self, cycle: u64, view: &PortView, most_degraded: usize) -> GateAction;

    /// The policy's short name, matching the paper's terminology.
    fn name(&self) -> &'static str;
}

/// Which policy to instantiate; the value used by experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// NBTI-unaware: all buffers always powered.
    Baseline,
    /// Algorithm 1: round-robin recovery without sensors.
    RrNoSensor,
    /// Algorithm 2 with the traffic predicate forced to 1.
    SensorWiseNoTraffic,
    /// Algorithm 2: the paper's contribution.
    SensorWise,
    /// Extension: Algorithm 2 generalized to keep `k` idle VCs awake — the
    /// NBTI/performance trade-off knob the paper's related-work section
    /// motivates. `SensorWiseK(1)` behaves like [`PolicyKind::SensorWise`].
    SensorWiseK(u8),
}

impl PolicyKind {
    /// All four policies in the paper's presentation order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::Baseline,
        PolicyKind::RrNoSensor,
        PolicyKind::SensorWiseNoTraffic,
        PolicyKind::SensorWise,
    ];

    /// The sensor-less reference against the paper's contribution — the
    /// pair every gap sweep and ablation study contrasts.
    pub const REFERENCE_PAIR: [PolicyKind; 2] =
        [PolicyKind::RrNoSensor, PolicyKind::SensorWise];

    /// The three policies compared in Tables II and III.
    pub const TABLE_POLICIES: [PolicyKind; 3] = [
        PolicyKind::RrNoSensor,
        PolicyKind::SensorWiseNoTraffic,
        PolicyKind::SensorWise,
    ];

    /// Instantiates a fresh per-port controller.
    pub fn build(self, rr_rotation_period: u64) -> Box<dyn GatingPolicy> {
        match self {
            PolicyKind::Baseline => Box::new(BaselinePolicy),
            PolicyKind::RrNoSensor => Box::new(RrNoSensorPolicy::new(rr_rotation_period)),
            PolicyKind::SensorWiseNoTraffic => Box::new(SensorWisePolicy::without_traffic_info()),
            PolicyKind::SensorWise => Box::new(SensorWisePolicy::new()),
            PolicyKind::SensorWiseK(k) => Box::new(SensorWiseKPolicy::new(k as usize)),
        }
    }

    /// Parses a policy name: the paper label (`sensor-wise`), the CLI
    /// shorthand (`sw`, `rr`, `sw-nt`) or the `sw-kN` extension form.
    /// Every front-end (CLI flags, wire specs) funnels through here so the
    /// accepted names stay in sync.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the accepted forms.
    pub fn parse(name: &str) -> Result<PolicyKind, String> {
        match name {
            "baseline" => Ok(PolicyKind::Baseline),
            "rr" | "rr-no-sensor" => Ok(PolicyKind::RrNoSensor),
            "sw-nt" | "sensor-wise-no-traffic" => Ok(PolicyKind::SensorWiseNoTraffic),
            "sw" | "sensor-wise" => Ok(PolicyKind::SensorWise),
            other => {
                let k = other
                    .strip_prefix("sw-k")
                    .or_else(|| other.strip_prefix("sensor-wise-k"));
                if let Some(k) = k {
                    let k: u8 = k.parse().map_err(|e| format!("bad k in `{other}`: {e}"))?;
                    Ok(PolicyKind::SensorWiseK(k))
                } else {
                    Err(format!(
                        "unknown policy `{other}` (try baseline, rr, sw-nt, sw, sw-k2)"
                    ))
                }
            }
        }
    }

    /// The paper's name for the policy.
    pub fn label(self) -> String {
        match self {
            PolicyKind::Baseline => "baseline".to_string(),
            PolicyKind::RrNoSensor => "rr-no-sensor".to_string(),
            PolicyKind::SensorWiseNoTraffic => "sensor-wise-no-traffic".to_string(),
            PolicyKind::SensorWise => "sensor-wise".to_string(),
            PolicyKind::SensorWiseK(k) => format!("sensor-wise-k{k}"),
        }
    }

    /// The designation budget the policy guarantees right after its gate
    /// decision is applied: the maximum number of idle-on (powered but
    /// unallocated) VCs it leaves on a port. `None` for the baseline, which
    /// never gates and so bounds nothing. This is the property the runtime
    /// invariant checker enforces per cycle (Algorithm 2 keeps exactly one
    /// idle VC; the `k`-designation extension keeps `k`).
    pub fn idle_on_budget(self) -> Option<usize> {
        match self {
            PolicyKind::Baseline => None,
            PolicyKind::RrNoSensor
            | PolicyKind::SensorWiseNoTraffic
            | PolicyKind::SensorWise => Some(1),
            PolicyKind::SensorWiseK(k) => Some(k as usize),
        }
    }

    /// Whether the policy consumes NBTI sensor readings.
    pub fn uses_sensors(self) -> bool {
        matches!(
            self,
            PolicyKind::SensorWiseNoTraffic | PolicyKind::SensorWise | PolicyKind::SensorWiseK(_)
        )
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The NBTI-unaware baseline: every buffer stays powered, every idle VC is
/// allocatable. All VCs therefore sit at 100 % NBTI-duty-cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaselinePolicy;

impl GatingPolicy for BaselinePolicy {
    fn decide(&mut self, _cycle: u64, _view: &PortView, _md: usize) -> GateAction {
        GateAction::AllOn
    }

    fn name(&self) -> &'static str {
        "baseline"
    }
}

/// Algorithm 1: the *rr-no-sensor* pre-VA stage.
///
/// A rotating `active_candidate` VC pointer decides which free VC is kept
/// idle-on when new traffic is waiting; with no new traffic every idle VC
/// is gated off. This is the best recovery policy available without sensor
/// information and serves as the paper's reference model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RrNoSensorPolicy {
    rotation_period: u64,
}

impl RrNoSensorPolicy {
    /// Creates the policy with the given candidate rotation period in
    /// cycles (the paper rotates "on a time basis"; 1 rotates every cycle).
    ///
    /// # Panics
    ///
    /// Panics if `rotation_period` is zero.
    pub fn new(rotation_period: u64) -> Self {
        assert!(rotation_period > 0, "rotation period must be positive");
        RrNoSensorPolicy { rotation_period }
    }

    /// The `get_vc_candidate()` of Algorithm 1.
    fn candidate(&self, cycle: u64, num_vcs: usize) -> usize {
        ((cycle / self.rotation_period) % num_vcs as u64) as usize
    }
}

impl Default for RrNoSensorPolicy {
    fn default() -> Self {
        Self::new(1)
    }
}

impl GatingPolicy for RrNoSensorPolicy {
    fn decide(&mut self, cycle: u64, view: &PortView, _md: usize) -> GateAction {
        // Lines 4-7: no new traffic ⇒ enable = 0, recover all idle VCs.
        if !view.new_traffic {
            return GateAction::AllIdleOff;
        }
        // Lines 8-17: first idle-or-recovering VC from the candidate.
        let num_vcs = view.num_vcs();
        let start = self.candidate(cycle, num_vcs);
        for off in 0..num_vcs {
            let vc = (start + off) % num_vcs;
            if view.vc_status[vc].is_free() {
                return GateAction::KeepOneIdle { vc };
            }
        }
        // Every VC busy: nothing to leave idle.
        GateAction::AllIdleOff
    }

    fn name(&self) -> &'static str {
        "rr-no-sensor"
    }
}

/// Algorithm 2: the *sensor-wise* pre-VA stage.
///
/// Recovers the most degraded VC first (sensor information from the
/// `Down_Up` link), then every other free VC, keeping exactly one idle VC
/// powered when new traffic is waiting. With `use_traffic_info == false`
/// the traffic predicate is forced to 1 (the paper's
/// *sensor-wise-no-traffic* variant): one idle VC stays powered even with
/// no traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensorWisePolicy {
    use_traffic_info: bool,
}

impl SensorWisePolicy {
    /// The full policy (the paper's contribution).
    pub fn new() -> Self {
        SensorWisePolicy {
            use_traffic_info: true,
        }
    }

    /// The *sensor-wise-no-traffic* ablation.
    pub fn without_traffic_info() -> Self {
        SensorWisePolicy {
            use_traffic_info: false,
        }
    }
}

impl Default for SensorWisePolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl GatingPolicy for SensorWisePolicy {
    fn decide(&mut self, _cycle: u64, view: &PortView, most_degraded: usize) -> GateAction {
        let num_vcs = view.num_vcs();
        assert!(
            most_degraded < num_vcs,
            "most degraded VC {most_degraded} out of range"
        );
        let bool_traffic = if self.use_traffic_info {
            view.new_traffic
        } else {
            true
        };
        let needed = usize::from(bool_traffic);
        // Line 5-8 (conceptually): recovered VCs are restored to idle so the
        // recovery choice is recomputed from scratch; we therefore treat
        // every free (idle or recovering) VC alike.
        let mut free = view.count_free();
        if free == 0 {
            // All VCs busy: nothing to designate or recover.
            return GateAction::AllIdleOff;
        }
        if !bool_traffic {
            // Lines 12-18 with boolTraffic = 0: recover everything.
            return GateAction::AllIdleOff;
        }
        // Lines 9-11: recover the most degraded VC first, if possible.
        let mut md_recovered = false;
        if view.vc_status[most_degraded].is_free() && free > needed {
            md_recovered = true;
            free -= 1;
        }
        // Lines 12-16: recover remaining free VCs in index order while more
        // than `needed` remain; the surviving free VC is the designated one.
        let mut designated = None;
        for vc in 0..num_vcs {
            if !view.vc_status[vc].is_free() || (vc == most_degraded && md_recovered) {
                continue;
            }
            if free > needed {
                free -= 1;
            } else {
                designated = Some(vc);
            }
        }
        match designated {
            Some(vc) => GateAction::KeepOneIdle { vc },
            // Only reachable when the single free VC is the most degraded
            // and it was not recovered (free == needed): keep it for the
            // incoming packet.
            None => GateAction::KeepOneIdle { vc: most_degraded },
        }
    }

    fn name(&self) -> &'static str {
        if self.use_traffic_info {
            "sensor-wise"
        } else {
            "sensor-wise-no-traffic"
        }
    }
}

/// Extension: Algorithm 2 generalized to keep `k` idle VCs awake.
///
/// The paper keeps exactly one idle VC (the single-flit-per-cycle argument
/// guarantees that suffices for correctness), which serializes new-packet
/// VC allocation to one per port per cycle. Keeping `k > 1` idle VCs lets
/// bursts of head flits allocate in parallel at the cost of extra NBTI
/// stress — the NBTI/performance trade-off. VCs are kept in the same
/// descending index order Algorithm 2's designation loop induces, and the
/// most degraded VC is still recovered first whenever possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensorWiseKPolicy {
    k: usize,
}

impl SensorWiseKPolicy {
    /// Creates the policy keeping `k` idle VCs when traffic is waiting.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero (use the traffic predicate, not `k`, to gate
    /// everything).
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be at least one");
        SensorWiseKPolicy { k }
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl GatingPolicy for SensorWiseKPolicy {
    fn decide(&mut self, _cycle: u64, view: &PortView, most_degraded: usize) -> GateAction {
        let num_vcs = view.num_vcs();
        assert!(
            most_degraded < num_vcs,
            "most degraded VC {most_degraded} out of range"
        );
        if !view.new_traffic {
            return GateAction::AllIdleOff;
        }
        let mut free: Vec<usize> = (0..num_vcs)
            .filter(|&v| view.vc_status[v].is_free())
            .collect();
        if free.is_empty() {
            return GateAction::AllIdleOff;
        }
        let needed = self.k;
        // Recover the most degraded VC first, unless it is needed to meet
        // the designation count.
        if free.len() > needed {
            free.retain(|&v| v != most_degraded);
        }
        // Keep the top-index `needed` free VCs awake (Algorithm 2's
        // designation order).
        let mut mask = 0u32;
        for &v in free.iter().rev().take(needed) {
            mask |= 1 << v;
        }
        GateAction::KeepIdle { mask }
    }

    fn name(&self) -> &'static str {
        "sensor-wise-k"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::types::{Direction, NodeId};
    use noc_sim::view::{PortId, VcStatus};

    fn view(status: &[VcStatus], new_traffic: bool) -> PortView {
        PortView {
            port: PortId::router_input(NodeId(0), Direction::East),
            vc_status: status.to_vec(),
            new_traffic,
        }
    }

    use VcStatus::{Busy, IdleOn, Off};

    #[test]
    fn baseline_always_powers_everything() {
        let mut p = BaselinePolicy;
        let v = view(&[Off, Busy, IdleOn, Off], false);
        assert_eq!(p.decide(0, &v, 0), GateAction::AllOn);
        assert_eq!(p.decide(9, &v, 3), GateAction::AllOn);
        assert_eq!(p.name(), "baseline");
    }

    #[test]
    fn rr_recovers_all_when_no_traffic() {
        let mut p = RrNoSensorPolicy::default();
        let v = view(&[IdleOn, IdleOn, IdleOn, IdleOn], false);
        assert_eq!(p.decide(0, &v, 0), GateAction::AllIdleOff);
    }

    #[test]
    fn rr_designates_rotating_candidate() {
        let mut p = RrNoSensorPolicy::new(1);
        let v = view(&[IdleOn, IdleOn, IdleOn, IdleOn], true);
        assert_eq!(p.decide(0, &v, 0), GateAction::KeepOneIdle { vc: 0 });
        assert_eq!(p.decide(1, &v, 0), GateAction::KeepOneIdle { vc: 1 });
        assert_eq!(p.decide(2, &v, 0), GateAction::KeepOneIdle { vc: 2 });
        assert_eq!(p.decide(3, &v, 0), GateAction::KeepOneIdle { vc: 3 });
        assert_eq!(p.decide(4, &v, 0), GateAction::KeepOneIdle { vc: 0 });
    }

    #[test]
    fn rr_skips_busy_vcs() {
        let mut p = RrNoSensorPolicy::new(1);
        let v = view(&[Busy, Busy, Off, IdleOn], true);
        // Candidate 0 and 1 busy: first free from candidate 0 is VC 2.
        assert_eq!(p.decide(0, &v, 0), GateAction::KeepOneIdle { vc: 2 });
        // Candidate 1: first free is still 2.
        assert_eq!(p.decide(1, &v, 0), GateAction::KeepOneIdle { vc: 2 });
        // Candidate 3: VC 3 itself.
        assert_eq!(p.decide(3, &v, 0), GateAction::KeepOneIdle { vc: 3 });
    }

    #[test]
    fn rr_with_all_busy_asserts_nothing() {
        let mut p = RrNoSensorPolicy::new(1);
        let v = view(&[Busy, Busy], true);
        assert_eq!(p.decide(0, &v, 0), GateAction::AllIdleOff);
    }

    #[test]
    fn rr_rotation_period_slows_candidate() {
        let mut p = RrNoSensorPolicy::new(100);
        let v = view(&[IdleOn, IdleOn], true);
        assert_eq!(p.decide(0, &v, 0), GateAction::KeepOneIdle { vc: 0 });
        assert_eq!(p.decide(99, &v, 0), GateAction::KeepOneIdle { vc: 0 });
        assert_eq!(p.decide(100, &v, 0), GateAction::KeepOneIdle { vc: 1 });
    }

    #[test]
    fn sensor_wise_recovers_everything_without_traffic() {
        let mut p = SensorWisePolicy::new();
        let v = view(&[IdleOn, IdleOn, Off, IdleOn], false);
        assert_eq!(p.decide(0, &v, 1), GateAction::AllIdleOff);
    }

    #[test]
    fn sensor_wise_designates_highest_free_and_spares_md() {
        let mut p = SensorWisePolicy::new();
        // All free, MD = 1: MD recovered first, VC0 and VC2 recovered in
        // order, VC3 survives as the designated idle VC.
        let v = view(&[IdleOn, IdleOn, IdleOn, IdleOn], true);
        assert_eq!(p.decide(0, &v, 1), GateAction::KeepOneIdle { vc: 3 });
    }

    #[test]
    fn sensor_wise_designated_shifts_when_top_vc_busy() {
        let mut p = SensorWisePolicy::new();
        let v = view(&[IdleOn, IdleOn, IdleOn, Busy], true);
        // VC3 busy: the last free non-MD VC is VC2.
        assert_eq!(p.decide(0, &v, 1), GateAction::KeepOneIdle { vc: 2 });
    }

    #[test]
    fn sensor_wise_keeps_md_only_when_it_is_the_last_free_vc() {
        let mut p = SensorWisePolicy::new();
        let v = view(&[Busy, IdleOn, Busy, Busy], true);
        // The only free VC is the MD itself: it must stay on for traffic.
        assert_eq!(p.decide(0, &v, 1), GateAction::KeepOneIdle { vc: 1 });
    }

    #[test]
    fn sensor_wise_md_last_index_designates_next_highest() {
        let mut p = SensorWisePolicy::new();
        let v = view(&[IdleOn, IdleOn, IdleOn, IdleOn], true);
        // MD = 3 is recovered first; VC2 becomes the designated idle VC.
        assert_eq!(p.decide(0, &v, 3), GateAction::KeepOneIdle { vc: 2 });
    }

    #[test]
    fn sensor_wise_all_busy_is_a_noop() {
        let mut p = SensorWisePolicy::new();
        let v = view(&[Busy, Busy], true);
        assert_eq!(p.decide(0, &v, 0), GateAction::AllIdleOff);
    }

    #[test]
    fn no_traffic_variant_always_keeps_one_idle() {
        let mut p = SensorWisePolicy::without_traffic_info();
        // Even with no traffic, one idle VC stays powered — the behaviour
        // the paper criticises in Section IV-B.
        let v = view(&[IdleOn, IdleOn, IdleOn, IdleOn], false);
        assert_eq!(p.decide(0, &v, 1), GateAction::KeepOneIdle { vc: 3 });
        assert_eq!(p.name(), "sensor-wise-no-traffic");
    }

    #[test]
    fn no_traffic_variant_spares_md_even_when_md_is_top() {
        let mut p = SensorWisePolicy::without_traffic_info();
        let v = view(&[IdleOn, IdleOn], false);
        // MD = 1 recovered; VC0 pinned on — matching Table III's 100% VC0
        // rows for MD = VC1 scenarios.
        assert_eq!(p.decide(0, &v, 1), GateAction::KeepOneIdle { vc: 0 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sensor_wise_rejects_bad_md() {
        let mut p = SensorWisePolicy::new();
        let v = view(&[IdleOn, IdleOn], true);
        let _ = p.decide(0, &v, 5);
    }

    #[test]
    fn kind_builds_matching_policies() {
        for kind in PolicyKind::ALL {
            let built = kind.build(1);
            assert_eq!(built.name(), kind.label());
        }
        assert!(PolicyKind::SensorWise.uses_sensors());
        assert!(PolicyKind::SensorWiseK(2).uses_sensors());
        assert!(!PolicyKind::RrNoSensor.uses_sensors());
        assert_eq!(PolicyKind::SensorWise.to_string(), "sensor-wise");
        assert_eq!(PolicyKind::SensorWiseK(3).to_string(), "sensor-wise-k3");
        assert_eq!(PolicyKind::SensorWiseK(2).build(1).name(), "sensor-wise-k");
    }

    #[test]
    fn k1_matches_sensor_wise_designation() {
        let mut sw = SensorWisePolicy::new();
        let mut k1 = SensorWiseKPolicy::new(1);
        let cases = [
            (vec![IdleOn, IdleOn, IdleOn, IdleOn], true, 1),
            (vec![IdleOn, IdleOn, IdleOn, Busy], true, 1),
            (vec![Busy, IdleOn, Busy, Busy], true, 1),
            (vec![IdleOn, IdleOn, IdleOn, IdleOn], true, 3),
            (vec![IdleOn, Off, Off, IdleOn], true, 0),
            (vec![IdleOn, IdleOn], false, 0),
            (vec![Busy, Busy], true, 0),
        ];
        for (status, traffic, md) in cases {
            let v = view(&status, traffic);
            let a = sw.decide(0, &v, md);
            let b = k1.decide(0, &v, md);
            let n = status.len();
            assert_eq!(
                a.kept_idle_mask(n),
                b.kept_idle_mask(n),
                "divergence on {status:?} md={md}"
            );
        }
    }

    #[test]
    fn k2_keeps_two_and_still_spares_md() {
        let mut p = SensorWiseKPolicy::new(2);
        let v = view(&[IdleOn, IdleOn, IdleOn, IdleOn], true);
        // MD = 1 recovered; keep the two highest-index free VCs (2, 3).
        assert_eq!(p.decide(0, &v, 1), GateAction::KeepIdle { mask: 0b1100 });
        // MD is kept only when needed to reach k.
        let v = view(&[Busy, IdleOn, IdleOn, Busy], true);
        assert_eq!(p.decide(0, &v, 1), GateAction::KeepIdle { mask: 0b0110 });
    }

    #[test]
    fn k_larger_than_free_keeps_everything_free() {
        let mut p = SensorWiseKPolicy::new(4);
        let v = view(&[IdleOn, Busy, Off, Busy], true);
        assert_eq!(p.decide(0, &v, 0), GateAction::KeepIdle { mask: 0b0101 });
    }

    #[test]
    #[should_panic(expected = "k must be at least one")]
    fn zero_k_panics() {
        let _ = SensorWiseKPolicy::new(0);
    }

    #[test]
    #[should_panic(expected = "rotation period")]
    fn rr_zero_period_panics() {
        let _ = RrNoSensorPolicy::new(0);
    }

    #[test]
    fn parse_accepts_labels_and_shorthands() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(&kind.label()), Ok(kind));
        }
        assert_eq!(PolicyKind::parse("rr"), Ok(PolicyKind::RrNoSensor));
        assert_eq!(PolicyKind::parse("sw"), Ok(PolicyKind::SensorWise));
        assert_eq!(PolicyKind::parse("sw-nt"), Ok(PolicyKind::SensorWiseNoTraffic));
        assert_eq!(PolicyKind::parse("sw-k3"), Ok(PolicyKind::SensorWiseK(3)));
        assert_eq!(
            PolicyKind::parse("sensor-wise-k2"),
            Ok(PolicyKind::SensorWiseK(2))
        );
        assert!(PolicyKind::parse("magic").unwrap_err().contains("unknown policy"));
        assert!(PolicyKind::parse("sw-kx").unwrap_err().contains("bad k"));
    }
}
