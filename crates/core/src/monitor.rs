//! NBTI monitoring glue: one sensor-equipped age tracker per buffer port.
//!
//! The monitor owns the per-VC [`BufferAgeTracker`]s of every gateable port
//! in the network, mirrors the paper's process-variation protocol (one
//! Gaussian initial `Vth` per VC buffer, one sample set per scenario seed),
//! and answers the `Down_Up` link's question — *which VC is the most
//! degraded?* — through the configured sensor model.
//!
//! [`BufferAgeTracker`]: nbti_model::BufferAgeTracker

use nbti_model::{
    IdealSensor, LongTermModel, NbtiSensor, PortAgeTracker, ProcessVariation, QuantizedSensor,
    StressState, Volt,
};
use noc_sim::view::{PortId, VcStatus};
use std::collections::BTreeMap;

/// Per-port NBTI bookkeeping for a whole network.
#[derive(Debug, Clone)]
pub struct NbtiMonitor<S> {
    ports: Vec<(PortId, PortAgeTracker<S>)>,
    index: BTreeMap<PortId, usize>,
}

impl NbtiMonitor<IdealSensor> {
    /// Builds a monitor with ideal sensors (the paper's setup): one
    /// tracker per port in `port_ids`, each VC's initial `Vth` drawn from
    /// the given process-variation sampler.
    pub fn with_ideal_sensors(
        port_ids: &[PortId],
        num_vcs: usize,
        pv: &mut ProcessVariation,
        model: LongTermModel,
    ) -> Self {
        Self::build(port_ids, num_vcs, pv, model, |_, _| IdealSensor::new())
    }

    /// Builds a monitor with ideal sensors whose per-VC threshold voltages
    /// are given explicitly instead of drawn from a process-variation
    /// sampler — the lifetime-campaign hook: `vths[i][v]` is the *aged*
    /// `Vth` (initial plus accumulated ΔVth) of VC `v` of `port_ids[i]`,
    /// so sensor elections in the next epoch see the degradation earlier
    /// epochs produced.
    ///
    /// # Panics
    ///
    /// Panics if `vths.len() != port_ids.len()` or any port's vector is
    /// empty.
    pub fn with_ideal_sensors_from_vths(
        port_ids: &[PortId],
        vths: &[Vec<Volt>],
        model: LongTermModel,
    ) -> Self {
        assert_eq!(
            port_ids.len(),
            vths.len(),
            "one Vth vector per port required"
        );
        let mut ports = Vec::with_capacity(port_ids.len());
        let mut index = BTreeMap::new();
        for (&pid, port_vths) in port_ids.iter().zip(vths) {
            let sensors = vec![IdealSensor::new(); port_vths.len()];
            index.insert(pid, ports.len());
            ports.push((pid, PortAgeTracker::new(port_vths, sensors, model)));
        }
        NbtiMonitor { ports, index }
    }
}

impl NbtiMonitor<QuantizedSensor> {
    /// Builds a monitor with quantized/noisy sensors (the sensor-fidelity
    /// ablation). `period` is the sensor sampling period in cycles.
    #[allow(clippy::too_many_arguments)] // mirrors QuantizedSensor::new + PV inputs
    pub fn with_quantized_sensors(
        port_ids: &[PortId],
        num_vcs: usize,
        pv: &mut ProcessVariation,
        model: LongTermModel,
        lsb: Volt,
        noise_sigma: Volt,
        period: u64,
        seed: u64,
    ) -> Self {
        let mut counter = 0u64;
        Self::build(port_ids, num_vcs, pv, model, |_, _| {
            counter += 1;
            QuantizedSensor::new(lsb, noise_sigma, period, seed.wrapping_add(counter))
        })
    }
}

impl<S: NbtiSensor> NbtiMonitor<S> {
    /// Builds a monitor with a custom per-VC sensor factory
    /// (`make_sensor(port_index, vc)`).
    pub fn build<F>(
        port_ids: &[PortId],
        num_vcs: usize,
        pv: &mut ProcessVariation,
        model: LongTermModel,
        mut make_sensor: F,
    ) -> Self
    where
        F: FnMut(usize, usize) -> S,
    {
        assert!(num_vcs > 0, "at least one VC per port");
        let mut ports = Vec::with_capacity(port_ids.len());
        let mut index = BTreeMap::new();
        for (i, &pid) in port_ids.iter().enumerate() {
            let vths = pv.sample_port(num_vcs);
            let sensors = (0..num_vcs).map(|v| make_sensor(i, v)).collect();
            index.insert(pid, ports.len());
            ports.push((pid, PortAgeTracker::new(&vths, sensors, model)));
        }
        NbtiMonitor { ports, index }
    }

    fn tracker(&self, port: PortId) -> &PortAgeTracker<S> {
        let i = self.index[&port];
        &self.ports[i].1
    }

    fn tracker_mut(&mut self, port: PortId) -> &mut PortAgeTracker<S> {
        let i = self.index[&port];
        &mut self.ports[i].1
    }

    /// Number of monitored ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// The monitored port identifiers, in construction order.
    pub fn port_ids(&self) -> impl Iterator<Item = PortId> + '_ {
        self.ports.iter().map(|(p, _)| *p)
    }

    /// The `Down_Up` payload: the most degraded VC of `port` according to
    /// its sensors.
    pub fn most_degraded(&mut self, port: PortId) -> usize {
        self.tracker_mut(port).most_degraded()
    }

    /// The most degraded VC by *initial* `Vth` (the paper's `MD VC`
    /// column, fixed by process variation).
    pub fn most_degraded_initial(&self, port: PortId) -> usize {
        self.tracker(port).most_degraded_initial()
    }

    /// Records one cycle of stress/recovery for `port`: a VC is stressed
    /// whenever its buffer is powered.
    pub fn record_cycle(&mut self, port: PortId, statuses: &[VcStatus]) {
        let states: Vec<StressState> = statuses
            .iter()
            .map(|s| {
                if s.is_stressed() {
                    StressState::Stressed
                } else {
                    StressState::Recovering
                }
            })
            .collect();
        self.tracker_mut(port).record_cycle(&states);
    }

    /// Per-VC NBTI-duty-cycle percentages for `port`.
    pub fn duty_cycles_percent(&self, port: PortId) -> Vec<f64> {
        self.tracker(port).duty_cycles_percent()
    }

    /// Per-VC initial threshold voltages for `port`.
    pub fn initial_vths(&self, port: PortId) -> Vec<Volt> {
        self.tracker(port)
            .buffers()
            .map(nbti_model::BufferAgeTracker::initial_vth)
            .collect()
    }

    /// Projected NBTI `Vth` shift of `port`'s most degraded VC (by initial
    /// `Vth`), in millivolts, at `horizon_s` seconds of operation assuming
    /// the duty observed so far persists. This is the telemetry sampler's
    /// `delta_vth_mv` column.
    pub fn projected_delta_vth_mv(&self, port: PortId, horizon_s: f64) -> f64 {
        let tracker = self.tracker(port);
        let buf = tracker.buffer(tracker.most_degraded_initial());
        buf.projected_vth(horizon_s).as_millivolts() - buf.initial_vth().as_millivolts()
    }

    /// Per-VC `(stress, recovery)` cycle totals for `port` since the last
    /// duty reset — the inputs of the duty-closure invariant
    /// (stress + recovery must equal the monitored cycle count).
    pub fn duty_totals(&self, port: PortId) -> Vec<(u64, u64)> {
        self.tracker(port)
            .buffers()
            .map(|b| (b.duty().stress_cycles(), b.duty().recovery_cycles()))
            .collect()
    }

    /// Resets the duty accounting of every port (end of warm-up).
    pub fn reset_duty(&mut self) {
        for (_, t) in &mut self.ports {
            t.reset_duty();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::types::{Direction, NodeId};

    fn ports() -> Vec<PortId> {
        vec![
            PortId::router_input(NodeId(0), Direction::East),
            PortId::router_input(NodeId(1), Direction::West),
            PortId::nic_eject(NodeId(0)),
        ]
    }

    fn monitor(seed: u64) -> NbtiMonitor<IdealSensor> {
        let mut pv = ProcessVariation::paper_45nm(seed);
        NbtiMonitor::with_ideal_sensors(&ports(), 4, &mut pv, LongTermModel::calibrated_45nm())
    }

    #[test]
    fn same_seed_same_vths_and_md() {
        let a = monitor(3);
        let b = monitor(3);
        for p in ports() {
            assert_eq!(a.initial_vths(p), b.initial_vths(p));
            assert_eq!(a.most_degraded_initial(p), b.most_degraded_initial(p));
        }
    }

    #[test]
    fn ideal_sensor_md_matches_initial_md_before_aging() {
        let mut m = monitor(11);
        for p in ports() {
            assert_eq!(m.most_degraded(p), m.most_degraded_initial(p));
        }
    }

    #[test]
    fn duty_accounting_follows_statuses() {
        use VcStatus::{Busy, IdleOn, Off};
        let mut m = monitor(5);
        let p = ports()[0];
        for _ in 0..10 {
            m.record_cycle(p, &[Busy, IdleOn, Off, Off]);
        }
        assert_eq!(m.duty_cycles_percent(p), vec![100.0, 100.0, 0.0, 0.0]);
        m.reset_duty();
        m.record_cycle(p, &[Off, Off, Off, IdleOn]);
        assert_eq!(m.duty_cycles_percent(p), vec![0.0, 0.0, 0.0, 100.0]);
    }

    #[test]
    fn ports_are_registered_in_order() {
        let m = monitor(1);
        assert_eq!(m.num_ports(), 3);
        assert_eq!(m.port_ids().collect::<Vec<_>>(), ports());
    }

    #[test]
    fn distinct_ports_get_distinct_vth_samples() {
        let m = monitor(8);
        let a = m.initial_vths(ports()[0]);
        let b = m.initial_vths(ports()[1]);
        assert_ne!(a, b);
    }

    #[test]
    fn projected_delta_vth_grows_with_stress() {
        let mut idle = monitor(5);
        let mut busy = monitor(5);
        let p = ports()[0];
        let horizon = 10.0 * 365.25 * 24.0 * 3600.0;
        for _ in 0..100 {
            idle.record_cycle(p, &[VcStatus::Off; 4]);
            busy.record_cycle(p, &[VcStatus::Busy; 4]);
        }
        let low = idle.projected_delta_vth_mv(p, horizon);
        let high = busy.projected_delta_vth_mv(p, horizon);
        assert!(low.abs() < 1e-9, "fully recovered VC projects no shift: {low}");
        assert!(high > 1.0, "10-year full-duty shift in mV: {high}");
    }

    #[test]
    fn quantized_monitor_builds() {
        let mut pv = ProcessVariation::paper_45nm(2);
        let mut m = NbtiMonitor::with_quantized_sensors(
            &ports(),
            2,
            &mut pv,
            LongTermModel::calibrated_45nm(),
            Volt::from_millivolts(0.5),
            Volt::from_millivolts(0.25),
            1000,
            9,
        );
        let p = ports()[0];
        let md = m.most_degraded(p);
        assert!(md < 2);
    }
}
