//! Wire types for campaign epochs: the unit of distributed execution.
//!
//! A campaign epoch is fully described by four inputs — the base
//! experiment spec, the drained-boundary [`NetworkSnapshot`] it resumes
//! from, the aged per-VC threshold voltages carried by the lifetime
//! ledger, and the drain budget. [`WireEpochRequest`] carries exactly
//! those four over the service's JSON codec, and [`WireEpochOutcome`]
//! carries back everything the campaign engine integrates: the
//! [`WireResult`], the boundary snapshot, the duty totals and the
//! epoch-0 initial voltages the ledger seeds from.
//!
//! Encoding rules that keep the distributed path bit-identical to the
//! local one:
//!
//! * every integer crosses as a JSON number whose raw text round-trips
//!   `u64` exactly (the codec never squeezes numbers through `f64`);
//! * every `f64` (threshold voltages) crosses as its IEEE-754 bit
//!   pattern in a `u64`, so `decode(encode(x))` is the *same float*,
//!   not a close one;
//! * `to_json` is canonical — encode∘decode∘encode is byte-identical —
//!   so the request text doubles as the content address under which
//!   workers file the outcome in the shared result store.

use crate::codec::{json_string, spec_from_json, spec_to_json, CodecError, JsonValue, WireResult};
use crate::experiment::{run_epoch_cancellable, EpochError, EpochOutcome};
use crate::parallel::ExperimentJob;
use nbti_model::Volt;
use noc_sim::snapshot::{NetworkSnapshot, PortState};
use noc_sim::stats::{NetStats, LATENCY_BUCKETS};
use noc_telemetry::WorkCounters;
use std::sync::atomic::AtomicBool;

/// One campaign epoch, as shipped to a `noc-service` worker.
#[derive(Debug, Clone)]
pub struct WireEpochRequest {
    /// The base experiment (config + traffic recipe). The traffic seed is
    /// already the *epoch* seed — the campaign front end applies the
    /// per-epoch stride before building the request.
    pub base: ExperimentJob,
    /// The predecessor epoch's boundary snapshot, absent for epoch 0.
    pub resume: Option<NetworkSnapshot>,
    /// Aged per-port, per-VC threshold voltages as IEEE-754 bit patterns,
    /// absent for epoch 0 (the worker then samples process variation from
    /// the spec's `pv_seed`, exactly as a local run would).
    pub vths_bits: Option<Vec<Vec<u64>>>,
    /// Post-measurement drain budget in cycles.
    pub drain_limit: u64,
}

impl WireEpochRequest {
    /// The aged voltages, decoded bit-exactly.
    #[must_use]
    pub fn vths(&self) -> Option<Vec<Vec<Volt>>> {
        self.vths_bits.as_ref().map(|ports| {
            ports
                .iter()
                .map(|vcs| vcs.iter().map(|&b| Volt::from_volts(f64::from_bits(b))).collect())
                .collect()
        })
    }

    /// Encodes the aged voltages of a ledger into wire bit patterns.
    #[must_use]
    pub fn encode_vths(vths: &[Vec<Volt>]) -> Vec<Vec<u64>> {
        vths.iter()
            .map(|vcs| vcs.iter().map(|v| v.as_volts().to_bits()).collect())
            .collect()
    }

    /// Encodes the request as canonical JSON (also its content address).
    ///
    /// # Errors
    ///
    /// Returns an error when the base spec is not wire-encodable.
    pub fn to_json(&self) -> Result<String, CodecError> {
        let spec = spec_to_json(&self.base)?;
        let mut out = String::with_capacity(512);
        out.push_str("{\"kind\":\"epoch\",\"drain_limit\":");
        out.push_str(&self.drain_limit.to_string());
        out.push_str(",\"base_spec\":");
        out.push_str(&json_string(&spec));
        out.push_str(",\"vths\":");
        match &self.vths_bits {
            None => out.push_str("null"),
            Some(ports) => push_u64_matrix(&mut out, ports),
        }
        out.push_str(",\"resume\":");
        match &self.resume {
            None => out.push_str("null"),
            Some(snap) => push_snapshot(&mut out, snap),
        }
        out.push('}');
        Ok(out)
    }

    /// Decodes a request from its wire JSON.
    ///
    /// # Errors
    ///
    /// Returns an error on syntax problems, a missing `kind` marker, or an
    /// invalid embedded spec.
    pub fn from_json(text: &str) -> Result<WireEpochRequest, CodecError> {
        let root = JsonValue::parse(text)?;
        if root.get("kind").and_then(JsonValue::as_str) != Some("epoch") {
            return Err(CodecError::new("not an epoch request (missing kind)"));
        }
        let spec = root
            .get("base_spec")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| CodecError::new("epoch request missing `base_spec`"))?;
        let base = spec_from_json(spec)?;
        let vths_bits = match root.get("vths") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(read_u64_matrix(v, "vths")?),
        };
        let resume = match root.get("resume") {
            None | Some(JsonValue::Null) => None,
            Some(v) => Some(read_snapshot(v)?),
        };
        Ok(WireEpochRequest {
            base,
            resume,
            vths_bits,
            drain_limit: root
                .get("drain_limit")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| CodecError::new("epoch request missing `drain_limit`"))?,
        })
    }

    /// Runs the epoch this request describes, honouring a cooperative
    /// cancellation flag. This is the worker-side entry point; it is the
    /// exact code path a local campaign takes, so served and local epochs
    /// are bit-identical by construction.
    ///
    /// # Errors
    ///
    /// Propagates [`EpochError`] from the engine (cancellation, drain
    /// timeout, snapshot rejection, unsupported sensor).
    ///
    /// # Panics
    ///
    /// Panics if the embedded network configuration is invalid (decoding
    /// validates it, so a request that decoded cleanly never panics).
    pub fn run_cancellable(&self, cancel: &AtomicBool) -> Result<EpochOutcome, EpochError> {
        let vths = self.vths();
        let mut traffic = self.base.traffic.build(&self.base.cfg.noc);
        run_epoch_cancellable(
            &self.base.cfg,
            traffic.as_mut(),
            self.resume.as_ref(),
            vths.as_deref(),
            self.drain_limit,
            cancel,
        )
    }
}

/// `true` when a service submission body is an epoch request rather than a
/// plain experiment spec (cheap structural probe, no full decode).
#[must_use]
pub fn is_epoch_request(text: &str) -> bool {
    JsonValue::parse(text)
        .ok()
        .and_then(|root| root.get("kind").and_then(JsonValue::as_str).map(|k| k == "epoch"))
        .unwrap_or(false)
}

/// Everything a worker hands back from one epoch: the measurement, the
/// boundary snapshot, the aging inputs for the ledger, and the epoch-0
/// initial voltages the ledger seeds from.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEpochOutcome {
    /// The epoch's measurement in wire form.
    pub result: WireResult,
    /// Per-port initial threshold voltages as IEEE-754 bit patterns
    /// (ledger seed on epoch 0).
    pub initial_vths_bits: Vec<Vec<u64>>,
    /// Per-port, per-VC `(stress, recovery)` cycle totals.
    pub duty_totals: Vec<Vec<(u64, u64)>>,
    /// The drained boundary state the next epoch resumes from.
    pub snapshot: NetworkSnapshot,
    /// Cycles spent draining and settling after the measured window.
    pub drain_cycles: u64,
}

impl From<&EpochOutcome> for WireEpochOutcome {
    fn from(o: &EpochOutcome) -> Self {
        WireEpochOutcome {
            result: WireResult::from(&o.result),
            initial_vths_bits: o
                .result
                .ports
                .iter()
                .map(|p| p.initial_vths.iter().map(|v| v.as_volts().to_bits()).collect())
                .collect(),
            duty_totals: o.duty_totals.clone(),
            snapshot: o.snapshot.clone(),
            drain_cycles: o.drain_cycles,
        }
    }
}

impl WireEpochOutcome {
    /// The per-port initial voltages, decoded bit-exactly.
    #[must_use]
    pub fn initial_vths(&self) -> Vec<Vec<Volt>> {
        self.initial_vths_bits
            .iter()
            .map(|vcs| vcs.iter().map(|&b| Volt::from_volts(f64::from_bits(b))).collect())
            .collect()
    }

    /// Encodes the outcome as canonical JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"kind\":\"epoch_outcome\",\"drain_cycles\":");
        out.push_str(&self.drain_cycles.to_string());
        out.push_str(",\"result\":");
        out.push_str(&json_string(&self.result.to_json()));
        out.push_str(",\"initial_vths\":");
        push_u64_matrix(&mut out, &self.initial_vths_bits);
        out.push_str(",\"duty\":[");
        for (i, port) in self.duty_totals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, (s, r)) in port.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{s},{r}]"));
            }
            out.push(']');
        }
        out.push_str("],\"snapshot\":");
        push_snapshot(&mut out, &self.snapshot);
        out.push('}');
        out
    }

    /// Decodes an outcome from its wire JSON.
    ///
    /// # Errors
    ///
    /// Returns an error on syntax problems or missing required fields —
    /// callers reading through a result store treat any error as a cache
    /// miss and recompute.
    pub fn from_json(text: &str) -> Result<WireEpochOutcome, CodecError> {
        let root = JsonValue::parse(text)?;
        if root.get("kind").and_then(JsonValue::as_str) != Some("epoch_outcome") {
            return Err(CodecError::new("not an epoch outcome (missing kind)"));
        }
        let result_text = root
            .get("result")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| CodecError::new("epoch outcome missing `result`"))?;
        let result = WireResult::from_json(result_text)?;
        let initial_vths_bits = read_u64_matrix(
            root.get("initial_vths")
                .ok_or_else(|| CodecError::new("epoch outcome missing `initial_vths`"))?,
            "initial_vths",
        )?;
        let mut duty_totals = Vec::new();
        for port in root
            .get("duty")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| CodecError::new("epoch outcome missing `duty`"))?
        {
            let mut rows = Vec::new();
            for pair in port
                .as_arr()
                .ok_or_else(|| CodecError::new("duty rows must be arrays"))?
            {
                let pair = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| CodecError::new("duty entries must be [stress,recovery]"))?;
                rows.push((
                    pair[0]
                        .as_u64()
                        .ok_or_else(|| CodecError::new("duty stress must be u64"))?,
                    pair[1]
                        .as_u64()
                        .ok_or_else(|| CodecError::new("duty recovery must be u64"))?,
                ));
            }
            duty_totals.push(rows);
        }
        let snapshot = read_snapshot(
            root.get("snapshot")
                .ok_or_else(|| CodecError::new("epoch outcome missing `snapshot`"))?,
        )?;
        Ok(WireEpochOutcome {
            result,
            initial_vths_bits,
            duty_totals,
            snapshot,
            drain_cycles: root
                .get("drain_cycles")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| CodecError::new("epoch outcome missing `drain_cycles`"))?,
        })
    }
}

fn push_u64_list(out: &mut String, items: &[u64]) {
    out.push('[');
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

fn push_u64_matrix(out: &mut String, rows: &[Vec<u64>]) {
    out.push('[');
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_u64_list(out, row);
    }
    out.push(']');
}

fn read_u64_list(v: &JsonValue, what: &str) -> Result<Vec<u64>, CodecError> {
    v.as_arr()
        .ok_or_else(|| CodecError::new(format!("`{what}` must be an array")))?
        .iter()
        .map(|x| {
            x.as_u64()
                .ok_or_else(|| CodecError::new(format!("`{what}` entries must be u64")))
        })
        .collect()
}

fn read_u64_matrix(v: &JsonValue, what: &str) -> Result<Vec<Vec<u64>>, CodecError> {
    v.as_arr()
        .ok_or_else(|| CodecError::new(format!("`{what}` must be an array")))?
        .iter()
        .map(|row| read_u64_list(row, what))
        .collect()
}

fn req_u64(obj: &JsonValue, key: &str) -> Result<u64, CodecError> {
    obj.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| CodecError::new(format!("snapshot missing `{key}`")))
}

fn push_snapshot(out: &mut String, snap: &NetworkSnapshot) {
    out.push_str(&format!(
        "{{\"cycle\":{},\"next_packet\":{},\"flits_sent_total\":{},\"flits_ejected_total\":{}",
        snap.cycle, snap.next_packet, snap.flits_sent_total, snap.flits_ejected_total
    ));
    let s = &snap.stats;
    out.push_str(&format!(
        ",\"stats\":{{\"packets_injected\":{},\"packets_ejected\":{},\"flits_sent\":{},\
         \"flits_ejected\":{},\"latency_sum\":{},\"latency_max\":{},\"latency_histogram\":",
        s.packets_injected, s.packets_ejected, s.flits_sent, s.flits_ejected, s.latency_sum,
        s.latency_max
    ));
    push_u64_list(out, &s.latency_histogram);
    out.push_str(&format!(
        ",\"invariant_checks\":{},\"invariant_violations\":{}}}",
        s.invariant_checks, s.invariant_violations
    ));
    let w = &snap.work;
    out.push_str(&format!(
        ",\"work\":{{\"bw_writes\":{},\"rc_computes\":{},\"va_grants\":{},\"sa_grants\":{},\
         \"gate_commands\":{},\"policy_evaluations\":{},\"sensor_reads\":{}}}",
        w.bw_writes, w.rc_computes, w.va_grants, w.sa_grants, w.gate_commands,
        w.policy_evaluations, w.sensor_reads
    ));
    out.push_str(",\"ports\":[");
    for (i, p) in snap.ports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"powered_mask\":{},\"allocatable_mask\":{},\"usable_at\":",
            p.powered_mask, p.allocatable_mask
        ));
        push_u64_list(out, &p.usable_at);
        out.push_str(&format!(
            ",\"gate_transitions\":{},\"flits_received\":{}}}",
            p.gate_transitions, p.flits_received
        ));
    }
    out.push_str("],\"arbiters\":");
    let arbs: Vec<u64> = snap.arbiters.iter().map(|&a| u64::from(a)).collect();
    push_u64_list(out, &arbs);
    out.push('}');
}

fn read_snapshot(v: &JsonValue) -> Result<NetworkSnapshot, CodecError> {
    let stats_obj = v
        .get("stats")
        .ok_or_else(|| CodecError::new("snapshot missing `stats`"))?;
    let hist = read_u64_list(
        stats_obj
            .get("latency_histogram")
            .ok_or_else(|| CodecError::new("snapshot missing `latency_histogram`"))?,
        "latency_histogram",
    )?;
    if hist.len() != LATENCY_BUCKETS {
        return Err(CodecError::new(format!(
            "latency_histogram has {} buckets, expected {LATENCY_BUCKETS}",
            hist.len()
        )));
    }
    let mut latency_histogram = [0u64; LATENCY_BUCKETS];
    latency_histogram.copy_from_slice(&hist);
    let stats = NetStats {
        packets_injected: req_u64(stats_obj, "packets_injected")?,
        packets_ejected: req_u64(stats_obj, "packets_ejected")?,
        flits_sent: req_u64(stats_obj, "flits_sent")?,
        flits_ejected: req_u64(stats_obj, "flits_ejected")?,
        latency_sum: req_u64(stats_obj, "latency_sum")?,
        latency_max: req_u64(stats_obj, "latency_max")?,
        latency_histogram,
        invariant_checks: req_u64(stats_obj, "invariant_checks")?,
        invariant_violations: req_u64(stats_obj, "invariant_violations")?,
    };
    let work_obj = v
        .get("work")
        .ok_or_else(|| CodecError::new("snapshot missing `work`"))?;
    let work = WorkCounters {
        bw_writes: req_u64(work_obj, "bw_writes")?,
        rc_computes: req_u64(work_obj, "rc_computes")?,
        va_grants: req_u64(work_obj, "va_grants")?,
        sa_grants: req_u64(work_obj, "sa_grants")?,
        gate_commands: req_u64(work_obj, "gate_commands")?,
        policy_evaluations: req_u64(work_obj, "policy_evaluations")?,
        sensor_reads: req_u64(work_obj, "sensor_reads")?,
    };
    let mut ports = Vec::new();
    for p in v
        .get("ports")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| CodecError::new("snapshot missing `ports`"))?
    {
        let powered = req_u64(p, "powered_mask")?;
        let allocatable = req_u64(p, "allocatable_mask")?;
        ports.push(PortState {
            powered_mask: u32::try_from(powered)
                .map_err(|_| CodecError::new("powered_mask out of range"))?,
            allocatable_mask: u32::try_from(allocatable)
                .map_err(|_| CodecError::new("allocatable_mask out of range"))?,
            usable_at: read_u64_list(
                p.get("usable_at")
                    .ok_or_else(|| CodecError::new("port state missing `usable_at`"))?,
                "usable_at",
            )?,
            gate_transitions: req_u64(p, "gate_transitions")?,
            flits_received: req_u64(p, "flits_received")?,
        });
    }
    let arbiters = read_u64_list(
        v.get("arbiters")
            .ok_or_else(|| CodecError::new("snapshot missing `arbiters`"))?,
        "arbiters",
    )?
    .into_iter()
    .map(|a| u32::try_from(a).map_err(|_| CodecError::new("arbiter pointer out of range")))
    .collect::<Result<Vec<u32>, _>>()?;
    Ok(NetworkSnapshot {
        cycle: req_u64(v, "cycle")?,
        next_packet: req_u64(v, "next_packet")?,
        flits_sent_total: req_u64(v, "flits_sent_total")?,
        flits_ejected_total: req_u64(v, "flits_ejected_total")?,
        stats,
        work,
        ports,
        arbiters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentConfig, SyntheticScenario};
    use crate::parallel::TrafficSpec;
    use crate::policy::PolicyKind;
    use noc_sim::config::NocConfig;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn epoch_job() -> ExperimentJob {
        let s = SyntheticScenario {
            cores: 4,
            vcs: 2,
            injection_rate: 0.15,
        };
        let mut cfg = ExperimentConfig::new(
            NocConfig::paper_synthetic(s.cores, s.vcs),
            PolicyKind::SensorWise,
        )
        .with_cycles(200, 1_200)
        .with_pv_seed(7);
        cfg.telemetry.trace = true;
        ExperimentJob {
            cfg,
            traffic: TrafficSpec::Uniform {
                rate: s.effective_rate(),
                seed: 0xA5A5,
            },
        }
    }

    #[test]
    fn request_round_trips_canonically() {
        let req = WireEpochRequest {
            base: epoch_job(),
            resume: None,
            vths_bits: Some(vec![vec![0.42f64.to_bits(), 0.43f64.to_bits()]]),
            drain_limit: 9_999,
        };
        let text = req.to_json().unwrap();
        assert!(is_epoch_request(&text));
        let back = WireEpochRequest::from_json(&text).unwrap();
        assert_eq!(back.drain_limit, req.drain_limit);
        assert_eq!(back.vths_bits, req.vths_bits);
        // Canonical: re-encode is byte-identical (the content address).
        assert_eq!(back.to_json().unwrap(), text);
        // A plain experiment spec is not an epoch request.
        assert!(!is_epoch_request(&spec_to_json(&epoch_job()).unwrap()));
    }

    #[test]
    fn outcome_round_trips_bit_exactly_including_snapshot() {
        let never = AtomicBool::new(false);
        let req = WireEpochRequest {
            base: epoch_job(),
            resume: None,
            vths_bits: None,
            drain_limit: 10_000,
        };
        let outcome = req.run_cancellable(&never).unwrap();
        let wire = WireEpochOutcome::from(&outcome);
        let text = wire.to_json();
        let back = WireEpochOutcome::from_json(&text).unwrap();
        assert_eq!(back, wire);
        assert_eq!(back.snapshot, outcome.snapshot);
        assert_eq!(back.duty_totals, outcome.duty_totals);
        assert_eq!(back.to_json(), text);
        // Voltages decode to the same floats, bit for bit.
        for (a, b) in back
            .initial_vths()
            .iter()
            .flatten()
            .zip(outcome.result.ports.iter().flat_map(|p| &p.initial_vths))
        {
            assert_eq!(a.as_volts().to_bits(), b.as_volts().to_bits());
        }
    }

    #[test]
    fn served_epoch_chain_is_bit_identical_to_local() {
        let never = AtomicBool::new(false);
        // Epoch 0 locally.
        let job = epoch_job();
        let mut traffic = job.traffic.build(&job.cfg.noc);
        let local0 =
            crate::experiment::run_epoch(&job.cfg, traffic.as_mut(), None, None, 10_000).unwrap();
        // Epoch 0 through the wire.
        let req0 = WireEpochRequest {
            base: job.clone(),
            resume: None,
            vths_bits: None,
            drain_limit: 10_000,
        };
        let req0 = WireEpochRequest::from_json(&req0.to_json().unwrap()).unwrap();
        let wire0 = WireEpochOutcome::from(&req0.run_cancellable(&never).unwrap());
        assert_eq!(wire0.result.trace_digest, local0.result.trace_digest());
        // Epoch 1 resumed through the wire matches a local resume.
        let local1 = crate::experiment::run_epoch(
            &job.cfg,
            job.traffic.with_seed(99).build(&job.cfg.noc).as_mut(),
            Some(&local0.snapshot),
            None,
            10_000,
        )
        .unwrap();
        let mut base1 = job.clone();
        base1.traffic = job.traffic.with_seed(99);
        let req1 = WireEpochRequest {
            base: base1,
            resume: Some(wire0.snapshot.clone()),
            vths_bits: None,
            drain_limit: 10_000,
        };
        let req1 = WireEpochRequest::from_json(&req1.to_json().unwrap()).unwrap();
        let wire1 = WireEpochOutcome::from(&req1.run_cancellable(&never).unwrap());
        assert_eq!(wire1.result.trace_digest, local1.result.trace_digest());
        assert_eq!(wire1.snapshot, local1.snapshot);
    }

    #[test]
    fn cancelled_epoch_reports_cancelled() {
        let cancelled = AtomicBool::new(true);
        cancelled.store(true, Ordering::SeqCst);
        let req = WireEpochRequest {
            base: epoch_job(),
            resume: None,
            vths_bits: None,
            drain_limit: 10_000,
        };
        assert!(matches!(
            req.run_cancellable(&cancelled),
            Err(EpochError::Cancelled)
        ));
    }

    #[test]
    fn corrupt_outcome_json_is_an_error_not_a_wrong_value() {
        let req = WireEpochRequest {
            base: epoch_job(),
            resume: None,
            vths_bits: None,
            drain_limit: 10_000,
        };
        let never = AtomicBool::new(false);
        let text = WireEpochOutcome::from(&req.run_cancellable(&never).unwrap()).to_json();
        assert!(WireEpochOutcome::from_json(&text[..text.len() / 2]).is_err());
        let tampered = text.replacen("\"drain_cycles\":", "\"drain_cycle\":", 1);
        assert!(WireEpochOutcome::from_json(&tampered).is_err());
    }
}
