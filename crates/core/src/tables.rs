//! Builders regenerating the paper's result tables.
//!
//! * [`synthetic_table`] — Tables II (4 VCs) and III (2 VCs):
//!   *NBTI-duty-cycle (%) for all the VCs using rr-no-sensor,
//!   sensor-wise-no-traffic and sensor-wise policies*, for 4- and 16-core
//!   meshes at injection rates 0.1/0.2/0.3 flits/cycle/port, sampled on the
//!   upper-left router's east input port.
//! * [`real_traffic_table`] — Table IV: average and standard deviation of
//!   per-VC NBTI-duty-cycles over 10 random benchmark mixes (our
//!   SPLASH2/WCET profile substitution), for the 4-core routers' east/west
//!   inputs and the 16-core main-diagonal routers.
//!
//! Every builder returns structured rows plus a `render()` that prints in
//! the paper's layout, so benches, examples and EXPERIMENTS.md all share
//! the same source of truth.

use crate::experiment::{ExperimentConfig, SyntheticScenario};
use crate::parallel::{default_jobs, run_batch, ExperimentJob, TrafficSpec};
use crate::policy::PolicyKind;
use noc_sim::config::NocConfig;
use noc_sim::topology::Mesh2D;
use noc_sim::types::{Direction, NodeId};
use noc_sim::view::PortId;
use noc_traffic::app::BenchmarkMix;
use std::fmt::Write as _;

/// One row of Table II / Table III.
#[derive(Debug, Clone)]
pub struct SyntheticRow {
    /// The scenario (cores, VCs, injection rate).
    pub scenario: SyntheticScenario,
    /// Most degraded VC (by initial `Vth`) on the sampled port.
    pub md_vc: usize,
    /// Per-policy, per-VC duty cycles in percent, ordered as
    /// [`PolicyKind::TABLE_POLICIES`].
    pub duty: Vec<(PolicyKind, Vec<f64>)>,
    /// `rr-no-sensor − sensor-wise` duty gap on the most degraded VC (the
    /// paper's `Gap` column; positive means sensor-wise wins).
    pub gap: f64,
}

impl SyntheticRow {
    /// Duty cycles of one policy.
    pub fn duty_of(&self, policy: PolicyKind) -> &[f64] {
        &self
            .duty
            .iter()
            .find(|(p, _)| *p == policy)
            .expect("policy present in row")
            .1
    }
}

/// Table II (4 VCs) or Table III (2 VCs).
#[derive(Debug, Clone)]
pub struct SyntheticTable {
    /// VCs per input port.
    pub vcs: usize,
    /// One row per {core count, injection rate}.
    pub rows: Vec<SyntheticRow>,
}

/// Builds the paper's synthetic table for the given VC count.
///
/// Scenarios: {4, 16} cores × injection rates {0.1, 0.2, 0.3}; policies
/// rr-no-sensor, sensor-wise-no-traffic, sensor-wise; sampled on the east
/// input port of router 0 (upper-left), as in the paper.
pub fn synthetic_table(vcs: usize, warmup: u64, measure: u64) -> SyntheticTable {
    synthetic_table_jobs(vcs, warmup, measure, default_jobs())
}

/// [`synthetic_table`] with an explicit worker count: all
/// `scenarios × policies` experiments (18 per table) fan out through the
/// parallel engine's [`run_batch`], bit-identical for every `jobs ≥ 1`.
///
/// # Panics
///
/// Panics if `jobs` is zero.
pub fn synthetic_table_jobs(vcs: usize, warmup: u64, measure: u64, jobs: usize) -> SyntheticTable {
    let scenarios: Vec<SyntheticScenario> = [4usize, 16]
        .into_iter()
        .flat_map(|cores| {
            [0.1, 0.2, 0.3].into_iter().map(move |rate| SyntheticScenario {
                cores,
                vcs,
                injection_rate: rate,
            })
        })
        .collect();
    let batch: Vec<ExperimentJob> = scenarios
        .iter()
        .flat_map(|s| {
            PolicyKind::TABLE_POLICIES
                .into_iter()
                .map(|policy| s.job(policy, warmup, measure))
        })
        .collect();
    let results = run_batch(&batch, jobs);
    let rows = scenarios
        .iter()
        .zip(results.chunks_exact(PolicyKind::TABLE_POLICIES.len()))
        .map(|(&scenario, chunk)| assemble_synthetic_row(scenario, chunk))
        .collect();
    SyntheticTable { vcs, rows }
}

/// Builds a single synthetic-table row (useful for quick looks and tests).
pub fn synthetic_row(scenario: SyntheticScenario, warmup: u64, measure: u64) -> SyntheticRow {
    let batch: Vec<ExperimentJob> = PolicyKind::TABLE_POLICIES
        .into_iter()
        .map(|policy| scenario.job(policy, warmup, measure))
        .collect();
    let results = run_batch(&batch, default_jobs());
    assemble_synthetic_row(scenario, &results)
}

/// Folds the per-policy results of one scenario (in
/// [`PolicyKind::TABLE_POLICIES`] order) into a table row.
fn assemble_synthetic_row(
    scenario: SyntheticScenario,
    results: &[crate::experiment::ExperimentResult],
) -> SyntheticRow {
    let sample = NodeId(0);
    let mut duty = Vec::new();
    let mut md_vc = 0;
    for (policy, result) in PolicyKind::TABLE_POLICIES.into_iter().zip(results) {
        let port = result.east_input(sample);
        md_vc = port.md_vc;
        duty.push((policy, port.duty_percent.clone()));
    }
    let rr = &duty[0].1;
    let sw = &duty[2].1;
    let gap = rr[md_vc] - sw[md_vc];
    SyntheticRow {
        scenario,
        md_vc,
        duty,
        gap,
    }
}

impl SyntheticTable {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "NBTI-duty-cycle (%) for all VCs — rr-no-sensor / sensor-wise-no-traffic / sensor-wise ({} VCs)",
            self.vcs
        );
        let vc_header: String = (0..self.vcs)
            .map(|v| format!("{:>7}", format!("VC{v}")))
            .collect();
        let _ = writeln!(
            s,
            "{:<16} {:>2} |{} |{} |{} | Gap (rr - sensor-wise on MD)",
            "Scenario", "MD", vc_header, vc_header, vc_header
        );
        for row in &self.rows {
            let mut line = format!("{:<16} {:>2} |", row.scenario.name(), row.md_vc);
            for (_, duties) in &row.duty {
                for d in duties {
                    let _ = write!(line, "{d:>6.1}%");
                }
                line.push_str(" |");
            }
            let rr = row.duty_of(PolicyKind::RrNoSensor)[row.md_vc];
            let sw = row.duty_of(PolicyKind::SensorWise)[row.md_vc];
            let _ = write!(line, " {rr:.1} - {sw:.1} = {:.1}%", row.gap);
            let _ = writeln!(s, "{line}");
        }
        s
    }

    /// The largest gap across rows — the paper's headline "up to X %
    /// activity factor improvement" number for this table.
    pub fn best_gap(&self) -> f64 {
        self.rows.iter().map(|r| r.gap).fold(f64::MIN, f64::max)
    }

    /// Renders the table as CSV (one column per policy × VC, plus the
    /// gap), for plotting outside Rust.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("scenario,md_vc");
        for policy in PolicyKind::TABLE_POLICIES {
            for v in 0..self.vcs {
                let _ = write!(s, ",{}_vc{v}", policy.label().replace('-', "_"));
            }
        }
        s.push_str(",gap\n");
        for row in &self.rows {
            let _ = write!(s, "{},{}", row.scenario.name(), row.md_vc);
            for (_, duties) in &row.duty {
                for d in duties {
                    let _ = write!(s, ",{d:.3}");
                }
            }
            let _ = writeln!(s, ",{:.3}", row.gap);
        }
        s
    }
}

/// One row of Table IV: a sampled router input port, averaged over the
/// benchmark-mix iterations.
#[derive(Debug, Clone)]
pub struct RealTrafficRow {
    /// Row label in the paper's format, e.g. `4c-r2-E`.
    pub label: String,
    /// The sampled port.
    pub port: PortId,
    /// Most degraded VC (constant across iterations, by construction).
    pub md_vc: usize,
    /// rr-no-sensor per-VC duty average over iterations (percent).
    pub rr_avg: Vec<f64>,
    /// rr-no-sensor per-VC duty standard deviation.
    pub rr_std: Vec<f64>,
    /// sensor-wise per-VC duty average.
    pub sw_avg: Vec<f64>,
    /// sensor-wise per-VC duty standard deviation.
    pub sw_std: Vec<f64>,
    /// Average gap `rr − sensor-wise` on the most degraded VC.
    pub gap: f64,
}

/// Table IV: real-traffic (benchmark-profile) results.
#[derive(Debug, Clone)]
pub struct RealTrafficTable {
    /// Iterations (benchmark mixes) per architecture.
    pub iterations: usize,
    /// Rows: the 4-core east/west ports and the 16-core diagonal ports.
    pub rows: Vec<RealTrafficRow>,
}

/// Builds Table IV.
///
/// For each architecture (4-core and 16-core, 2 VCs), runs `iterations`
/// random benchmark mixes. Process variation is sampled once per
/// architecture and kept constant across iterations and policies, exactly
/// as the paper does; only the benchmark mix changes per iteration.
///
/// Sampled ports: the paper's Table IV set — each 4-core router with its
/// east or west input port, and the 16-core main-diagonal routers. The
/// paper lists `16c-r15-E`, but the east input of the bottom-right corner
/// router does not exist in a 4×4 mesh; its west input is reported
/// instead (see EXPERIMENTS.md).
pub fn real_traffic_table(
    iterations: usize,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> RealTrafficTable {
    real_traffic_table_jobs(iterations, warmup, measure, seed, default_jobs())
}

/// [`real_traffic_table`] with an explicit worker count.
///
/// # Panics
///
/// Panics if `iterations` or `jobs` is zero.
pub fn real_traffic_table_jobs(
    iterations: usize,
    warmup: u64,
    measure: u64,
    seed: u64,
    jobs: usize,
) -> RealTrafficTable {
    let mut rows = Vec::new();
    // (cores, sampled ports with labels)
    let four_core: Vec<(String, PortId)> = vec![
        (
            "4c-r0-E".into(),
            PortId::router_input(NodeId(0), Direction::East),
        ),
        (
            "4c-r1-W".into(),
            PortId::router_input(NodeId(1), Direction::West),
        ),
        (
            "4c-r2-E".into(),
            PortId::router_input(NodeId(2), Direction::East),
        ),
        (
            "4c-r3-W".into(),
            PortId::router_input(NodeId(3), Direction::West),
        ),
    ];
    let sixteen_core: Vec<(String, PortId)> = vec![
        (
            "16c-r0-E".into(),
            PortId::router_input(NodeId(0), Direction::East),
        ),
        (
            "16c-r5-E".into(),
            PortId::router_input(NodeId(5), Direction::East),
        ),
        (
            "16c-r10-E".into(),
            PortId::router_input(NodeId(10), Direction::East),
        ),
        (
            "16c-r15-W".into(),
            PortId::router_input(NodeId(15), Direction::West),
        ),
    ];
    for (cores, samples) in [(4usize, four_core), (16usize, sixteen_core)] {
        rows.extend(real_traffic_rows_jobs(
            cores, 2, &samples, iterations, warmup, measure, seed, jobs,
        ));
    }
    RealTrafficTable { iterations, rows }
}

/// Builds Table IV rows for one architecture.
pub fn real_traffic_rows(
    cores: usize,
    vcs: usize,
    samples: &[(String, PortId)],
    iterations: usize,
    warmup: u64,
    measure: u64,
    seed: u64,
) -> Vec<RealTrafficRow> {
    real_traffic_rows_jobs(
        cores,
        vcs,
        samples,
        iterations,
        warmup,
        measure,
        seed,
        default_jobs(),
    )
}

/// [`real_traffic_rows`] with an explicit worker count: the
/// `iterations × 2` experiments (rr-no-sensor and sensor-wise per
/// benchmark mix) fan out through [`run_batch`], bit-identical for every
/// `jobs ≥ 1` — the mix and injection seeds depend only on the iteration
/// index, never on scheduling.
///
/// # Panics
///
/// Panics if `iterations` or `jobs` is zero.
#[allow(clippy::too_many_arguments)]
pub fn real_traffic_rows_jobs(
    cores: usize,
    vcs: usize,
    samples: &[(String, PortId)],
    iterations: usize,
    warmup: u64,
    measure: u64,
    seed: u64,
    jobs: usize,
) -> Vec<RealTrafficRow> {
    assert!(iterations > 0, "at least one iteration required");
    let noc = NocConfig::paper_synthetic(cores, vcs);
    let mesh = Mesh2D::new(noc.cols, noc.rows);
    let pv_seed = seed ^ ((cores as u64) << 8);
    const ROW_POLICIES: [PolicyKind; 2] = [PolicyKind::RrNoSensor, PolicyKind::SensorWise];
    let batch: Vec<ExperimentJob> = (0..iterations)
        .flat_map(|iter| {
            let mix = BenchmarkMix::random(mesh.num_nodes(), seed.wrapping_add(iter as u64 * 7919));
            ROW_POLICIES.into_iter().map({
                let noc = &noc;
                move |policy| ExperimentJob {
                    cfg: ExperimentConfig::new(noc.clone(), policy)
                        .with_cycles(warmup, measure)
                        .with_pv_seed(pv_seed),
                    traffic: TrafficSpec::Mix {
                        mix: mix.clone(),
                        seed: seed.wrapping_add(iter as u64),
                    },
                }
            })
        })
        .collect();
    let results = run_batch(&batch, jobs);
    // duty[policy][sample][iteration] -> Vec<f64> per VC
    let mut duty: Vec<Vec<Vec<Vec<f64>>>> =
        vec![vec![Vec::with_capacity(iterations); samples.len()]; 2];
    let mut md: Vec<usize> = vec![0; samples.len()];
    for chunk in results.chunks_exact(ROW_POLICIES.len()) {
        for (p_idx, result) in chunk.iter().enumerate() {
            for (s_idx, (_, pid)) in samples.iter().enumerate() {
                let port = result.port(*pid).expect("sampled port exists");
                duty[p_idx][s_idx].push(port.duty_percent.clone());
                md[s_idx] = port.md_vc;
            }
        }
    }
    samples
        .iter()
        .enumerate()
        .map(|(s_idx, (label, pid))| {
            let (rr_avg, rr_std) = avg_std_per_vc(&duty[0][s_idx], vcs);
            let (sw_avg, sw_std) = avg_std_per_vc(&duty[1][s_idx], vcs);
            let gap = rr_avg[md[s_idx]] - sw_avg[md[s_idx]];
            RealTrafficRow {
                label: label.clone(),
                port: *pid,
                md_vc: md[s_idx],
                rr_avg,
                rr_std,
                sw_avg,
                sw_std,
                gap,
            }
        })
        .collect()
}

fn avg_std_per_vc(iterations: &[Vec<f64>], vcs: usize) -> (Vec<f64>, Vec<f64>) {
    let n = iterations.len() as f64;
    let mut avg = vec![0.0; vcs];
    let mut std = vec![0.0; vcs];
    for it in iterations {
        for (v, &d) in it.iter().enumerate() {
            avg[v] += d;
        }
    }
    for a in &mut avg {
        *a /= n;
    }
    for it in iterations {
        for (v, &d) in it.iter().enumerate() {
            std[v] += (d - avg[v]).powi(2);
        }
    }
    for s in &mut std {
        *s = (*s / n).sqrt();
    }
    (avg, std)
}

impl RealTrafficTable {
    /// Renders Table IV in the paper's layout.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "NBTI-duty-cycle (%) avg/std over {} benchmark-mix iterations — rr-no-sensor vs sensor-wise (2 VCs)",
            self.iterations
        );
        let _ = writeln!(
            s,
            "{:<10} {:>2} | {:>6} {:>6}  {:>6} {:>6} | {:>6} {:>6}  {:>6} {:>6} | {:>6}",
            "Scenario",
            "MD",
            "rr-a0",
            "rr-s0",
            "rr-a1",
            "rr-s1",
            "sw-a0",
            "sw-s0",
            "sw-a1",
            "sw-s1",
            "Gap"
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:<10} {:>2} | {:>5.1}% {:>5.1}%  {:>5.1}% {:>5.1}% | {:>5.1}% {:>5.1}%  {:>5.1}% {:>5.1}% | {:>5.1}%",
                r.label,
                r.md_vc,
                r.rr_avg[0],
                r.rr_std[0],
                r.rr_avg[1],
                r.rr_std[1],
                r.sw_avg[0],
                r.sw_std[0],
                r.sw_avg[1],
                r.sw_std[1],
                r.gap
            );
        }
        s
    }

    /// The largest gap across rows — the paper's "up to 18.9 %" real-traffic
    /// headline.
    pub fn best_gap(&self) -> f64 {
        self.rows.iter().map(|r| r.gap).fold(f64::MIN, f64::max)
    }

    /// Renders the table as CSV, with avg and std columns per VC and
    /// policy.
    pub fn to_csv(&self) -> String {
        let vcs = self.rows.first().map(|r| r.rr_avg.len()).unwrap_or(0);
        let mut s = String::from("scenario,md_vc");
        for policy in ["rr", "sw"] {
            for v in 0..vcs {
                let _ = write!(s, ",{policy}_avg_vc{v},{policy}_std_vc{v}");
            }
        }
        s.push_str(",gap\n");
        for r in &self.rows {
            let _ = write!(s, "{},{}", r.label, r.md_vc);
            for v in 0..vcs {
                let _ = write!(s, ",{:.3},{:.3}", r.rr_avg[v], r.rr_std[v]);
            }
            for v in 0..vcs {
                let _ = write!(s, ",{:.3},{:.3}", r.sw_avg[v], r.sw_std[v]);
            }
            let _ = writeln!(s, ",{:.3}", r.gap);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_row_has_expected_shape() {
        let row = synthetic_row(
            SyntheticScenario {
                cores: 4,
                vcs: 2,
                injection_rate: 0.1,
            },
            1_000,
            6_000,
        );
        assert_eq!(row.duty.len(), 3);
        for (_, d) in &row.duty {
            assert_eq!(d.len(), 2);
            for &x in d {
                assert!((0.0..=100.0).contains(&x));
            }
        }
        assert!(row.md_vc < 2);
        assert!(
            row.gap > 0.0,
            "sensor-wise must beat rr on the MD VC, gap = {}",
            row.gap
        );
    }

    #[test]
    fn synthetic_table_renders_all_rows() {
        let table = SyntheticTable {
            vcs: 2,
            rows: vec![synthetic_row(
                SyntheticScenario {
                    cores: 4,
                    vcs: 2,
                    injection_rate: 0.2,
                },
                500,
                3_000,
            )],
        };
        let text = table.render();
        assert!(text.contains("4core-inj0.20"), "{text}");
        assert!(text.contains("Gap"), "{text}");
        assert!(table.best_gap() > -100.0);
    }

    #[test]
    fn csv_export_is_well_formed() {
        let table = SyntheticTable {
            vcs: 2,
            rows: vec![synthetic_row(
                SyntheticScenario {
                    cores: 4,
                    vcs: 2,
                    injection_rate: 0.1,
                },
                200,
                2_000,
            )],
        };
        let csv = table.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header.split(',').count(), 2 + 3 * 2 + 1);
        let row = lines.next().unwrap();
        assert_eq!(row.split(',').count(), header.split(',').count());
        assert!(row.starts_with("4core-inj0.10,"));
    }

    #[test]
    fn real_csv_export_is_well_formed() {
        let samples = vec![(
            "4c-r0-E".to_string(),
            PortId::router_input(NodeId(0), Direction::East),
        )];
        let rows = real_traffic_rows(4, 2, &samples, 2, 200, 2_000, 1);
        let table = RealTrafficTable {
            iterations: 2,
            rows,
        };
        let csv = table.to_csv();
        let header = csv.lines().next().unwrap();
        // scenario, md_vc, 2 policies × 2 VCs × (avg, std), gap.
        assert_eq!(header.split(',').count(), 2 + 2 * 2 * 2 + 1);
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn avg_std_math_is_correct() {
        let (avg, std) = avg_std_per_vc(&[vec![10.0, 0.0], vec![20.0, 0.0]], 2);
        assert_eq!(avg, vec![15.0, 0.0]);
        assert!((std[0] - 5.0).abs() < 1e-12);
        assert_eq!(std[1], 0.0);
    }

    #[test]
    fn full_real_table_builds_and_renders() {
        let table = real_traffic_table(1, 200, 2_000, 3);
        assert_eq!(table.rows.len(), 8, "4 four-core + 4 sixteen-core rows");
        let text = table.render();
        for label in ["4c-r0-E", "4c-r3-W", "16c-r5-E", "16c-r15-W"] {
            assert!(text.contains(label), "{text}");
        }
        assert!(table.best_gap().is_finite());
    }

    #[test]
    fn real_traffic_rows_are_stable_across_policies() {
        let samples = vec![(
            "4c-r0-E".to_string(),
            PortId::router_input(NodeId(0), Direction::East),
        )];
        let rows = real_traffic_rows(4, 2, &samples, 2, 500, 4_000, 42);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.md_vc < 2);
        assert_eq!(r.rr_avg.len(), 2);
        for v in r.rr_avg.iter().chain(&r.sw_avg) {
            assert!((0.0..=100.0).contains(v));
        }
    }
}
