//! Deterministic parallel experiment engine.
//!
//! Every artifact of the paper — Tables II–IV, the gap-versus-load sweep,
//! the ablations — is a fan-out of fully independent [`run_experiment`]
//! calls: each run derives *all* of its randomness (process-variation
//! `Vth` sampling, traffic injection, sensor noise) from seeds carried in
//! its own [`ExperimentConfig`] and [`TrafficSpec`], and shares no mutable
//! state with any other run. That makes the fan-out embarrassingly
//! parallel *and* lets us promise a hard determinism contract:
//!
//! > **`run_batch(jobs, n)` returns bit-identical results for every
//! > `n ≥ 1`, in input order.**
//!
//! Nothing about scheduling can leak into results, because no job ever
//! observes another job, a thread-local, or a global. The engine is
//! dependency-free — a bounded worker pool over [`std::thread::scope`]
//! pulling indices from an atomic counter — since the build environment
//! has no registry access.
//!
//! Higher-level swept APIs ([`crate::sweep::gap_sweep_jobs`],
//! [`crate::tables::synthetic_table_jobs`], …) all funnel through here,
//! and the serial entry points are just `jobs = 1` (or
//! `jobs = `[`default_jobs`]`()`) wrappers — which the determinism
//! contract makes observably equivalent.

use crate::experiment::{run_experiment, ExperimentConfig, ExperimentResult};
use noc_sim::topology::Mesh2D;
use noc_traffic::app::{AppTraffic, BenchmarkMix};
use noc_traffic::pattern::DestinationPattern;
use noc_traffic::source::TrafficSource;
use noc_traffic::synthetic::SyntheticTraffic;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// The default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Validates a user-supplied `--jobs` value.
///
/// Returns a clear error for `0` (and for unparsable input), so every CLI
/// front-end rejects it the same way.
pub fn validate_jobs(jobs: usize) -> Result<usize, String> {
    if jobs == 0 {
        Err("--jobs must be at least 1 (0 workers cannot run anything)".to_string())
    } else {
        Ok(jobs)
    }
}

/// Applies `f` to every item, fanning across at most `jobs` worker
/// threads, and returns the results **in input order**.
///
/// Determinism contract: `f` must derive each result only from its item
/// (and index) — given that, the output is bit-identical for every
/// `jobs ≥ 1`. Worker threads pull indices from a shared counter, so an
/// expensive item never strands the remaining work behind one thread.
///
/// A panic inside `f` is propagated to the caller after the scope joins.
///
/// # Panics
///
/// Panics if `jobs == 0`, or if `f` panicked on any item.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert!(jobs > 0, "jobs must be at least 1 (got 0)");
    if jobs == 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = jobs.min(items.len());
    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        done.push((i, f(i, item)));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(done) => done,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index was claimed exactly once"))
        .collect()
}

/// A self-contained traffic recipe: everything needed to rebuild the
/// traffic source inside a worker, with randomness derived solely from the
/// embedded seed.
#[derive(Debug, Clone)]
pub enum TrafficSpec {
    /// Uniform-random synthetic traffic at a raw injection rate
    /// (flits/cycle/node).
    Uniform {
        /// Raw injection rate in flits/cycle/node.
        rate: f64,
        /// Injection/destination seed.
        seed: u64,
    },
    /// Synthetic traffic under an arbitrary destination pattern.
    Pattern {
        /// The destination pattern.
        pattern: DestinationPattern,
        /// Raw injection rate in flits/cycle/node.
        rate: f64,
        /// Injection/destination seed.
        seed: u64,
    },
    /// Application traffic from a benchmark mix (Table IV's workload).
    Mix {
        /// One benchmark profile per core.
        mix: BenchmarkMix,
        /// Injection seed.
        seed: u64,
    },
}

impl TrafficSpec {
    /// Builds the traffic source for a network of the given configuration.
    pub fn build(&self, noc: &noc_sim::config::NocConfig) -> Box<dyn TrafficSource> {
        let mesh = Mesh2D::new(noc.cols, noc.rows);
        match self {
            TrafficSpec::Uniform { rate, seed } => Box::new(SyntheticTraffic::uniform(
                mesh,
                *rate,
                noc.flits_per_packet,
                *seed,
            )),
            TrafficSpec::Pattern {
                pattern,
                rate,
                seed,
            } => Box::new(SyntheticTraffic::new(
                mesh,
                pattern.clone(),
                *rate,
                noc.flits_per_packet,
                *seed,
            )),
            TrafficSpec::Mix { mix, seed } => Box::new(AppTraffic::new(mesh, mix, *seed)),
        }
    }

    /// The same recipe under a different injection seed — how batch
    /// submitters derive independent replicas of one scenario.
    #[must_use]
    pub fn with_seed(&self, new_seed: u64) -> TrafficSpec {
        let mut spec = self.clone();
        match &mut spec {
            TrafficSpec::Uniform { seed, .. }
            | TrafficSpec::Pattern { seed, .. }
            | TrafficSpec::Mix { seed, .. } => *seed = new_seed,
        }
        spec
    }
}

/// One independent experiment: a configuration plus the traffic recipe
/// that seeds it.
#[derive(Debug, Clone)]
pub struct ExperimentJob {
    /// The experiment configuration (carries the process-variation seed).
    pub cfg: ExperimentConfig,
    /// The traffic recipe (carries the injection seed).
    pub traffic: TrafficSpec,
}

impl ExperimentJob {
    /// Runs this job serially.
    pub fn run(&self) -> ExperimentResult {
        let mut traffic = self.traffic.build(&self.cfg.noc);
        run_experiment(&self.cfg, traffic.as_mut())
    }

    /// Runs this job serially with per-cycle stage timing. The profiler
    /// observes the run without influencing it — the result is
    /// bit-identical to [`ExperimentJob::run`] (see
    /// [`crate::experiment::run_experiment_profiled`]).
    pub fn run_profiled(&self) -> (ExperimentResult, noc_telemetry::StageProfiler) {
        let mut traffic = self.traffic.build(&self.cfg.noc);
        crate::experiment::run_experiment_profiled(&self.cfg, traffic.as_mut())
    }

    /// Runs this job, polling `cancel` periodically; `None` when the flag
    /// was observed set (see
    /// [`crate::experiment::run_experiment_cancellable`]).
    pub fn run_cancellable(
        &self,
        cancel: &std::sync::atomic::AtomicBool,
    ) -> Option<ExperimentResult> {
        let mut traffic = self.traffic.build(&self.cfg.noc);
        crate::experiment::run_experiment_cancellable(&self.cfg, traffic.as_mut(), cancel)
    }
}

/// Runs a batch of independent experiments across at most `jobs` worker
/// threads, returning results in input order.
///
/// Bit-identical for every `jobs ≥ 1`: each job's RNG streams derive only
/// from its own seeds.
///
/// # Panics
///
/// Panics if `jobs == 0` or any job's configuration is invalid.
pub fn run_batch(batch: &[ExperimentJob], jobs: usize) -> Vec<ExperimentResult> {
    parallel_map(batch, jobs, |_, job| job.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SyntheticScenario;
    use crate::policy::PolicyKind;
    use noc_sim::config::NocConfig;
    use noc_sim::types::NodeId;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..64).collect();
        for jobs in [1, 2, 3, 8] {
            let out = parallel_map(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * 10
            });
            assert_eq!(out, (0..64).map(|x| x * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_fewer_items_than_workers() {
        let out = parallel_map(&[5usize], 16, |_, &x| x + 1);
        assert_eq!(out, vec![6]);
        let empty: Vec<usize> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, &x: &usize| x).is_empty());
    }

    #[test]
    #[should_panic(expected = "jobs must be at least 1")]
    fn zero_jobs_panics() {
        let _ = parallel_map(&[1, 2, 3], 0, |_, &x: &i32| x);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..8).collect();
        let _ = parallel_map(&items, 4, |_, &x| {
            if x == 5 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn validate_jobs_rejects_zero_with_clear_error() {
        assert_eq!(validate_jobs(3), Ok(3));
        let err = validate_jobs(0).unwrap_err();
        assert!(err.contains("--jobs must be at least 1"), "{err}");
    }

    /// The engine's core promise on a real workload: the same batch run
    /// serially and on a pool produces byte-for-byte identical duty
    /// cycles, latencies and flit counts.
    #[test]
    fn batch_results_are_identical_across_worker_counts() {
        let scenario = SyntheticScenario {
            cores: 4,
            vcs: 2,
            injection_rate: 0.15,
        };
        let batch: Vec<ExperimentJob> = [PolicyKind::RrNoSensor, PolicyKind::SensorWise]
            .into_iter()
            .flat_map(|policy| {
                [3u64, 11].into_iter().map(move |seed| ExperimentJob {
                    cfg: ExperimentConfig::new(
                        NocConfig::paper_synthetic(scenario.cores, scenario.vcs),
                        policy,
                    )
                    .with_cycles(300, 2_500)
                    .with_pv_seed(seed),
                    traffic: TrafficSpec::Uniform {
                        rate: scenario.effective_rate(),
                        seed: seed ^ 0x7261_6666,
                    },
                })
            })
            .collect();
        let serial = run_batch(&batch, 1);
        let pooled = run_batch(&batch, 4);
        assert_eq!(serial.len(), pooled.len());
        for (a, b) in serial.iter().zip(&pooled) {
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.measured_cycles, b.measured_cycles);
            assert_eq!(a.net, b.net);
            for (pa, pb) in a.ports.iter().zip(&b.ports) {
                assert_eq!(pa, pb, "port results diverged across worker counts");
            }
        }
        // And the batch genuinely exercised the network.
        assert!(serial[0].net.packets_ejected > 0);
        let _ = serial[0].east_input(NodeId(0));
    }
}
