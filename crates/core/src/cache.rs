//! Content-addressed experiment result caching.
//!
//! Every servable experiment is fully described by its canonical spec JSON
//! ([`crate::codec::spec_to_json`]): all randomness derives from seeds
//! embedded in the spec, so **identical spec ⇒ bit-identical
//! [`WireResult`]**. That turns the spec string into a content address and
//! makes memoization semantically invisible — a cache hit returns exactly
//! the bytes a recompute would produce.
//!
//! This module defines the [`ResultCache`] interface shared by the sweep
//! memoization ([`run_batch_cached`], [`crate::sweep::gap_sweep_cached`])
//! and the serving layer (`noc-service` consults a cache before occupying a
//! worker), plus an in-memory reference implementation. The durable
//! on-disk store lives in the `noc-campaign` crate (`FsResultStore`).
//!
//! Correctness rules every implementation must follow:
//!
//! * keys are the **canonical spec JSON**, never a truncated digest alone —
//!   a store may *address* by hash but must verify the full spec on read,
//!   so hash collisions degrade to misses, never wrong results;
//! * a corrupted or undecodable entry is a **miss** (callers recompute),
//!   never an error surfaced as a result.

use crate::codec::{spec_to_json, CodecError, WireResult};
use crate::parallel::{parallel_map, ExperimentJob};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A memoization store for experiment results, addressed by canonical spec
/// JSON.
pub trait ResultCache {
    /// Looks up the result previously stored for `spec`. Returns `None` on
    /// a miss *and* on any unreadable/corrupted entry.
    fn get(&self, spec: &str) -> Option<WireResult>;

    /// Persists `result` under `spec`. Failures are swallowed: caching is
    /// an optimization, so a store that cannot write must degrade to
    /// recomputation, not abort the experiment.
    fn put(&self, spec: &str, result: &WireResult);

    /// Looks up an arbitrary canonical JSON payload stored under `spec`
    /// (the distributed campaign path files epoch outcomes this way).
    /// Stores that only understand [`WireResult`] entries keep the default,
    /// which degrades to a miss — callers recompute.
    fn get_json(&self, _spec: &str) -> Option<String> {
        None
    }

    /// Persists an arbitrary canonical JSON payload under `spec`. The
    /// default swallows the write (see [`ResultCache::put`]): a store that
    /// cannot file raw payloads degrades to recomputation downstream.
    fn put_json(&self, _spec: &str, _json: &str) {}
}

/// FNV-1a 64-bit hash of a spec string — the address stores may file
/// entries under. Stable across runs and platforms (no randomized state).
pub fn spec_key(spec: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in spec.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// An in-memory [`ResultCache`]: the reference implementation, used by
/// tests and as the service's default when no store directory is given.
///
/// Entries are kept as canonical result JSON (not decoded structs), so a
/// hit exercises the same decode path an on-disk store would.
#[derive(Debug, Default)]
pub struct MemoryCache {
    entries: Mutex<BTreeMap<String, String>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoryCache {
    /// An empty cache.
    pub fn new() -> Self {
        MemoryCache::default()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock poisoned").len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl ResultCache for MemoryCache {
    fn get(&self, spec: &str) -> Option<WireResult> {
        let stored = {
            let entries = self.entries.lock().expect("cache lock poisoned");
            entries.get(spec).cloned()
        };
        let decoded = stored.and_then(|json| WireResult::from_json(&json).ok());
        match decoded {
            Some(r) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, spec: &str, result: &WireResult) {
        let mut entries = self.entries.lock().expect("cache lock poisoned");
        entries.insert(spec.to_string(), result.to_json());
    }

    fn get_json(&self, spec: &str) -> Option<String> {
        let entries = self.entries.lock().expect("cache lock poisoned");
        entries.get(spec).cloned()
    }

    fn put_json(&self, spec: &str, json: &str) {
        let mut entries = self.entries.lock().expect("cache lock poisoned");
        entries.insert(spec.to_string(), json.to_string());
    }
}

/// Outcome of a memoized batch run.
#[derive(Debug, Clone)]
pub struct CachedBatch {
    /// One wire result per job, in input order; hits and recomputes are
    /// indistinguishable by construction.
    pub results: Vec<WireResult>,
    /// How many jobs were served from the cache.
    pub hits: usize,
    /// How many jobs were computed (and then stored).
    pub misses: usize,
}

/// Runs a batch like [`crate::parallel::run_batch`], but consults `cache`
/// first: jobs whose canonical spec is already stored are skipped entirely,
/// only the misses fan out across the worker pool, and every computed
/// result is stored before returning.
///
/// The returned results are bit-identical to an uncached `run_batch`
/// mapped through [`WireResult::from`], for any mix of hits and misses —
/// that is the content-address contract, and `tests/` assert it.
///
/// # Errors
///
/// Returns an error when a job is not canonically encodable (e.g. a
/// quantized-sensor config, which the wire schema refuses).
///
/// # Panics
///
/// Panics if `jobs == 0` or a recomputed job's configuration is invalid.
pub fn run_batch_cached(
    batch: &[ExperimentJob],
    jobs: usize,
    cache: &(dyn ResultCache + Sync),
) -> Result<CachedBatch, CodecError> {
    let specs: Vec<String> = batch.iter().map(spec_to_json).collect::<Result<_, _>>()?;
    let mut results: Vec<Option<WireResult>> = specs.iter().map(|s| cache.get(s)).collect();
    let miss_indices: Vec<usize> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_none().then_some(i))
        .collect();
    let hits = batch.len() - miss_indices.len();
    if !miss_indices.is_empty() {
        let computed = parallel_map(&miss_indices, jobs.max(1), |_, &i| {
            WireResult::from(&batch[i].run())
        });
        for (&i, wire) in miss_indices.iter().zip(computed) {
            cache.put(&specs[i], &wire);
            results[i] = Some(wire);
        }
    }
    Ok(CachedBatch {
        results: results
            .into_iter()
            .map(|r| r.expect("every slot is a hit or was computed"))
            .collect(),
        hits,
        misses: miss_indices.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentConfig, SyntheticScenario};
    use crate::parallel::TrafficSpec;
    use crate::policy::PolicyKind;
    use noc_sim::config::NocConfig;

    fn job(policy: PolicyKind, seed: u64) -> ExperimentJob {
        let s = SyntheticScenario {
            cores: 4,
            vcs: 2,
            injection_rate: 0.15,
        };
        ExperimentJob {
            cfg: ExperimentConfig::new(NocConfig::paper_synthetic(s.cores, s.vcs), policy)
                .with_cycles(200, 1_500)
                .with_pv_seed(seed),
            traffic: TrafficSpec::Uniform {
                rate: s.effective_rate(),
                seed: seed ^ 0x7261_6666,
            },
        }
    }

    #[test]
    fn spec_key_is_stable_and_spreads() {
        assert_eq!(spec_key(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(spec_key("{\"a\":1}"), spec_key("{\"a\":2}"));
    }

    #[test]
    fn second_batch_is_served_entirely_from_cache() {
        let cache = MemoryCache::new();
        let batch = vec![job(PolicyKind::RrNoSensor, 3), job(PolicyKind::SensorWise, 3)];
        let first = run_batch_cached(&batch, 2, &cache).unwrap();
        assert_eq!((first.hits, first.misses), (0, 2));
        assert_eq!(cache.len(), 2);
        let second = run_batch_cached(&batch, 2, &cache).unwrap();
        assert_eq!((second.hits, second.misses), (2, 0));
        // Byte-identical: hit and recompute encode to the same JSON.
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(a.to_json(), b.to_json());
        }
    }

    #[test]
    fn changed_seed_misses() {
        let cache = MemoryCache::new();
        let _ = run_batch_cached(&[job(PolicyKind::SensorWise, 3)], 1, &cache).unwrap();
        let other = run_batch_cached(&[job(PolicyKind::SensorWise, 4)], 1, &cache).unwrap();
        assert_eq!((other.hits, other.misses), (0, 1));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_results_match_uncached_run_batch() {
        let cache = MemoryCache::new();
        let batch = vec![job(PolicyKind::RrNoSensor, 9), job(PolicyKind::SensorWise, 9)];
        // Warm the cache, then answer from it.
        let _ = run_batch_cached(&batch, 2, &cache).unwrap();
        let cached = run_batch_cached(&batch, 2, &cache).unwrap();
        assert_eq!(cached.hits, 2);
        let direct = crate::parallel::run_batch(&batch, 1);
        for (c, d) in cached.results.iter().zip(&direct) {
            assert_eq!(c, &WireResult::from(d));
        }
    }

    #[test]
    fn corrupted_entry_is_a_miss_and_gets_recomputed() {
        let cache = MemoryCache::new();
        let batch = vec![job(PolicyKind::SensorWise, 5)];
        let spec = spec_to_json(&batch[0]).unwrap();
        let first = run_batch_cached(&batch, 1, &cache).unwrap();
        // Corrupt the stored JSON behind the trait's back.
        cache
            .entries
            .lock()
            .unwrap()
            .insert(spec.clone(), "{\"policy\":".to_string());
        let again = run_batch_cached(&batch, 1, &cache).unwrap();
        assert_eq!((again.hits, again.misses), (0, 1));
        assert_eq!(again.results, first.results);
        // The recompute repaired the entry.
        assert!(cache.get(&spec).is_some());
    }
}
