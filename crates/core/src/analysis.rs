//! Headline extractions from the measured duty cycles.
//!
//! * [`vth_saving_rows`] — experiment E5: the *net NBTI `Vth` saving*
//!   of the sensor-wise policy against the NBTI-unaware baseline
//!   (`α = 1`), obtained by pushing the measured duty cycles through the
//!   Eq. 1 long-term model at a ten-year horizon. The paper reports up to
//!   54.2 %.
//! * [`cooperative_gain_rows`] — experiment E6: the duty-cycle reduction
//!   on the most degraded VC that *traffic information* buys
//!   (sensor-wise-no-traffic − sensor-wise). The paper reports up to 23 %.

use crate::policy::PolicyKind;
use crate::tables::{SyntheticRow, SyntheticTable};
use nbti_model::{vth_saving_percent, LongTermModel};

/// E5: one scenario's ten-year `Vth` saving on the most degraded VC.
#[derive(Debug, Clone, PartialEq)]
pub struct VthSavingRow {
    /// Scenario name.
    pub scenario: String,
    /// Measured sensor-wise duty cycle on the MD VC (fraction).
    pub alpha_sensor_wise: f64,
    /// Measured rr-no-sensor duty cycle on the MD VC (fraction).
    pub alpha_rr: f64,
    /// Ten-year ΔVth saving of sensor-wise vs. the `α = 1` baseline, in
    /// percent.
    pub saving_vs_baseline: f64,
    /// Ten-year ΔVth saving of rr-no-sensor vs. the `α = 1` baseline.
    pub rr_saving_vs_baseline: f64,
}

/// Computes the E5 rows for every scenario of a synthetic table.
pub fn vth_saving_rows(table: &SyntheticTable, model: &LongTermModel) -> Vec<VthSavingRow> {
    table
        .rows
        .iter()
        .map(|row| {
            let md = row.md_vc;
            let a_sw = row.duty_of(PolicyKind::SensorWise)[md] / 100.0;
            let a_rr = row.duty_of(PolicyKind::RrNoSensor)[md] / 100.0;
            VthSavingRow {
                scenario: row.scenario.name(),
                alpha_sensor_wise: a_sw,
                alpha_rr: a_rr,
                saving_vs_baseline: vth_saving_percent(model, a_sw),
                rr_saving_vs_baseline: vth_saving_percent(model, a_rr),
            }
        })
        .collect()
}

/// The best (largest) ten-year saving across scenarios — the paper's
/// "up to 54.2 %" headline.
pub fn best_vth_saving(rows: &[VthSavingRow]) -> f64 {
    rows.iter()
        .map(|r| r.saving_vs_baseline)
        .fold(f64::MIN, f64::max)
}

/// E6: one scenario's cooperative gain.
#[derive(Debug, Clone, PartialEq)]
pub struct CooperativeRow {
    /// Scenario name.
    pub scenario: String,
    /// Duty cycle of the MD VC without traffic information (percent).
    pub no_traffic_md_duty: f64,
    /// Duty cycle of the MD VC with traffic information (percent).
    pub with_traffic_md_duty: f64,
    /// Reduction bought by cooperation (percentage points).
    pub gain: f64,
}

/// Computes the E6 rows for every scenario of a synthetic table.
pub fn cooperative_gain_rows(table: &SyntheticTable) -> Vec<CooperativeRow> {
    table.rows.iter().map(cooperative_gain_row).collect()
}

fn cooperative_gain_row(row: &SyntheticRow) -> CooperativeRow {
    let md = row.md_vc;
    let without = row.duty_of(PolicyKind::SensorWiseNoTraffic)[md];
    let with = row.duty_of(PolicyKind::SensorWise)[md];
    CooperativeRow {
        scenario: row.scenario.name(),
        no_traffic_md_duty: without,
        with_traffic_md_duty: with,
        gain: without - with,
    }
}

/// The best cooperative gain across scenarios — the paper's "up to 23 %"
/// headline.
pub fn best_cooperative_gain(rows: &[CooperativeRow]) -> f64 {
    rows.iter().map(|r| r.gain).fold(f64::MIN, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SyntheticScenario;
    use crate::tables::synthetic_row;

    fn small_table() -> SyntheticTable {
        SyntheticTable {
            vcs: 2,
            rows: vec![synthetic_row(
                SyntheticScenario {
                    cores: 4,
                    vcs: 2,
                    injection_rate: 0.1,
                },
                1_000,
                8_000,
            )],
        }
    }

    #[test]
    fn savings_are_positive_and_ordered() {
        let table = small_table();
        let model = LongTermModel::calibrated_45nm();
        let rows = vth_saving_rows(&table, &model);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(
            r.saving_vs_baseline > 0.0,
            "saving = {}",
            r.saving_vs_baseline
        );
        assert!(
            r.saving_vs_baseline >= r.rr_saving_vs_baseline,
            "sensor-wise ({}) must save at least as much as rr ({})",
            r.saving_vs_baseline,
            r.rr_saving_vs_baseline
        );
        assert!(best_vth_saving(&rows) >= r.saving_vs_baseline - 1e-12);
    }

    #[test]
    fn cooperation_reduces_md_duty() {
        let table = small_table();
        let rows = cooperative_gain_rows(&table);
        assert_eq!(rows.len(), 1);
        assert!(
            rows[0].gain > 0.0,
            "traffic information must help: {:?}",
            rows[0]
        );
        assert_eq!(best_cooperative_gain(&rows), rows[0].gain);
    }
}
