//! Load sweeps and saturation analysis.
//!
//! The paper's central trend — the sensor-wise gap grows with load while
//! the network has gating headroom and collapses once it congests — is a
//! function of *where the network saturates*. This module provides the
//! programmatic sweep behind the `gap_sweep` binary plus a saturation-point
//! finder, so the trend can be asserted in tests and recomputed for any
//! configuration.

use crate::experiment::{run_experiment, ExperimentConfig};
use crate::policy::PolicyKind;
use noc_sim::config::NocConfig;
use noc_sim::topology::Mesh2D;
use noc_sim::types::NodeId;
use noc_traffic::synthetic::SyntheticTraffic;

/// One point of a gap-versus-load sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Raw injection rate in flits/cycle/node (no calibration applied).
    pub rate: f64,
    /// rr-no-sensor duty cycle on the most degraded VC (percent).
    pub rr_md_duty: f64,
    /// sensor-wise duty cycle on the most degraded VC (percent).
    pub sw_md_duty: f64,
    /// `rr − sensor-wise` gap (percentage points).
    pub gap: f64,
    /// Average packet latency under sensor-wise, in cycles.
    pub sw_latency: f64,
    /// Delivered throughput under sensor-wise, in flits/cycle.
    pub sw_throughput: f64,
}

/// Sweeps raw injection rates on a square mesh, sampling router 0's east
/// input port (the paper's sampling point).
///
/// # Panics
///
/// Panics if `rates` is empty or the configuration is invalid.
pub fn gap_sweep(
    cores: usize,
    vcs: usize,
    rates: &[f64],
    warmup: u64,
    measure: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    assert!(!rates.is_empty(), "at least one rate required");
    rates
        .iter()
        .map(|&rate| {
            let mut duties = [0.0f64; 2];
            let mut latency = 0.0;
            let mut throughput = 0.0;
            for (i, policy) in [PolicyKind::RrNoSensor, PolicyKind::SensorWise]
                .into_iter()
                .enumerate()
            {
                let noc = NocConfig::paper_synthetic(cores, vcs);
                let mesh = Mesh2D::new(noc.cols, noc.rows);
                let mut traffic =
                    SyntheticTraffic::uniform(mesh, rate, noc.flits_per_packet, seed ^ 0xABCD);
                let cfg = ExperimentConfig::new(noc, policy)
                    .with_cycles(warmup, measure)
                    .with_pv_seed(seed ^ (vcs as u64) << 8);
                let r = run_experiment(&cfg, &mut traffic);
                duties[i] = r.east_input(NodeId(0)).md_duty();
                if policy == PolicyKind::SensorWise {
                    latency = r.net.avg_latency().unwrap_or(f64::NAN);
                    throughput = r.net.throughput(r.measured_cycles);
                }
            }
            SweepPoint {
                rate,
                rr_md_duty: duties[0],
                sw_md_duty: duties[1],
                gap: duties[0] - duties[1],
                sw_latency: latency,
                sw_throughput: throughput,
            }
        })
        .collect()
}

/// The rate at which the sweep's gap peaks.
pub fn gap_peak(points: &[SweepPoint]) -> Option<SweepPoint> {
    points
        .iter()
        .copied()
        .max_by(|a, b| a.gap.partial_cmp(&b.gap).expect("finite gaps"))
}

/// Estimates the saturation rate of a configuration by bisection: the
/// lowest injection rate at which the delivered throughput falls short of
/// the offered load by more than `shortfall` (fractional), meaning queues
/// grow without bound.
///
/// Returns a rate within `tol` of the saturation onset.
///
/// # Panics
///
/// Panics if bounds or tolerances are not positive and ordered.
pub fn saturation_rate(
    cores: usize,
    vcs: usize,
    lo: f64,
    hi: f64,
    tol: f64,
    cycles: u64,
    seed: u64,
) -> f64 {
    assert!(lo > 0.0 && hi > lo && tol > 0.0, "bad bisection bounds");
    let saturated = |rate: f64| -> bool {
        let noc = NocConfig::paper_synthetic(cores, vcs);
        let mesh = Mesh2D::new(noc.cols, noc.rows);
        let mut traffic = SyntheticTraffic::uniform(mesh, rate, noc.flits_per_packet, seed ^ 0x5A7);
        let cfg = ExperimentConfig::new(noc, PolicyKind::Baseline).with_cycles(cycles / 5, cycles);
        let r = run_experiment(&cfg, &mut traffic);
        let offered = rate * cores as f64;
        let delivered = r.net.throughput(r.measured_cycles);
        delivered < offered * (1.0 - 0.1)
    };
    let (mut lo, mut hi) = (lo, hi);
    if saturated(lo) {
        return lo;
    }
    if !saturated(hi) {
        return hi;
    }
    while hi - lo > tol {
        let mid = (lo + hi) / 2.0;
        if saturated(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_point_per_rate() {
        let points = gap_sweep(4, 2, &[0.1, 0.4], 500, 4_000, 3);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.gap.is_finite());
            assert!(p.sw_throughput > 0.0);
            assert!((0.0..=100.0).contains(&p.rr_md_duty));
        }
        // Higher load, higher duty.
        assert!(points[1].rr_md_duty > points[0].rr_md_duty);
    }

    #[test]
    fn gap_collapses_past_saturation() {
        // The paper's Table III trend, reproduced at raw rates: the gap at
        // a moderate load beats the gap deep into saturation.
        let points = gap_sweep(4, 2, &[0.45, 1.0], 1_000, 12_000, 7);
        assert!(
            points[0].gap > points[1].gap,
            "gap must collapse at saturation: {points:?}"
        );
    }

    #[test]
    fn gap_peak_finds_the_maximum() {
        let points = gap_sweep(4, 2, &[0.1, 0.45], 500, 5_000, 1);
        let peak = gap_peak(&points).unwrap();
        assert!(points.iter().all(|p| p.gap <= peak.gap));
        assert_eq!(gap_peak(&[]), None);
    }

    #[test]
    fn saturation_sits_between_light_and_overload() {
        let sat = saturation_rate(4, 2, 0.1, 1.2, 0.1, 6_000, 5);
        assert!(sat > 0.3 && sat < 1.2, "implausible saturation rate {sat}");
    }

    #[test]
    #[should_panic(expected = "at least one rate")]
    fn empty_sweep_panics() {
        let _ = gap_sweep(4, 2, &[], 10, 10, 0);
    }
}
