//! Load sweeps and saturation analysis.
//!
//! The paper's central trend — the sensor-wise gap grows with load while
//! the network has gating headroom and collapses once it congests — is a
//! function of *where the network saturates*. This module provides the
//! programmatic sweep behind the `gap_sweep` binary plus a saturation-point
//! finder, so the trend can be asserted in tests and recomputed for any
//! configuration.
//!
//! Both sweeps fan out through the [`crate::parallel`] engine: every
//! `_jobs` variant returns **bit-identical** results for any worker count,
//! because each probe derives its RNG streams solely from its own seeds.
//! The unsuffixed entry points are [`default_jobs`]-wide wrappers.

use crate::cache::{run_batch_cached, ResultCache};
use crate::codec::{CodecError, WireResult};
use crate::experiment::ExperimentConfig;
use crate::parallel::{default_jobs, parallel_map, run_batch, ExperimentJob, TrafficSpec};
use crate::policy::PolicyKind;
use noc_sim::config::NocConfig;
use noc_sim::types::{Direction, NodeId};
use noc_sim::view::PortId;

/// One point of a gap-versus-load sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Raw injection rate in flits/cycle/node (no calibration applied).
    pub rate: f64,
    /// rr-no-sensor duty cycle on the most degraded VC (percent).
    pub rr_md_duty: f64,
    /// sensor-wise duty cycle on the most degraded VC (percent).
    pub sw_md_duty: f64,
    /// `rr − sensor-wise` gap (percentage points).
    pub gap: f64,
    /// Average packet latency under sensor-wise, in cycles.
    pub sw_latency: f64,
    /// Delivered throughput under sensor-wise, in flits/cycle.
    pub sw_throughput: f64,
}

/// Sweeps raw injection rates on a square mesh, sampling router 0's east
/// input port (the paper's sampling point). Uses every available core; see
/// [`gap_sweep_jobs`] for explicit worker control.
///
/// # Panics
///
/// Panics if `rates` is empty or the configuration is invalid.
pub fn gap_sweep(
    cores: usize,
    vcs: usize,
    rates: &[f64],
    warmup: u64,
    measure: u64,
    seed: u64,
) -> Vec<SweepPoint> {
    gap_sweep_jobs(cores, vcs, rates, warmup, measure, seed, default_jobs())
}

/// The policies compared at every sweep point, in result order.
const SWEEP_POLICIES: [PolicyKind; 2] = [PolicyKind::RrNoSensor, PolicyKind::SensorWise];

/// [`gap_sweep`] with an explicit worker count: all `2 × rates.len()`
/// experiments (rr-no-sensor and sensor-wise per rate) fan out through
/// [`run_batch`].
///
/// Determinism contract: bit-identical output for every `jobs ≥ 1` — both
/// policies of a rate share the process-variation seed (as in the paper)
/// and every run derives its RNG streams only from its own seeds.
///
/// # Panics
///
/// Panics if `rates` is empty, `jobs` is zero, or the configuration is
/// invalid.
pub fn gap_sweep_jobs(
    cores: usize,
    vcs: usize,
    rates: &[f64],
    warmup: u64,
    measure: u64,
    seed: u64,
    jobs: usize,
) -> Vec<SweepPoint> {
    assert!(!rates.is_empty(), "at least one rate required");
    let batch = sweep_batch(cores, vcs, rates, warmup, measure, seed);
    let results = run_batch(&batch, jobs);
    rates
        .iter()
        .zip(results.chunks_exact(SWEEP_POLICIES.len()))
        .map(|(&rate, pair)| {
            let (rr, sw) = (&pair[0], &pair[1]);
            let rr_md_duty = rr.east_input(NodeId(0)).md_duty();
            let sw_md_duty = sw.east_input(NodeId(0)).md_duty();
            SweepPoint {
                rate,
                rr_md_duty,
                sw_md_duty,
                gap: rr_md_duty - sw_md_duty,
                sw_latency: sw.net.avg_latency().unwrap_or(f64::NAN),
                sw_throughput: sw.net.throughput(sw.measured_cycles),
            }
        })
        .collect()
}

/// The `2 × rates.len()` jobs behind one gap sweep, in result order.
fn sweep_batch(
    cores: usize,
    vcs: usize,
    rates: &[f64],
    warmup: u64,
    measure: u64,
    seed: u64,
) -> Vec<ExperimentJob> {
    rates
        .iter()
        .flat_map(|&rate| {
            SWEEP_POLICIES.into_iter().map(move |policy| ExperimentJob {
                cfg: ExperimentConfig::new(NocConfig::paper_synthetic(cores, vcs), policy)
                    .with_cycles(warmup, measure)
                    .with_pv_seed(seed ^ (vcs as u64) << 8),
                traffic: TrafficSpec::Uniform {
                    rate,
                    seed: seed ^ 0xABCD,
                },
            })
        })
        .collect()
}

/// Outcome of a memoized gap sweep.
#[derive(Debug, Clone)]
pub struct CachedSweep {
    /// One point per rate, exactly as [`gap_sweep_jobs`] would produce.
    pub points: Vec<SweepPoint>,
    /// Probes served from the cache.
    pub hits: usize,
    /// Probes computed (and stored) this call.
    pub misses: usize,
}

/// [`gap_sweep_jobs`] through a [`ResultCache`]: already-computed probes
/// (same mesh, VCs, rate, cycles and seed) are skipped, only the missing
/// ones run, and every computed probe is persisted for the next sweep.
/// Re-sweeping a superset of rates therefore only pays for the new rates.
///
/// The points are reconstructed from the cached [`WireResult`]s; since the
/// wire codec round-trips every field the sweep reads (duty cycles,
/// latency, flit counts) exactly, a fully-cached sweep is bit-identical to
/// a fresh one.
///
/// # Errors
///
/// Returns an error when the wire schema cannot express a probe or a
/// cached row lacks the sampled port.
///
/// # Panics
///
/// Panics if `rates` is empty, `jobs` is zero, or the configuration is
/// invalid.
#[allow(clippy::too_many_arguments)] // mirrors gap_sweep_jobs + the cache handle
pub fn gap_sweep_cached(
    cores: usize,
    vcs: usize,
    rates: &[f64],
    warmup: u64,
    measure: u64,
    seed: u64,
    jobs: usize,
    cache: &(dyn ResultCache + Sync),
) -> Result<CachedSweep, CodecError> {
    assert!(!rates.is_empty(), "at least one rate required");
    let batch = sweep_batch(cores, vcs, rates, warmup, measure, seed);
    let outcome = run_batch_cached(&batch, jobs, cache)?;
    let sampled = PortId::router_input(NodeId(0), Direction::East).to_string();
    let md_duty = |r: &WireResult| -> Result<f64, CodecError> {
        let row = r
            .ports
            .iter()
            .find(|p| p.port == sampled)
            .ok_or_else(|| CodecError::new(format!("cached result lacks port {sampled}")))?;
        row.duty_percent.get(row.md_vc).copied().ok_or_else(|| {
            CodecError::new(format!("cached result has no duty for VC {}", row.md_vc))
        })
    };
    let points = rates
        .iter()
        .zip(outcome.results.chunks_exact(SWEEP_POLICIES.len()))
        .map(|(&rate, pair)| {
            let (rr, sw) = (&pair[0], &pair[1]);
            let rr_md_duty = md_duty(rr)?;
            let sw_md_duty = md_duty(sw)?;
            Ok(SweepPoint {
                rate,
                rr_md_duty,
                sw_md_duty,
                gap: rr_md_duty - sw_md_duty,
                sw_latency: sw.avg_latency.unwrap_or(f64::NAN),
                sw_throughput: if sw.measured_cycles == 0 {
                    0.0
                } else {
                    sw.flits_ejected as f64 / sw.measured_cycles as f64
                },
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    Ok(CachedSweep {
        points,
        hits: outcome.hits,
        misses: outcome.misses,
    })
}

/// The rate at which the sweep's gap peaks.
pub fn gap_peak(points: &[SweepPoint]) -> Option<SweepPoint> {
    points
        .iter()
        .copied()
        .max_by(|a, b| a.gap.partial_cmp(&b.gap).expect("finite gaps"))
}

/// Estimates the saturation rate of a configuration by bisection: the
/// lowest injection rate at which the delivered throughput falls short of
/// the offered load by more than 10 % (fractional), meaning queues grow
/// without bound. Uses every available core; see [`saturation_rate_jobs`].
///
/// Returns a rate within `tol` of the saturation onset.
///
/// # Panics
///
/// Panics if bounds or tolerances are not positive and ordered.
pub fn saturation_rate(
    cores: usize,
    vcs: usize,
    lo: f64,
    hi: f64,
    tol: f64,
    cycles: u64,
    seed: u64,
) -> f64 {
    saturation_rate_jobs(cores, vcs, lo, hi, tol, cycles, seed, default_jobs())
}

/// [`saturation_rate`] with an explicit worker count, parallelized by
/// **speculative bisection**: each round pre-probes the complete midpoint
/// tree of the next `d` bisection levels (`2^d − 1` rates, with
/// `2^d − 1 ≤ jobs`, capped) concurrently, then walks `d` classic
/// bisection steps against the cached outcomes.
///
/// Because the walk visits exactly the midpoints a serial bisection would
/// visit — each tree point is produced by the same `(lo + hi) / 2`
/// recursion — the returned rate is **bit-identical for every
/// `jobs ≥ 1`**; extra workers only buy wall-clock (≈`d×` fewer
/// sequential probe rounds) at the cost of speculative probes on the
/// untaken branch.
///
/// # Panics
///
/// Panics if bounds or tolerances are not positive and ordered, or if
/// `jobs` is zero.
#[allow(clippy::too_many_arguments)]
pub fn saturation_rate_jobs(
    cores: usize,
    vcs: usize,
    lo: f64,
    hi: f64,
    tol: f64,
    cycles: u64,
    seed: u64,
    jobs: usize,
) -> f64 {
    assert!(lo > 0.0 && hi > lo && tol > 0.0, "bad bisection bounds");
    assert!(jobs > 0, "jobs must be at least 1 (got 0)");
    let saturated = |rate: f64| -> bool {
        let noc = NocConfig::paper_synthetic(cores, vcs);
        let job = ExperimentJob {
            cfg: ExperimentConfig::new(noc, PolicyKind::Baseline).with_cycles(cycles / 5, cycles),
            traffic: TrafficSpec::Uniform {
                rate,
                seed: seed ^ 0x5A7,
            },
        };
        let r = job.run();
        let offered = rate * cores as f64;
        let delivered = r.net.throughput(r.measured_cycles);
        delivered < offered * (1.0 - 0.1)
    };
    // Both endpoint probes are independent — run them as one mini-batch.
    let ends = parallel_map(&[lo, hi], jobs, |_, &rate| saturated(rate));
    if ends[0] {
        return lo;
    }
    if !ends[1] {
        return hi;
    }
    // Speculation depth: the largest complete midpoint tree that fits the
    // worker budget, capped so speculative waste stays bounded.
    let mut depth = 1u32;
    while depth < 4 && (1usize << (depth + 1)) - 1 <= jobs {
        depth += 1;
    }
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > tol {
        let mut points = Vec::with_capacity((1 << depth) - 1);
        collect_midpoint_tree(lo, hi, depth, &mut points);
        let outcomes = parallel_map(&points, jobs, |_, &rate| saturated(rate));
        let cached: std::collections::BTreeMap<u64, bool> = points
            .iter()
            .map(|p| p.to_bits())
            .zip(outcomes)
            .collect();
        for _ in 0..depth {
            if hi - lo <= tol {
                break;
            }
            let mid = (lo + hi) / 2.0;
            if cached[&mid.to_bits()] {
                hi = mid;
            } else {
                lo = mid;
            }
        }
    }
    (lo + hi) / 2.0
}

/// Collects the midpoints a serial bisection could visit in the next
/// `depth` steps from `[lo, hi]`, via the same `(lo + hi) / 2` float
/// arithmetic, so cached lookups match the walk exactly.
fn collect_midpoint_tree(lo: f64, hi: f64, depth: u32, out: &mut Vec<f64>) {
    if depth == 0 {
        return;
    }
    let mid = (lo + hi) / 2.0;
    out.push(mid);
    collect_midpoint_tree(lo, mid, depth - 1, out);
    collect_midpoint_tree(mid, hi, depth - 1, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_point_per_rate() {
        let points = gap_sweep(4, 2, &[0.1, 0.4], 500, 4_000, 3);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.gap.is_finite());
            assert!(p.sw_throughput > 0.0);
            assert!((0.0..=100.0).contains(&p.rr_md_duty));
        }
        // Higher load, higher duty.
        assert!(points[1].rr_md_duty > points[0].rr_md_duty);
    }

    #[test]
    fn gap_collapses_past_saturation() {
        // The paper's Table III trend, reproduced at raw rates: the gap at
        // a moderate load beats the gap deep into saturation.
        let points = gap_sweep(4, 2, &[0.45, 1.0], 1_000, 12_000, 7);
        assert!(
            points[0].gap > points[1].gap,
            "gap must collapse at saturation: {points:?}"
        );
    }

    #[test]
    fn gap_peak_finds_the_maximum() {
        let points = gap_sweep(4, 2, &[0.1, 0.45], 500, 5_000, 1);
        let peak = gap_peak(&points).unwrap();
        assert!(points.iter().all(|p| p.gap <= peak.gap));
        assert_eq!(gap_peak(&[]), None);
    }

    #[test]
    fn saturation_sits_between_light_and_overload() {
        let sat = saturation_rate(4, 2, 0.1, 1.2, 0.1, 6_000, 5);
        assert!(sat > 0.3 && sat < 1.2, "implausible saturation rate {sat}");
    }

    #[test]
    fn saturation_is_identical_across_worker_counts() {
        let serial = saturation_rate_jobs(4, 2, 0.2, 1.1, 0.05, 2_500, 9, 1);
        for jobs in [2, 4, 8] {
            let pooled = saturation_rate_jobs(4, 2, 0.2, 1.1, 0.05, 2_500, 9, jobs);
            assert_eq!(
                serial.to_bits(),
                pooled.to_bits(),
                "speculative bisection diverged at jobs={jobs}: {serial} vs {pooled}"
            );
        }
    }

    #[test]
    fn midpoint_tree_matches_serial_bisection_arithmetic() {
        let mut points = Vec::new();
        collect_midpoint_tree(0.25, 1.0, 2, &mut points);
        let mid: f64 = (0.25 + 1.0) / 2.0;
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].to_bits(), mid.to_bits());
        assert_eq!(points[1].to_bits(), ((0.25 + mid) / 2.0).to_bits());
        assert_eq!(points[2].to_bits(), ((mid + 1.0) / 2.0).to_bits());
    }

    #[test]
    #[should_panic(expected = "at least one rate")]
    fn empty_sweep_panics() {
        let _ = gap_sweep(4, 2, &[], 10, 10, 0);
    }

    #[test]
    fn cached_sweep_matches_uncached_and_skips_computed_rates() {
        use crate::cache::MemoryCache;
        let cache = MemoryCache::new();
        let direct = gap_sweep_jobs(4, 2, &[0.1, 0.3], 300, 2_000, 3, 2);
        let first = gap_sweep_cached(4, 2, &[0.1, 0.3], 300, 2_000, 3, 2, &cache).unwrap();
        assert_eq!((first.hits, first.misses), (0, 4));
        // A superset sweep only pays for the new rate.
        let wider =
            gap_sweep_cached(4, 2, &[0.1, 0.3, 0.5], 300, 2_000, 3, 2, &cache).unwrap();
        assert_eq!((wider.hits, wider.misses), (4, 2));
        for (d, c) in direct.iter().zip(&wider.points) {
            assert_eq!(d.rate, c.rate);
            assert_eq!(d.rr_md_duty.to_bits(), c.rr_md_duty.to_bits());
            assert_eq!(d.sw_md_duty.to_bits(), c.sw_md_duty.to_bits());
            assert_eq!(d.sw_latency.to_bits(), c.sw_latency.to_bits());
            assert_eq!(d.sw_throughput.to_bits(), c.sw_throughput.to_bits());
        }
        // Changing the seed misses everything.
        let other = gap_sweep_cached(4, 2, &[0.1], 300, 2_000, 4, 1, &cache).unwrap();
        assert_eq!((other.hits, other.misses), (0, 2));
    }
}
