//! Exhaustive small-configuration model checking of the sensor-wise
//! protocol.
//!
//! The runtime invariant checker ([`noc_sim::invariants`]) turns every
//! simulated cycle into a property test; this module supplies the state
//! space. It enumerates every gating policy over the paper's smallest
//! meshes (2×2 and 3×3), a spread of destination patterns, and both a
//! light and a saturating injection rate, then runs each combination with
//! [`InvariantLevel::Full`] and reports any violation with its cycle and
//! diagnostic detail.
//!
//! The matrix is deliberately small enough to run inside `cargo test` and
//! CI (`scripts/ci.sh`), yet covers every branch of the `Down_Up` /
//! `Up_Down` protocol: single-VC-kept gating (Algorithms 1 and 2),
//! k-of-n gating (`SensorWiseK`), the traffic-oblivious variant, and the
//! ungated baseline.

use crate::experiment::ExperimentConfig;
use crate::parallel::{run_batch, ExperimentJob, TrafficSpec};
use crate::policy::PolicyKind;
use noc_sim::config::NocConfig;
use noc_sim::invariants::{InvariantLevel, InvariantViolation};
use noc_traffic::DestinationPattern;
use std::fmt;

/// The policies the model checker exercises: every member of
/// [`PolicyKind::ALL`] plus a k-of-n variant, so the idle-on-budget
/// invariant is checked for a budget other than one.
pub fn checked_policies() -> Vec<PolicyKind> {
    let mut policies = PolicyKind::ALL.to_vec();
    policies.push(PolicyKind::SensorWiseK(2));
    policies
}

/// One cell of the model-check matrix.
#[derive(Debug, Clone)]
pub struct CheckCase {
    /// The gating policy under test.
    pub policy: PolicyKind,
    /// Mesh size in cores (4 = 2×2, 9 = 3×3).
    pub cores: usize,
    /// Virtual channels per port.
    pub vcs: usize,
    /// Destination pattern driving the traffic.
    pub pattern: DestinationPattern,
    /// Raw injection rate in flits/cycle/node.
    pub rate: f64,
}

impl fmt::Display for CheckCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} cores x {} VCs | {} @ {:.2}",
            self.policy,
            self.cores,
            self.vcs,
            self.pattern.name(),
            self.rate
        )
    }
}

/// The outcome of one model-checked case.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The case that produced this outcome.
    pub case: CheckCase,
    /// Total invariant violations (including any beyond the record cap).
    pub violations: u64,
    /// Recorded violation details (capped; see
    /// [`noc_sim::invariants::MAX_RECORDED_VIOLATIONS`]).
    pub details: Vec<InvariantViolation>,
    /// Packets received during the measured window, as a liveness
    /// sanity signal — a case that moves no traffic checks nothing.
    pub packets_received: u64,
}

/// A full model-check report.
#[derive(Debug, Clone)]
pub struct ModelCheckReport {
    /// Per-case outcomes, in matrix order.
    pub outcomes: Vec<CheckOutcome>,
}

impl ModelCheckReport {
    /// True when no case reported any invariant violation.
    pub fn ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.violations == 0)
    }

    /// Total violations across the whole matrix.
    pub fn total_violations(&self) -> u64 {
        self.outcomes.iter().map(|o| o.violations).sum()
    }

    /// The outcomes that reported at least one violation.
    pub fn failures(&self) -> impl Iterator<Item = &CheckOutcome> {
        self.outcomes.iter().filter(|o| o.violations > 0)
    }

    /// Renders a human-readable summary (one line per case, then detail
    /// lines for every failure).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            let status = if o.violations == 0 { "ok" } else { "FAIL" };
            out.push_str(&format!(
                "{status:>4}  {}  ({} packets, {} violation(s))\n",
                o.case, o.packets_received, o.violations
            ));
        }
        for o in self.failures() {
            out.push_str(&format!("\nviolations for {}:\n", o.case));
            for v in &o.details {
                out.push_str(&format!("  {v}\n"));
            }
        }
        out
    }
}

/// The default matrix: every checked policy × {2×2/2VC, 3×3/2VC} ×
/// {uniform, transpose, tornado} × {light, saturating} injection.
pub fn default_cases() -> Vec<CheckCase> {
    let meshes = [(4usize, 2usize), (9, 2)];
    let patterns = [
        DestinationPattern::UniformRandom,
        DestinationPattern::Transpose,
        DestinationPattern::Tornado,
    ];
    let rates = [0.15f64, 0.60];
    let mut cases = Vec::new();
    for policy in checked_policies() {
        for &(cores, vcs) in &meshes {
            for pattern in &patterns {
                for &rate in &rates {
                    cases.push(CheckCase {
                        policy,
                        cores,
                        vcs,
                        pattern: pattern.clone(),
                        rate,
                    });
                }
            }
        }
    }
    cases
}

/// Runs the model checker over `cases`, with `warmup`/`measure` cycles
/// per case, fanned out across `jobs` worker threads.
///
/// Every case runs with [`InvariantLevel::Full`], so gating safety,
/// VC-state consistency, flit/credit conservation, the idle-on budget,
/// and duty closure are all asserted on every cycle of every case.
///
/// # Panics
///
/// Panics if `jobs == 0` or a case's configuration is invalid.
pub fn model_check(
    cases: &[CheckCase],
    warmup: u64,
    measure: u64,
    jobs: usize,
) -> ModelCheckReport {
    let batch: Vec<ExperimentJob> = cases
        .iter()
        .map(|c| {
            // Seed each case from its matrix coordinates so the run is
            // reproducible yet cases stay decorrelated.
            let seed = 0x5EED_0000
                ^ ((c.cores as u64) << 24)
                ^ ((c.rate * 100.0) as u64) << 16
                ^ (c.pattern.name().len() as u64) << 8;
            ExperimentJob {
                cfg: ExperimentConfig::new(
                    NocConfig::paper_synthetic(c.cores, c.vcs),
                    c.policy,
                )
                .with_cycles(warmup, measure)
                .with_pv_seed(seed)
                .with_invariants(InvariantLevel::Full),
                traffic: TrafficSpec::Pattern {
                    pattern: c.pattern.clone(),
                    rate: c.rate,
                    seed: seed.wrapping_add(1),
                },
            }
        })
        .collect();
    let results = run_batch(&batch, jobs);
    let outcomes = cases
        .iter()
        .zip(results)
        .map(|(case, res)| CheckOutcome {
            case: case.clone(),
            violations: res.invariant_violations,
            details: res.violations,
            packets_received: res.net.packets_ejected,
        })
        .collect();
    ModelCheckReport { outcomes }
}

/// Runs the default matrix with CI-sized cycle budgets.
pub fn model_check_default(jobs: usize) -> ModelCheckReport {
    model_check(&default_cases(), 300, 1_500, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_policy_and_both_meshes() {
        let cases = default_cases();
        assert_eq!(cases.len(), 5 * 2 * 3 * 2);
        for policy in checked_policies() {
            assert!(cases.iter().any(|c| c.policy == policy));
        }
        assert!(cases.iter().any(|c| c.cores == 4));
        assert!(cases.iter().any(|c| c.cores == 9));
    }

    #[test]
    fn small_matrix_holds_every_invariant() {
        // A reduced matrix keeps the test fast; CI runs the full one via
        // the `model_check` bench binary.
        let cases: Vec<CheckCase> = default_cases()
            .into_iter()
            .filter(|c| c.cores == 4 && c.rate > 0.5)
            .collect();
        assert!(!cases.is_empty());
        let report = model_check(&cases, 200, 800, 2);
        assert!(
            report.ok(),
            "invariant violations found:\n{}",
            report.render()
        );
        // Liveness: the checked runs actually moved traffic.
        assert!(report.outcomes.iter().all(|o| o.packets_received > 0));
    }

    #[test]
    fn report_renders_one_line_per_case() {
        let cases: Vec<CheckCase> = default_cases().into_iter().take(2).collect();
        let report = model_check(&cases, 50, 200, 1);
        let text = report.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("ok"));
    }
}
