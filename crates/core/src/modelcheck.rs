//! Exhaustive model checking of the sensor-wise protocol.
//!
//! Until the `noc-modelcheck` explorer existed this module *sampled* the
//! protocol: 60 whole-run configurations under random traffic, each with
//! [`InvariantLevel::Full`](noc_sim::invariants::InvariantLevel). It is
//! now a thin policy-aware wrapper over the real thing — breadth-first
//! enumeration of **every** reachable whole-cycle state of the reference
//! small mesh ([`noc_modelcheck::ExploreConfig::small`]) under every
//! interleaving of injections, controller firings and control-epoch gaps.
//!
//! The wrapper's job is the policy adaptation the explorer itself stays
//! agnostic of:
//!
//! * building a per-policy controller closure whose adversarial auxiliary
//!   input stands in for the round-robin rotation phase *and* the
//!   `Down_Up` most-degraded election (every shipped policy is internally
//!   stateless, so one integer covers all of its nondeterminism),
//! * sizing the auxiliary branching (`1` for the oblivious baseline,
//!   `vcs_per_port` for everything else),
//! * wiring [`PolicyKind::idle_on_budget`] into the explorer's
//!   post-decision budget assertion.

use crate::parallel::parallel_map;
use crate::policy::PolicyKind;
use noc_modelcheck::{
    explore, ExploreConfig, ExploreReport, FaultKind, StandardOracle,
};
use noc_sim::view::{GateAction, PortView};
use std::fmt;

/// The exploration depth `model_check_default` (and `scripts/ci.sh`) gate
/// on: deep enough for the reference space to close (`exhausted`) for
/// every checked policy, small enough for CI.
pub const DEFAULT_DEPTH: usize = 28;

/// The policies the model checker exercises: every member of
/// [`PolicyKind::ALL`] plus a k-of-n variant, so the idle-on-budget
/// invariant is checked for a budget other than one.
pub fn checked_policies() -> Vec<PolicyKind> {
    let mut policies = PolicyKind::ALL.to_vec();
    policies.push(PolicyKind::SensorWiseK(2));
    policies
}

/// One cell of the model-check matrix.
#[derive(Debug, Clone)]
pub struct CheckCase {
    /// The gating policy under test.
    pub policy: PolicyKind,
    /// Exploration depth bound in cycles.
    pub depth: usize,
    /// Deduplicate states up to mesh reflection and VC permutation.
    pub symmetry: bool,
}

impl fmt::Display for CheckCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | depth {}{}",
            self.policy,
            self.depth,
            if self.symmetry { " | symmetry" } else { "" }
        )
    }
}

/// The explorer configuration a policy is checked under: the reference
/// small mesh with the policy's idle-on budget and auxiliary branching.
pub fn explore_config_for(policy: PolicyKind, depth: usize, symmetry: bool) -> ExploreConfig {
    let mut cfg = ExploreConfig::small();
    cfg.depth = depth;
    cfg.symmetry = symmetry;
    // The baseline ignores both the cycle counter and the sensor word, so
    // branching its auxiliary input would only re-discover duplicates.
    cfg.aux_choices = if policy == PolicyKind::Baseline {
        1
    } else {
        cfg.noc.vcs_per_port
    };
    cfg.idle_on_budget = policy.idle_on_budget();
    cfg
}

/// Adapts a [`PolicyKind`] to the explorer's controller interface. The
/// auxiliary input is fed to the policy both as its cycle counter (with a
/// rotation period of 1, making the round-robin candidate `aux % vcs`)
/// and as the most-degraded VC id.
pub fn controller_for(policy: PolicyKind) -> impl FnMut(usize, &PortView) -> GateAction {
    let mut built = policy.build(1);
    move |aux, view| built.decide(aux as u64, view, aux)
}

/// The outcome of one model-checked case.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The case that produced this outcome.
    pub case: CheckCase,
    /// The explorer's report for the case.
    pub report: ExploreReport,
}

impl CheckOutcome {
    /// True when the case explored its space without any violation.
    pub fn ok(&self) -> bool {
        self.report.counterexample.is_none()
    }
}

/// A full model-check report.
#[derive(Debug, Clone)]
pub struct ModelCheckReport {
    /// Per-case outcomes, in matrix order.
    pub outcomes: Vec<CheckOutcome>,
}

impl ModelCheckReport {
    /// True when no case found a counterexample.
    pub fn ok(&self) -> bool {
        self.outcomes.iter().all(CheckOutcome::ok)
    }

    /// Total violations across the whole matrix.
    pub fn total_violations(&self) -> u64 {
        self.outcomes
            .iter()
            .filter_map(|o| o.report.counterexample.as_ref())
            .map(|cx| cx.violations.len() as u64)
            .sum()
    }

    /// The outcomes that found a counterexample.
    pub fn failures(&self) -> impl Iterator<Item = &CheckOutcome> {
        self.outcomes.iter().filter(|o| !o.ok())
    }

    /// Renders a human-readable summary (one line per case, then the
    /// counterexample interleaving for every failure).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            let status = if o.ok() { "ok" } else { "FAIL" };
            out.push_str(&format!(
                "{status:>4}  {}  ({})\n",
                o.case,
                o.report.summary()
            ));
        }
        for o in self.failures() {
            let cx = o.report.counterexample.as_ref().expect("failures have one");
            out.push_str(&format!("\ncounterexample for {}:\n  {}\n", o.case, cx.describe()));
            for v in &cx.violations {
                out.push_str(&format!("  {v}\n"));
            }
        }
        out
    }
}

/// The default matrix: every checked policy at [`DEFAULT_DEPTH`], exact
/// (symmetry off, arbiter pointers included in the state).
pub fn default_cases() -> Vec<CheckCase> {
    checked_policies()
        .into_iter()
        .map(|policy| CheckCase {
            policy,
            depth: DEFAULT_DEPTH,
            symmetry: false,
        })
        .collect()
}

/// Explores every case exhaustively, fanned out across `jobs` worker
/// threads (cases are independent explorations).
///
/// # Panics
///
/// Panics if `jobs == 0`.
pub fn model_check(cases: &[CheckCase], jobs: usize) -> ModelCheckReport {
    model_check_with_fault(cases, jobs, None)
}

/// [`model_check`] with an optional protocol fault armed along every
/// explored path — the CI counterexample smoke and the mutation-style
/// test harness enter here.
pub fn model_check_with_fault(
    cases: &[CheckCase],
    jobs: usize,
    fault: Option<FaultKind>,
) -> ModelCheckReport {
    let outcomes = parallel_map(cases, jobs, |_, case| {
        let mut cfg = explore_config_for(case.policy, case.depth, case.symmetry);
        cfg.fault = fault;
        let mut ctrl = controller_for(case.policy);
        let report = explore(&cfg, &mut ctrl, &mut StandardOracle);
        CheckOutcome {
            case: case.clone(),
            report,
        }
    });
    ModelCheckReport { outcomes }
}

/// Runs the default matrix.
pub fn model_check_default(jobs: usize) -> ModelCheckReport {
    model_check(&default_cases(), jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_checked_policy() {
        let cases = default_cases();
        assert_eq!(cases.len(), 5);
        for policy in checked_policies() {
            assert!(cases.iter().any(|c| c.policy == policy));
        }
    }

    #[test]
    fn shallow_exploration_holds_every_invariant_for_every_policy() {
        // A reduced depth keeps the test fast; CI gates the full closure
        // depth via `nbti-noc verify` and the `model_check` bench binary.
        let cases: Vec<CheckCase> = default_cases()
            .into_iter()
            .map(|mut c| {
                c.depth = 6;
                c
            })
            .collect();
        let report = model_check(&cases, 2);
        assert!(
            report.ok(),
            "counterexamples found:\n{}",
            report.render()
        );
        // The exploration actually moved: well past the root state (the
        // baseline's space is the smallest — 65 states at this depth).
        assert!(report.outcomes.iter().all(|o| o.report.unique_states > 50));
    }

    #[test]
    fn an_armed_fault_defeats_every_policy() {
        let cases: Vec<CheckCase> = default_cases()
            .into_iter()
            .map(|mut c| {
                c.depth = 6;
                c
            })
            .collect();
        let report = model_check_with_fault(&cases, 2, Some(FaultKind::DoubleCredit));
        assert!(!report.ok());
        assert_eq!(report.failures().count(), cases.len());
    }

    #[test]
    fn report_renders_one_line_per_case() {
        let cases: Vec<CheckCase> = default_cases()
            .into_iter()
            .take(2)
            .map(|mut c| {
                c.depth = 3;
                c
            })
            .collect();
        let report = model_check(&cases, 1);
        let text = report.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("ok"));
    }

    #[test]
    fn baseline_branches_no_auxiliary_input() {
        assert_eq!(explore_config_for(PolicyKind::Baseline, 4, false).aux_choices, 1);
        assert_eq!(explore_config_for(PolicyKind::SensorWise, 4, false).aux_choices, 2);
        assert_eq!(
            explore_config_for(PolicyKind::SensorWiseK(2), 4, false).idle_on_budget,
            Some(2)
        );
    }
}
