//! The experiment runner: a network, a traffic source, one policy instance
//! per port pair, and NBTI bookkeeping — the reproduction of the paper's
//! simulation flow (HANDS + Garnet + the NBTI sensor library).
//!
//! Per cycle, the runner:
//!
//! 1. pulls this cycle's packets from the traffic source into the NIC
//!    queues,
//! 2. runs `Network::begin_cycle` (credit/flit delivery, BW + RC),
//! 3. for every port pair, builds the [`PortView`], obtains the
//!    most-degraded VC from the port's sensors (`Down_Up` link), asks the
//!    policy for its decision and applies it (`Up_Down` link),
//! 4. runs `Network::finish_cycle` (VA, SA, ST + LT, NIC processing),
//! 5. records each VC's stress/recovery state into the NBTI monitor.
//!
//! After `warmup_cycles`, duty-cycle accounting and network statistics are
//! reset, matching the paper's steady-state sampling.
//!
//! [`PortView`]: noc_sim::view::PortView

use crate::monitor::NbtiMonitor;
use crate::policy::{GatingPolicy, PolicyKind};
use nbti_model::{IdealSensor, LongTermModel, NbtiParams, NbtiSensor, ProcessVariation, Volt};
use noc_sim::config::NocConfig;
use noc_sim::invariants::{InvariantKind, InvariantLevel, InvariantViolation};
use noc_sim::network::Network;
use noc_sim::snapshot::{NetworkSnapshot, SnapshotStateError};
use noc_sim::stats::NetStats;
use noc_sim::types::{Direction, NodeId};
use noc_sim::view::{PortId, PortView, VcStatus};
use noc_telemetry::profclock;
use noc_telemetry::{
    EventKind, MetricsSeries, NullProfiler, Profiler, RecordSink, Sample, Stage, StageProfiler,
    TelemetryReport, TelemetrySpec, TraceEvent, TraceSink, WorkCounters,
};
use noc_traffic::source::{inject_from, TrafficSource};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// How often (in cycles) a cancellable run polls its abort flag. Power of
/// two so the check compiles to a mask; coarse enough to be invisible in
/// profiles, fine enough that a 2×2 mesh aborts within a millisecond.
pub const CANCEL_CHECK_PERIOD: u64 = 1024;

/// Configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Network configuration.
    pub noc: NocConfig,
    /// The gating policy under test.
    pub policy: PolicyKind,
    /// Cycles simulated before measurement starts (duty counters and
    /// network statistics reset at the boundary).
    pub warmup_cycles: u64,
    /// Measured cycles.
    pub measure_cycles: u64,
    /// Seed of the process-variation `Vth` sampling. The paper draws one
    /// sample set per *{architecture, injection rate}* scenario and shares
    /// it across policies — do the same by reusing this seed.
    pub pv_seed: u64,
    /// Rotation period of the rr-no-sensor candidate pointer.
    pub rr_rotation_period: u64,
    /// NBTI model used by trackers and sensors.
    pub model: LongTermModel,
    /// How often (in cycles) the most-degraded election is refreshed from
    /// the sensors. Real embedded NBTI sensors are duty-cycled and sampled
    /// periodically (Singh et al.); degradation moves on millisecond
    /// scales, so the cached `Down_Up` value is exact in between.
    pub md_refresh_period: u64,
    /// The sensor model electing the most degraded VC.
    pub sensor: SensorModel,
    /// How much runtime invariant checking the run performs (protocol
    /// properties per cycle plus the policy's idle-on designation budget
    /// and end-of-run duty closure). `Off` for production sweeps.
    pub invariants: InvariantLevel,
    /// What telemetry the run collects (event trace, periodic metrics).
    /// The default collects nothing and keeps the simulator on the
    /// zero-cost [`noc_telemetry::NullSink`] path.
    pub telemetry: TelemetrySpec,
}

/// Which NBTI sensor model the monitor uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorModel {
    /// Perfect readings (the paper's simulation library).
    Ideal,
    /// Finite resolution, Gaussian read noise and a sampling period —
    /// modelling the Singh et al. 45 nm sensor (used by the
    /// sensor-fidelity ablation).
    Quantized {
        /// Measurement resolution.
        lsb: Volt,
        /// Read-noise standard deviation.
        noise_sigma: Volt,
        /// Sampling period in cycles.
        period: u64,
    },
}

impl ExperimentConfig {
    /// A config with the paper's defaults for the given scenario.
    pub fn new(noc: NocConfig, policy: PolicyKind) -> Self {
        ExperimentConfig {
            noc,
            policy,
            warmup_cycles: 20_000,
            measure_cycles: 200_000,
            pv_seed: 0xDA7E_2013,
            rr_rotation_period: 1,
            model: LongTermModel::calibrated_45nm(),
            md_refresh_period: 64,
            sensor: SensorModel::Ideal,
            invariants: InvariantLevel::Off,
            telemetry: TelemetrySpec::default(),
        }
    }

    /// Overrides the cycle budget.
    pub fn with_cycles(mut self, warmup: u64, measure: u64) -> Self {
        self.warmup_cycles = warmup;
        self.measure_cycles = measure;
        self
    }

    /// Overrides the process-variation seed.
    pub fn with_pv_seed(mut self, seed: u64) -> Self {
        self.pv_seed = seed;
        self
    }

    /// Overrides the invariant-checking level.
    pub fn with_invariants(mut self, level: InvariantLevel) -> Self {
        self.invariants = level;
        self
    }

    /// Overrides the telemetry collection spec.
    pub fn with_telemetry(mut self, spec: TelemetrySpec) -> Self {
        self.telemetry = spec;
        self
    }
}

/// Measured outcome for one buffer port.
#[derive(Debug, Clone, PartialEq)]
pub struct PortResult {
    /// The port.
    pub port: PortId,
    /// Per-VC NBTI-duty-cycle over the measured window, in percent.
    pub duty_percent: Vec<f64>,
    /// The most degraded VC by initial `Vth` (the paper's `MD VC` column).
    pub md_vc: usize,
    /// Per-VC initial threshold voltages (process variation).
    pub initial_vths: Vec<Volt>,
    /// Flits written into this port's buffers during the measured window.
    pub flits_received: u64,
}

impl PortResult {
    /// The duty cycle of the most degraded VC.
    pub fn md_duty(&self) -> f64 {
        self.duty_percent[self.md_vc]
    }
}

/// Outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The policy that ran.
    pub policy: PolicyKind,
    /// Measured cycles (after warm-up).
    pub measured_cycles: u64,
    /// Per-port results, in `Network::port_ids` order.
    pub ports: Vec<PortResult>,
    /// Network statistics over the measured window.
    pub net: NetStats,
    /// Total invariant violations detected over the whole run (protocol
    /// checks, idle-on budget and duty closure). Always zero when the run's
    /// [`ExperimentConfig::invariants`] level is `Off`.
    pub invariant_violations: u64,
    /// Detailed violation records, capped at
    /// [`noc_sim::invariants::MAX_RECORDED_VIOLATIONS`].
    pub violations: Vec<InvariantViolation>,
    /// Deterministic work counters accumulated over the whole run
    /// (simulator pipeline stages plus policy evaluations and sensor
    /// reads). Always populated — counting is unconditional and cheap.
    pub work: WorkCounters,
    /// Harvested telemetry, when [`ExperimentConfig::telemetry`] requested
    /// any.
    pub telemetry: Option<TelemetryReport>,
}

impl ExperimentResult {
    /// The rolling FNV-1a digest of the run's event stream, when the event
    /// trace was recorded. Bit-identical for identical configs regardless
    /// of worker count or record/replay.
    pub fn trace_digest(&self) -> Option<u64> {
        self.telemetry
            .as_ref()
            .and_then(|t| t.trace.as_ref())
            .map(|log| log.digest)
    }
    /// The result for one port.
    pub fn port(&self, port: PortId) -> Option<&PortResult> {
        self.ports.iter().find(|p| p.port == port)
    }

    /// Convenience: the east input port of a router — the port the paper
    /// samples in its synthetic tables.
    ///
    /// # Panics
    ///
    /// Panics if that port does not exist in the topology.
    pub fn east_input(&self, node: NodeId) -> &PortResult {
        self.port(PortId::router_input(node, Direction::East))
            .expect("router has an east input port")
    }

    /// Convenience: the west input port of a router.
    ///
    /// # Panics
    ///
    /// Panics if that port does not exist in the topology.
    pub fn west_input(&self, node: NodeId) -> &PortResult {
        self.port(PortId::router_input(node, Direction::West))
            .expect("router has a west input port")
    }
}

/// Runs one experiment: `cfg.policy` on `cfg.noc` fed by `traffic`.
///
/// # Panics
///
/// Panics if the network configuration is invalid.
pub fn run_experiment(cfg: &ExperimentConfig, traffic: &mut dyn TrafficSource) -> ExperimentResult {
    static NEVER: AtomicBool = AtomicBool::new(false);
    match run_experiment_cancellable(cfg, traffic, &NEVER) {
        Some(result) => result,
        // The flag is never set, so the run always completes.
        None => unreachable!("uncancellable run reported cancellation"),
    }
}

/// Runs one experiment like [`run_experiment`], polling `cancel` every
/// [`CANCEL_CHECK_PERIOD`] cycles. Returns `None` when the flag was
/// observed set — the partial run is discarded, so cancellation can never
/// leak scheduling into results. This is the hook the serving layer uses
/// for job cancellation and wall-clock timeouts: the clock lives with the
/// caller, the engine only ever sees a flag.
///
/// # Panics
///
/// Panics if the network configuration is invalid.
pub fn run_experiment_cancellable(
    cfg: &ExperimentConfig,
    traffic: &mut dyn TrafficSource,
    cancel: &AtomicBool,
) -> Option<ExperimentResult> {
    // Dispatch on the sink type here so the common no-trace path
    // monomorphizes with `NullSink` and keeps zero tracing overhead.
    if cfg.telemetry.trace {
        let sink = RecordSink::with_capacity(cfg.telemetry.trace_capacity);
        let net = Network::with_sink(cfg.noc.clone(), sink).expect("valid NoC configuration");
        dispatch_sensor(cfg, traffic, net, cancel, &mut NullProfiler)
    } else {
        let net = Network::new(cfg.noc.clone()).expect("valid NoC configuration");
        dispatch_sensor(cfg, traffic, net, cancel, &mut NullProfiler)
    }
}

/// Runs one experiment like [`run_experiment`], with per-cycle stage
/// timing recorded into a [`StageProfiler`]. The profiler observes the
/// run without influencing it: results (and trace digests) are
/// bit-identical to an unprofiled run of the same config and traffic.
///
/// # Panics
///
/// Panics if the network configuration is invalid.
pub fn run_experiment_profiled(
    cfg: &ExperimentConfig,
    traffic: &mut dyn TrafficSource,
) -> (ExperimentResult, StageProfiler) {
    static NEVER: AtomicBool = AtomicBool::new(false);
    let mut prof = StageProfiler::new();
    let run = if cfg.telemetry.trace {
        let sink = RecordSink::with_capacity(cfg.telemetry.trace_capacity);
        let net = Network::with_sink(cfg.noc.clone(), sink).expect("valid NoC configuration");
        dispatch_sensor(cfg, traffic, net, &NEVER, &mut prof)
    } else {
        let net = Network::new(cfg.noc.clone()).expect("valid NoC configuration");
        dispatch_sensor(cfg, traffic, net, &NEVER, &mut prof)
    };
    match run {
        Some(result) => (result, prof),
        // The flag is never set, so the run always completes.
        None => unreachable!("uncancellable run reported cancellation"),
    }
}

/// Builds the monitor for the configured sensor model and enters the loop.
fn dispatch_sensor<T: TraceSink, P: Profiler>(
    cfg: &ExperimentConfig,
    traffic: &mut dyn TrafficSource,
    net: Network<T>,
    cancel: &AtomicBool,
    prof: &mut P,
) -> Option<ExperimentResult> {
    let port_ids: Vec<PortId> = net.port_ids().to_vec();
    let mut pv = ProcessVariation::paper_45nm(cfg.pv_seed);
    match cfg.sensor {
        SensorModel::Ideal => {
            let monitor = NbtiMonitor::<IdealSensor>::with_ideal_sensors(
                &port_ids,
                cfg.noc.vcs_per_port,
                &mut pv,
                cfg.model,
            );
            run_loop(cfg, traffic, net, port_ids, monitor, cancel, prof)
        }
        SensorModel::Quantized {
            lsb,
            noise_sigma,
            period,
        } => {
            let monitor = NbtiMonitor::with_quantized_sensors(
                &port_ids,
                cfg.noc.vcs_per_port,
                &mut pv,
                cfg.model,
                lsb,
                noise_sigma,
                period,
                cfg.pv_seed ^ 0x5E45_0B5E,
            );
            run_loop(cfg, traffic, net, port_ids, monitor, cancel, prof)
        }
    }
}

/// Outcome of one campaign epoch: the usual experiment result plus the
/// drained-boundary snapshot and the raw duty totals the campaign ledger
/// integrates into accumulated ΔVth.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// The epoch's measurement, identical in shape to a standalone run.
    pub result: ExperimentResult,
    /// The network state at the epoch boundary, after draining; restore it
    /// into a fresh network to run the next epoch bit-identically.
    pub snapshot: NetworkSnapshot,
    /// Per-port, per-VC `(stress, recovery)` cycle totals over the
    /// measured window, in `port_ids` order — the ledger's ΔVth input.
    pub duty_totals: Vec<Vec<(u64, u64)>>,
    /// Cycles spent draining and settling after the measured window.
    pub drain_cycles: u64,
}

/// Why an epoch run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochError {
    /// The cancel flag was observed set; the partial epoch is discarded.
    Cancelled,
    /// Campaign epochs require [`SensorModel::Ideal`]: quantized sensors
    /// carry mid-stream RNG state that a drained-boundary snapshot cannot
    /// capture, so resuming them would not be bit-identical.
    UnsupportedSensor,
    /// The network did not drain within the cycle limit (e.g. a policy
    /// kept buffers gated and traffic wedged).
    DrainTimeout {
        /// The drain cycle budget that was exhausted.
        limit: u64,
        /// Flits still inside the network when the budget ran out.
        in_network: usize,
        /// Packets still pending injection when the budget ran out.
        pending_injection: usize,
    },
    /// The resume snapshot could not be applied to a fresh network.
    Restore(SnapshotStateError),
    /// The end-of-epoch snapshot could not be captured.
    Snapshot(SnapshotStateError),
}

impl fmt::Display for EpochError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EpochError::Cancelled => write!(f, "epoch cancelled"),
            EpochError::UnsupportedSensor => write!(
                f,
                "campaign epochs require the ideal sensor model \
                 (quantized sensor RNG state cannot be snapshotted)"
            ),
            EpochError::DrainTimeout {
                limit,
                in_network,
                pending_injection,
            } => write!(
                f,
                "network failed to drain within {limit} cycles \
                 ({in_network} flit(s) in network, {pending_injection} packet(s) pending)"
            ),
            EpochError::Restore(e) => write!(f, "resume snapshot rejected: {e}"),
            EpochError::Snapshot(e) => write!(f, "epoch snapshot failed: {e}"),
        }
    }
}

impl std::error::Error for EpochError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EpochError::Restore(e) | EpochError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

/// What `run_loop_inner` hands back to its two callers.
struct LoopOutcome {
    result: ExperimentResult,
    snapshot: Option<NetworkSnapshot>,
    duty_totals: Vec<Vec<(u64, u64)>>,
    drain_cycles: u64,
}

/// Runs one *campaign epoch*: like [`run_experiment`], but the network can
/// start from a drained-boundary [`NetworkSnapshot`] (`resume`), the
/// monitor's per-VC threshold voltages can be injected (`vths`, the aged
/// values carried by the campaign ledger), and after the measured window
/// the network is drained — no further injection, policies still deciding —
/// until quiescent plus a credit-settle margin, then snapshotted.
///
/// Determinism contract: running epochs `0..n` through this entry point,
/// with each epoch resumed from its predecessor's snapshot, is bit-identical
/// to the same epochs run in one process — including the event-trace digest
/// — because the *only* state carried between epochs is the snapshot itself.
///
/// `drain_limit` bounds the post-measurement drain; a network that cannot
/// drain (wedged traffic) yields [`EpochError::DrainTimeout`] instead of
/// spinning forever.
///
/// # Panics
///
/// Panics if the network configuration is invalid or `vths` does not match
/// the port list.
pub fn run_epoch(
    cfg: &ExperimentConfig,
    traffic: &mut dyn TrafficSource,
    resume: Option<&NetworkSnapshot>,
    vths: Option<&[Vec<Volt>]>,
    drain_limit: u64,
) -> Result<EpochOutcome, EpochError> {
    static NEVER: AtomicBool = AtomicBool::new(false);
    run_epoch_cancellable(cfg, traffic, resume, vths, drain_limit, &NEVER)
}

/// [`run_epoch`] with a cooperative cancellation flag, for serving layers
/// that must be able to abandon an epoch without altering any result it
/// would otherwise produce. Cancellation yields [`EpochError::Cancelled`];
/// a run that completes is bit-identical to an uncancellable one.
///
/// # Panics
///
/// Panics if the network configuration is invalid or `vths` does not match
/// the port list.
pub fn run_epoch_cancellable(
    cfg: &ExperimentConfig,
    traffic: &mut dyn TrafficSource,
    resume: Option<&NetworkSnapshot>,
    vths: Option<&[Vec<Volt>]>,
    drain_limit: u64,
    cancel: &AtomicBool,
) -> Result<EpochOutcome, EpochError> {
    if !matches!(cfg.sensor, SensorModel::Ideal) {
        return Err(EpochError::UnsupportedSensor);
    }
    if cfg.telemetry.trace {
        let sink = RecordSink::with_capacity(cfg.telemetry.trace_capacity);
        let net = Network::with_sink(cfg.noc.clone(), sink).expect("valid NoC configuration");
        run_epoch_sink(cfg, traffic, net, resume, vths, drain_limit, cancel)
    } else {
        let net = Network::new(cfg.noc.clone()).expect("valid NoC configuration");
        run_epoch_sink(cfg, traffic, net, resume, vths, drain_limit, cancel)
    }
}

fn run_epoch_sink<T: TraceSink>(
    cfg: &ExperimentConfig,
    traffic: &mut dyn TrafficSource,
    mut net: Network<T>,
    resume: Option<&NetworkSnapshot>,
    vths: Option<&[Vec<Volt>]>,
    drain_limit: u64,
    cancel: &AtomicBool,
) -> Result<EpochOutcome, EpochError> {
    if let Some(snap) = resume {
        net.restore(snap).map_err(EpochError::Restore)?;
        if cfg.warmup_cycles == 0 {
            // No warm-up boundary will reset the measurement window, so
            // shed the restored cumulative stats here: the epoch's result
            // must cover the epoch, not the whole campaign so far.
            net.reset_stats();
        }
    }
    let port_ids: Vec<PortId> = net.port_ids().to_vec();
    let monitor = match vths {
        Some(vths) => NbtiMonitor::<IdealSensor>::with_ideal_sensors_from_vths(
            &port_ids, vths, cfg.model,
        ),
        None => {
            let mut pv = ProcessVariation::paper_45nm(cfg.pv_seed);
            NbtiMonitor::<IdealSensor>::with_ideal_sensors(
                &port_ids,
                cfg.noc.vcs_per_port,
                &mut pv,
                cfg.model,
            )
        }
    };
    let out = run_loop_inner(
        cfg,
        traffic,
        net,
        port_ids,
        monitor,
        cancel,
        Some(drain_limit),
        &mut NullProfiler,
    )?;
    let snapshot = out
        .snapshot
        .expect("drain was requested, so a snapshot is present");
    Ok(EpochOutcome {
        result: out.result,
        snapshot,
        duty_totals: out.duty_totals,
        drain_cycles: out.drain_cycles,
    })
}

/// The per-cycle loop, generic over the sensor model, the trace sink and
/// the stage profiler.
fn run_loop<S: NbtiSensor, T: TraceSink, P: Profiler>(
    cfg: &ExperimentConfig,
    traffic: &mut dyn TrafficSource,
    net: Network<T>,
    port_ids: Vec<PortId>,
    monitor: NbtiMonitor<S>,
    cancel: &AtomicBool,
    prof: &mut P,
) -> Option<ExperimentResult> {
    match run_loop_inner(cfg, traffic, net, port_ids, monitor, cancel, None, prof) {
        Ok(out) => Some(out.result),
        Err(EpochError::Cancelled) => None,
        // Drain/snapshot errors require `drain = Some(..)`.
        Err(e) => unreachable!("non-epoch run cannot fail: {e}"),
    }
}

/// The loop shared by standalone runs and campaign epochs. The `step`
/// counter is *run-local* (controls warm-up, sampling, refresh and cancel
/// cadence); the network's own cycle counter — which continues across
/// resumed epochs — timestamps trace events and drives policy rotation.
/// For a fresh network the two coincide, so standalone runs are
/// bit-identical to what this loop produced before epochs existed.
///
/// When `drain` is `Some(limit)`, the measured window is followed by a
/// drain phase: injection and NBTI recording stop, policies keep deciding,
/// and the loop steps until the network is quiescent plus a credit-settle
/// margin (bounded by `limit`), then captures a snapshot.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn run_loop_inner<S: NbtiSensor, T: TraceSink, P: Profiler>(
    cfg: &ExperimentConfig,
    traffic: &mut dyn TrafficSource,
    mut net: Network<T>,
    port_ids: Vec<PortId>,
    mut monitor: NbtiMonitor<S>,
    cancel: &AtomicBool,
    drain: Option<u64>,
    prof: &mut P,
) -> Result<LoopOutcome, EpochError> {
    let mut policies: Vec<Box<dyn GatingPolicy>> = port_ids
        .iter()
        .map(|_| cfg.policy.build(cfg.rr_rotation_period))
        .collect();
    let uses_sensors = cfg.policy.uses_sensors();
    net.set_invariant_level(cfg.invariants);
    let budget = if cfg.invariants.is_enabled() {
        cfg.policy.idle_on_budget()
    } else {
        None
    };
    let mut warmup_violations = 0u64;

    let total = cfg.warmup_cycles + cfg.measure_cycles;
    let mut flits_at_warmup: BTreeMap<PortId, u64> = BTreeMap::new();
    if cfg.warmup_cycles == 0 {
        // The warm-up boundary never fires; pin the per-port flit baseline
        // at the start instead (zero for fresh networks, the restored
        // lifetime counters for resumed epochs).
        for &pid in &port_ids {
            flits_at_warmup.insert(pid, net.flits_received(pid));
        }
    }
    let md_period = cfg.md_refresh_period.max(1);
    let mut md_cache: Vec<usize> = vec![0; port_ids.len()];
    // Engine-level work counters (the network counts its own pipeline
    // stages); summed into the result at the end.
    let mut engine_work = WorkCounters::default();
    let vcs_per_port = cfg.noc.vcs_per_port as u64;
    let sample_period = cfg.telemetry.sample_period;
    let mut series = (sample_period > 0).then(|| {
        MetricsSeries::new(
            sample_period,
            port_ids.iter().map(ToString::to_string).collect(),
        )
    });
    let mut churn_at_sample: Vec<u64> = vec![0; port_ids.len()];
    // Scratch reused every cycle so the policy and monitor loops never
    // allocate once capacities settle.
    let mut view = PortView {
        port: PortId::nic_eject(NodeId(0)),
        vc_status: Vec::new(),
        new_traffic: false,
    };
    let mut statuses: Vec<VcStatus> = Vec::new();
    for step in 0..total {
        if step % CANCEL_CHECK_PERIOD == 0 && cancel.load(Ordering::Relaxed) {
            return Err(EpochError::Cancelled);
        }
        let now = net.cycle();
        if uses_sensors && step % md_period == 0 {
            for (i, &pid) in port_ids.iter().enumerate() {
                let md = monitor.most_degraded(pid);
                // One sensor sample per VC per election (the `Down_Up`
                // link reads the whole port).
                engine_work.sensor_reads += vcs_per_port;
                if T::ACTIVE && (step == 0 || md != md_cache[i]) {
                    net.trace_mut().emit(TraceEvent {
                        cycle: now,
                        kind: EventKind::DownUp {
                            port: pid.into(),
                            md_vc: md as u8,
                        },
                    });
                }
                md_cache[i] = md;
            }
        }
        inject_from(traffic, &mut net);
        net.begin_cycle_with(prof);
        let t_ctl = if P::ENABLED { Some(profclock::now()) } else { None };
        for (i, &pid) in port_ids.iter().enumerate() {
            net.fill_port_view(pid, &mut view);
            let action = policies[i].decide(now, &view, md_cache[i]);
            engine_work.policy_evaluations += 1;
            net.apply_gate(pid, action);
        }
        if let Some(budget) = budget {
            // The designation property holds exactly at this point: after
            // every gate decision is applied, before allocation runs.
            for &pid in &port_ids {
                net.check_idle_on_budget(pid, budget);
            }
        }
        if let Some(t) = t_ctl {
            prof.record(Stage::Controller, profclock::ns_since(t));
        }
        net.finish_cycle_with(prof);
        for &pid in &port_ids {
            net.vc_statuses_into(pid, &mut statuses);
            monitor.record_cycle(pid, &statuses);
        }
        if let Some(series) = series.as_mut() {
            if (step + 1) % sample_period == 0 {
                for (i, &pid) in port_ids.iter().enumerate() {
                    let duty = monitor.duty_cycles_percent(pid);
                    let churn_total = net.gate_transitions(pid);
                    series.push(Sample {
                        cycle: net.cycle(),
                        port: i as u32,
                        duty_percent: duty.iter().sum::<f64>() / duty.len() as f64,
                        occupancy: net.port_occupancy(pid) as u32,
                        churn: churn_total - churn_at_sample[i],
                        powered_vcs: net.powered_vc_count(pid) as u32,
                        delta_vth_mv: monitor
                            .projected_delta_vth_mv(pid, NbtiParams::TEN_YEARS_S),
                    });
                    churn_at_sample[i] = churn_total;
                }
            }
        }
        if step + 1 == cfg.warmup_cycles {
            monitor.reset_duty();
            // Stats reset zeroes the violation counter; fold the warm-up era
            // into the whole-run total reported on the result.
            warmup_violations = net.stats().invariant_violations;
            net.reset_stats();
            for &pid in &port_ids {
                flits_at_warmup.insert(pid, net.flits_received(pid));
            }
        }
    }

    // Drain phase (epochs only): stop injecting and recording, keep the
    // policies deciding — gating state keeps evolving deterministically and
    // its events stay in the digest-covered trace — until the network is
    // quiescent and the credit loops have had time to close.
    let mut drain_cycles = 0u64;
    if let Some(limit) = drain {
        let settle = cfg.noc.credit_latency + cfg.noc.link_latency + 2;
        let mut settled = 0u64;
        loop {
            if net.is_quiescent() {
                if settled == settle {
                    break;
                }
                settled += 1;
            } else {
                settled = 0;
            }
            if drain_cycles == limit {
                return Err(EpochError::DrainTimeout {
                    limit,
                    in_network: net.flits_in_network(),
                    pending_injection: net.flits_pending_injection(),
                });
            }
            let step = total + drain_cycles;
            let now = net.cycle();
            if uses_sensors && step.is_multiple_of(md_period) {
                for (i, &pid) in port_ids.iter().enumerate() {
                    let md = monitor.most_degraded(pid);
                    engine_work.sensor_reads += vcs_per_port;
                    if T::ACTIVE && md != md_cache[i] {
                        net.trace_mut().emit(TraceEvent {
                            cycle: now,
                            kind: EventKind::DownUp {
                                port: pid.into(),
                                md_vc: md as u8,
                            },
                        });
                    }
                    md_cache[i] = md;
                }
            }
            net.begin_cycle();
            for (i, &pid) in port_ids.iter().enumerate() {
                net.fill_port_view(pid, &mut view);
                let action = policies[i].decide(now, &view, md_cache[i]);
                engine_work.policy_evaluations += 1;
                net.apply_gate(pid, action);
            }
            if let Some(budget) = budget {
                for &pid in &port_ids {
                    net.check_idle_on_budget(pid, budget);
                }
            }
            net.finish_cycle();
            drain_cycles += 1;
        }
    }

    // Duty closure (paper §III-A): every monitored cycle is either stress
    // or recovery, so per VC the two must sum to the measured window. The
    // drain phase records nothing, so the closure holds for epochs too.
    let mut violations = net.take_violations();
    let mut duty_violations = 0u64;
    if cfg.invariants.is_enabled() {
        for &pid in &port_ids {
            for (vc, (stress, recovery)) in monitor.duty_totals(pid).iter().enumerate() {
                if stress + recovery != cfg.measure_cycles {
                    duty_violations += 1;
                    violations.push(InvariantViolation {
                        cycle: total,
                        kind: InvariantKind::DutyClosure,
                        detail: format!(
                            "port {pid} vc{vc}: {stress} stress + {recovery} recovery cycles \
                             != {} measured",
                            cfg.measure_cycles
                        ),
                    });
                }
            }
        }
    }
    let invariant_violations =
        warmup_violations + net.stats().invariant_violations + duty_violations;

    // Capture the boundary snapshot after violations are drained (capture
    // refuses while any are pending) and before telemetry harvest.
    let snapshot = if drain.is_some() {
        Some(net.snapshot().map_err(EpochError::Snapshot)?)
    } else {
        None
    };
    let duty_totals = if drain.is_some() {
        port_ids.iter().map(|&pid| monitor.duty_totals(pid)).collect()
    } else {
        Vec::new()
    };

    let ports = port_ids
        .iter()
        .map(|&pid| PortResult {
            port: pid,
            duty_percent: monitor.duty_cycles_percent(pid),
            md_vc: monitor.most_degraded_initial(pid),
            initial_vths: monitor.initial_vths(pid),
            flits_received: net.flits_received(pid)
                - flits_at_warmup.get(&pid).copied().unwrap_or(0),
        })
        .collect();
    let telemetry = cfg.telemetry.enabled().then(|| TelemetryReport {
        trace: net.trace_mut().harvest(),
        series,
    });
    let result = ExperimentResult {
        policy: cfg.policy,
        measured_cycles: cfg.measure_cycles,
        ports,
        net: *net.stats(),
        invariant_violations,
        violations,
        work: net.work_counters() + engine_work,
        telemetry,
    };
    Ok(LoopOutcome {
        result,
        snapshot,
        duty_totals,
        drain_cycles,
    })
}

/// Load calibration between the paper's Garnet/GEM5 setup and this
/// simulator.
///
/// Our router sustains close to the theoretical one-flit-per-cycle link
/// throughput (the credit loop exactly matches the 4-flit buffer depth),
/// while the paper's full-system Garnet configuration saturates at a much
/// lower nominal injection rate — its reported NBTI-duty-cycles (e.g. 56 %
/// on a 4-core mesh at 0.3 flits/cycle/port with 2 VCs) correspond to
/// heavy VC contention. To compare the policies at the *same congestion
/// levels* as the paper rather than at the same raw rates,
/// [`SyntheticScenario::effective_rate`] multiplies the nominal rate by
/// this factor before injection; drive `run_experiment` with your own
/// [`noc_traffic::synthetic::SyntheticTraffic`] for uncalibrated rates.
/// The factor is derived in EXPERIMENTS.md from the gap-versus-load sweep
/// (`gap_sweep` binary).
pub const LOAD_CALIBRATION: f64 = 2.5;

/// One of the paper's synthetic scenarios: a square mesh under uniform
/// traffic at a fixed injection rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticScenario {
    /// Core count (4 or 16 in the paper).
    pub cores: usize,
    /// VCs per input port (2 or 4 in the paper).
    pub vcs: usize,
    /// Nominal injection rate in flits/cycle/port (0.1, 0.2, 0.3 in the
    /// paper).
    pub injection_rate: f64,
}

impl SyntheticScenario {
    /// The congestion-calibrated rate actually injected
    /// (`injection_rate × LOAD_CALIBRATION`).
    pub fn effective_rate(&self) -> f64 {
        self.injection_rate * LOAD_CALIBRATION
    }
    /// The scenario name in the paper's format, e.g. `4core-inj0.10`.
    pub fn name(&self) -> String {
        format!("{}core-inj{:.2}", self.cores, self.injection_rate)
    }

    /// A deterministic per-scenario seed: identical across policies, as in
    /// the paper ("a single set of PMOS Vth values for each pair
    /// {simulated architecture, traffic injection}").
    pub fn seed(&self) -> u64 {
        let rate_milli = (self.injection_rate * 1000.0).round() as u64;
        (self.cores as u64) << 32 | (self.vcs as u64) << 16 | rate_milli
    }

    /// The scenario as a self-contained [`ExperimentJob`], ready for the
    /// parallel engine: the process-variation seed is the scenario seed
    /// (shared across policies, as in the paper) and the traffic stream is
    /// seeded independently of it.
    ///
    /// [`ExperimentJob`]: crate::parallel::ExperimentJob
    pub fn job(
        &self,
        policy: PolicyKind,
        warmup: u64,
        measure: u64,
    ) -> crate::parallel::ExperimentJob {
        crate::parallel::ExperimentJob {
            cfg: ExperimentConfig::new(NocConfig::paper_synthetic(self.cores, self.vcs), policy)
                .with_cycles(warmup, measure)
                .with_pv_seed(self.seed()),
            traffic: crate::parallel::TrafficSpec::Uniform {
                rate: self.effective_rate(),
                seed: self.seed() ^ 0x7261_6666,
            },
        }
    }

    /// Runs the scenario under `policy`.
    pub fn run(&self, policy: PolicyKind, warmup: u64, measure: u64) -> ExperimentResult {
        self.job(policy, warmup, measure).run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_traffic::synthetic::SyntheticTraffic;

    fn quick(policy: PolicyKind, rate: f64) -> ExperimentResult {
        SyntheticScenario {
            cores: 4,
            vcs: 2,
            injection_rate: rate,
        }
        .run(policy, 2_000, 10_000)
    }

    #[test]
    fn baseline_duty_is_100_percent_everywhere() {
        let r = quick(PolicyKind::Baseline, 0.1);
        for port in &r.ports {
            for &d in &port.duty_percent {
                assert!((d - 100.0).abs() < 1e-9, "baseline duty {d}");
            }
        }
    }

    #[test]
    fn gating_policies_deliver_traffic() {
        for policy in PolicyKind::ALL {
            let r = quick(policy, 0.1);
            assert!(
                r.net.packets_ejected > 50,
                "{policy} delivered only {} packets",
                r.net.packets_ejected
            );
        }
    }

    #[test]
    fn rr_duty_is_roughly_uniform_across_vcs() {
        let r = quick(PolicyKind::RrNoSensor, 0.2);
        let east0 = r.east_input(NodeId(0));
        let d = &east0.duty_percent;
        assert!(
            (d[0] - d[1]).abs() < 6.0,
            "rr should equalize VCs, got {d:?}"
        );
        assert!(d[0] > 1.0 && d[0] < 100.0, "rr duty {d:?}");
    }

    #[test]
    fn sensor_wise_protects_the_most_degraded_vc() {
        let rr = quick(PolicyKind::RrNoSensor, 0.1);
        let sw = quick(PolicyKind::SensorWise, 0.1);
        let port = PortId::router_input(NodeId(0), Direction::East);
        let rrp = rr.port(port).unwrap();
        let swp = sw.port(port).unwrap();
        assert_eq!(rrp.md_vc, swp.md_vc, "same PV seed, same MD VC");
        assert!(
            swp.md_duty() < rrp.md_duty(),
            "sensor-wise MD duty {} must beat rr {}",
            swp.md_duty(),
            rrp.md_duty()
        );
    }

    #[test]
    fn no_traffic_variant_pins_one_vc_near_100_percent() {
        let r = quick(PolicyKind::SensorWiseNoTraffic, 0.1);
        let east0 = r.east_input(NodeId(0));
        let max = east0.duty_percent.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max > 95.0,
            "expected a pinned VC, duty = {:?}",
            east0.duty_percent
        );
    }

    #[test]
    fn same_scenario_same_md_across_policies() {
        let a = quick(PolicyKind::RrNoSensor, 0.3);
        let b = quick(PolicyKind::SensorWiseNoTraffic, 0.3);
        let c = quick(PolicyKind::SensorWise, 0.3);
        for ((pa, pb), pc) in a.ports.iter().zip(&b.ports).zip(&c.ports) {
            assert_eq!(pa.md_vc, pb.md_vc);
            assert_eq!(pa.md_vc, pc.md_vc);
            assert_eq!(pa.initial_vths, pc.initial_vths);
        }
    }

    #[test]
    fn duty_grows_with_injection_rate_under_rr() {
        let low = quick(PolicyKind::RrNoSensor, 0.1);
        let high = quick(PolicyKind::RrNoSensor, 0.3);
        let l = low.east_input(NodeId(0)).duty_percent[0];
        let h = high.east_input(NodeId(0)).duty_percent[0];
        assert!(h > l, "rr duty must rise with load: {l} vs {h}");
    }

    #[test]
    fn run_experiment_accepts_external_traffic() {
        let noc = NocConfig::paper_synthetic(4, 2);
        let mesh = noc_sim::topology::Mesh2D::new(2, 2);
        let mut traffic = SyntheticTraffic::uniform(mesh, 0.05, 5, 1);
        let cfg = ExperimentConfig::new(noc, PolicyKind::SensorWise).with_cycles(500, 2_000);
        let r = run_experiment(&cfg, &mut traffic);
        assert_eq!(r.measured_cycles, 2_000);
        assert_eq!(r.ports.len(), 16);
    }

    #[test]
    fn quantized_sensors_run_through_the_loop() {
        let noc = NocConfig::paper_synthetic(4, 2);
        let mesh = noc_sim::topology::Mesh2D::new(2, 2);
        let mut traffic = SyntheticTraffic::uniform(mesh, 0.2, 5, 9);
        let cfg = ExperimentConfig {
            sensor: SensorModel::Quantized {
                lsb: Volt::from_millivolts(0.5),
                noise_sigma: Volt::from_millivolts(0.25),
                period: 1_000,
            },
            ..ExperimentConfig::new(noc, PolicyKind::SensorWise).with_cycles(500, 5_000)
        };
        let r = run_experiment(&cfg, &mut traffic);
        assert!(r.net.packets_ejected > 0);
        // A near-ideal sensor still shields the MD VC.
        let port = r.east_input(NodeId(0));
        let min = port.duty_percent.iter().cloned().fold(f64::MAX, f64::min);
        assert!((port.md_duty() - min).abs() < 10.0);
    }

    #[test]
    fn sensor_wise_k_runs_and_orders_by_k() {
        let run_k = |k: u8| {
            SyntheticScenario {
                cores: 4,
                vcs: 4,
                injection_rate: 0.2,
            }
            .run(PolicyKind::SensorWiseK(k), 1_000, 10_000)
        };
        let k1 = run_k(1);
        let k3 = run_k(3);
        let sum =
            |r: &ExperimentResult| -> f64 { r.east_input(NodeId(0)).duty_percent.iter().sum() };
        assert!(
            sum(&k1) < sum(&k3),
            "more designated VCs must mean more total stress: {} vs {}",
            sum(&k1),
            sum(&k3)
        );
        assert!(k1.net.packets_ejected > 100);
        assert!(k3.net.packets_ejected > 100);
    }

    #[test]
    fn telemetry_collects_trace_and_series() {
        let noc = NocConfig::paper_synthetic(4, 2);
        let mesh = noc_sim::topology::Mesh2D::new(2, 2);
        let mut traffic = SyntheticTraffic::uniform(mesh, 0.1, 5, 3);
        let cfg = ExperimentConfig::new(noc, PolicyKind::SensorWise)
            .with_cycles(200, 1_000)
            .with_telemetry(TelemetrySpec {
                trace: true,
                trace_capacity: 0,
                sample_period: 200,
            });
        let r = run_experiment(&cfg, &mut traffic);
        let t = r.telemetry.as_ref().expect("telemetry requested");
        let log = t.trace.as_ref().expect("trace recorded");
        assert!(log.total > 0, "a gating run emits events");
        assert_eq!(r.trace_digest(), Some(log.digest));
        let series = t.series.as_ref().expect("series recorded");
        // (200 + 1000) / 200 sampling points, one row per port.
        assert_eq!(series.len(), 6 * 16);
        assert_eq!(r.work.policy_evaluations, 1_200 * 16);
        assert!(r.work.sensor_reads > 0);
    }

    #[test]
    fn telemetry_off_is_bit_identical_and_digest_is_stable() {
        let run = |spec: TelemetrySpec| {
            let noc = NocConfig::paper_synthetic(4, 2);
            let mesh = noc_sim::topology::Mesh2D::new(2, 2);
            let mut traffic = SyntheticTraffic::uniform(mesh, 0.15, 5, 7);
            let cfg = ExperimentConfig::new(noc, PolicyKind::SensorWise)
                .with_cycles(200, 2_000)
                .with_telemetry(spec);
            run_experiment(&cfg, &mut traffic)
        };
        let plain = run(TelemetrySpec::default());
        let traced = run(TelemetrySpec {
            trace: true,
            trace_capacity: 64,
            sample_period: 0,
        });
        let again = run(TelemetrySpec {
            trace: true,
            trace_capacity: 0,
            sample_period: 500,
        });
        assert!(plain.telemetry.is_none());
        assert_eq!(plain.net, traced.net, "tracing must not perturb the run");
        assert_eq!(plain.ports, traced.ports);
        assert_eq!(plain.work, traced.work);
        // Whole-stream digest is independent of ring capacity and sampler.
        assert_eq!(traced.trace_digest(), again.trace_digest());
        assert!(traced.trace_digest().is_some());
    }

    #[test]
    fn profiled_run_is_bit_identical_and_covers_every_stage() {
        let cfg = || {
            let noc = NocConfig::paper_synthetic(4, 2);
            ExperimentConfig::new(noc, PolicyKind::SensorWise)
                .with_cycles(200, 2_000)
                .with_telemetry(TelemetrySpec {
                    trace: true,
                    trace_capacity: 64,
                    sample_period: 0,
                })
        };
        let traffic = || {
            let mesh = noc_sim::topology::Mesh2D::new(2, 2);
            SyntheticTraffic::uniform(mesh, 0.15, 5, 7)
        };
        let plain = run_experiment(&cfg(), &mut traffic());
        let (profiled, prof) = run_experiment_profiled(&cfg(), &mut traffic());
        // Timing is an observation, never an input.
        assert_eq!(plain.net, profiled.net, "profiling must not perturb the run");
        assert_eq!(plain.ports, profiled.ports);
        assert_eq!(plain.work, profiled.work);
        assert_eq!(plain.trace_digest(), profiled.trace_digest());
        for s in Stage::ALL {
            assert_eq!(prof.stage(s).count(), 2_200, "{} once per cycle", s.name());
        }
        let report = prof.report();
        assert!(report.to_string().contains("begin_cycle"));
    }

    #[test]
    fn cancellable_run_completes_when_never_cancelled_and_aborts_when_set() {
        let noc = NocConfig::paper_synthetic(4, 2);
        let mesh = noc_sim::topology::Mesh2D::new(2, 2);
        let mut traffic = SyntheticTraffic::uniform(mesh, 0.1, 5, 3);
        let cfg = ExperimentConfig::new(noc, PolicyKind::SensorWise).with_cycles(200, 2_000);
        let never = AtomicBool::new(false);
        let full = run_experiment_cancellable(&cfg, &mut traffic, &never)
            .expect("unset flag never cancels");
        // Same config through the plain entry point: byte-identical.
        let mesh = noc_sim::topology::Mesh2D::new(2, 2);
        let mut traffic = SyntheticTraffic::uniform(mesh, 0.1, 5, 3);
        let plain = run_experiment(&cfg, &mut traffic);
        assert_eq!(full.net, plain.net);
        assert_eq!(full.ports, plain.ports);

        let mesh = noc_sim::topology::Mesh2D::new(2, 2);
        let mut traffic = SyntheticTraffic::uniform(mesh, 0.1, 5, 3);
        let already = AtomicBool::new(true);
        assert!(run_experiment_cancellable(&cfg, &mut traffic, &already).is_none());
    }

    fn epoch_cfg(policy: PolicyKind) -> ExperimentConfig {
        ExperimentConfig::new(NocConfig::paper_synthetic(4, 2), policy)
            .with_cycles(500, 4_000)
            .with_invariants(InvariantLevel::Full)
            .with_telemetry(TelemetrySpec {
                trace: true,
                trace_capacity: 64,
                sample_period: 0,
            })
    }

    fn epoch_traffic(seed: u64) -> SyntheticTraffic {
        let mesh = noc_sim::topology::Mesh2D::new(2, 2);
        SyntheticTraffic::uniform(mesh, 0.15, 5, seed)
    }

    #[test]
    fn epochs_chain_and_are_deterministic() {
        let cfg = epoch_cfg(PolicyKind::SensorWise);
        let run_two = || {
            let e0 = run_epoch(&cfg, &mut epoch_traffic(11), None, None, 100_000)
                .expect("epoch 0 runs");
            let vths: Vec<Vec<Volt>> =
                e0.result.ports.iter().map(|p| p.initial_vths.clone()).collect();
            let e1 = run_epoch(
                &cfg,
                &mut epoch_traffic(12),
                Some(&e0.snapshot),
                Some(&vths),
                100_000,
            )
            .expect("epoch 1 resumes");
            (e0, e1)
        };
        let (a0, a1) = run_two();
        let (b0, b1) = run_two();
        // Bit-identical across repetitions, including the event digests.
        assert_eq!(a0.result.trace_digest(), b0.result.trace_digest());
        assert_eq!(a1.result.trace_digest(), b1.result.trace_digest());
        assert_eq!(a0.snapshot, b0.snapshot);
        assert_eq!(a1.snapshot, b1.snapshot);
        assert_eq!(a1.result.net, b1.result.net);
        // The boundary really is past the measured window and drained.
        assert!(a0.snapshot.cycle >= 4_500);
        assert!(a1.snapshot.cycle > a0.snapshot.cycle);
        assert_eq!(a0.result.invariant_violations, 0);
        assert_eq!(a1.result.invariant_violations, 0);
        // Duty closure holds per epoch: drain cycles are not recorded.
        for port in &a1.duty_totals {
            for &(stress, recovery) in port {
                assert_eq!(stress + recovery, 4_000);
            }
        }
        assert!(a0.drain_cycles > 0);
    }

    #[test]
    fn epoch_zero_matches_standalone_measurement() {
        // Epoch 0 (fresh network, PV-drawn Vths) must measure exactly what
        // run_experiment measures — the drain happens after the window.
        let cfg = epoch_cfg(PolicyKind::RrNoSensor);
        let standalone = run_experiment(&cfg, &mut epoch_traffic(21));
        let epoch = run_epoch(&cfg, &mut epoch_traffic(21), None, None, 100_000)
            .expect("epoch runs");
        // The drain delivers in-flight flits (so flits_received can grow)
        // but records no duty and injects nothing.
        for (s, e) in standalone.ports.iter().zip(&epoch.result.ports) {
            assert_eq!(s.port, e.port);
            assert_eq!(s.duty_percent, e.duty_percent);
            assert_eq!(s.md_vc, e.md_vc);
            assert_eq!(s.initial_vths, e.initial_vths);
            assert!(e.flits_received >= s.flits_received);
        }
        assert_eq!(
            standalone.net.packets_injected,
            epoch.result.net.packets_injected
        );
    }

    #[test]
    fn epoch_rejects_quantized_sensors() {
        let cfg = ExperimentConfig {
            sensor: SensorModel::Quantized {
                lsb: Volt::from_millivolts(0.5),
                noise_sigma: Volt::from_millivolts(0.25),
                period: 1_000,
            },
            ..epoch_cfg(PolicyKind::SensorWise)
        };
        let err = run_epoch(&cfg, &mut epoch_traffic(3), None, None, 1_000)
            .expect_err("quantized sensors cannot be snapshotted");
        assert_eq!(err, EpochError::UnsupportedSensor);
    }

    #[test]
    fn epoch_rejects_wrong_shape_resume() {
        let cfg = epoch_cfg(PolicyKind::SensorWise);
        let e0 = run_epoch(&cfg, &mut epoch_traffic(5), None, None, 100_000).unwrap();
        let bigger = ExperimentConfig::new(
            NocConfig::paper_synthetic(16, 2),
            PolicyKind::SensorWise,
        )
        .with_cycles(100, 500);
        let mesh = noc_sim::topology::Mesh2D::new(4, 4);
        let mut traffic = SyntheticTraffic::uniform(mesh, 0.1, 5, 1);
        let err = run_epoch(&bigger, &mut traffic, Some(&e0.snapshot), None, 1_000)
            .expect_err("shape mismatch must be rejected");
        assert!(matches!(err, EpochError::Restore(_)), "{err}");
    }

    #[test]
    fn scenario_names_match_paper_format() {
        let s = SyntheticScenario {
            cores: 16,
            vcs: 4,
            injection_rate: 0.1,
        };
        assert_eq!(s.name(), "16core-inj0.10");
        assert_ne!(
            s.seed(),
            SyntheticScenario {
                cores: 16,
                vcs: 4,
                injection_rate: 0.2
            }
            .seed()
        );
    }
}
