//! The wire codec: one JSON schema for experiment specs and results.
//!
//! Every front-end that ships an experiment across a process boundary —
//! the `nbti-noc run --json` output, the `noc-service` HTTP API, the
//! `submit` load generator and the service throughput bench — encodes and
//! decodes through this module, so there is exactly one schema and the
//! serving path can be cross-checked bit-for-bit against a local run.
//!
//! Two wire types:
//!
//! * a **spec** is a complete, self-contained [`ExperimentJob`] — network
//!   configuration, policy, cycle budget, seeds, invariant level and
//!   telemetry options. Decoding validates the configuration, so a spec
//!   accepted by [`spec_from_json`] always runs.
//! * a **result** is the [`WireResult`] view of an [`ExperimentResult`]:
//!   delivery counters, latency percentiles, invariant-violation counts,
//!   the event-stream digest (the determinism witness) and the per-port
//!   duty table.
//!
//! The JSON layer itself is a minimal recursive-descent parser over a
//! [`JsonValue`] tree — the build environment has no registry access, so
//! no external serializer is available. Objects preserve insertion order
//! (a `Vec` of pairs, not a hash map) to keep encodings deterministic.
//!
//! The spec schema covers the servable subset of the experiment space:
//! uniform/patterned synthetic traffic and the ideal sensor model.
//! Benchmark-mix traffic and quantized sensors are local-only experiment
//! features; encoding them reports [`CodecError`] rather than silently
//! dropping fields.

use crate::experiment::{ExperimentConfig, ExperimentResult, SensorModel};
use crate::parallel::{ExperimentJob, TrafficSpec};
use crate::policy::PolicyKind;
use noc_sim::config::{NocConfig, TopologyKind};
use noc_sim::invariants::InvariantLevel;
use noc_sim::routing::RoutingAlgorithm;
use noc_telemetry::TelemetrySpec;
use noc_traffic::pattern::DestinationPattern;
use std::fmt;

/// Error produced when encoding or decoding wire JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(String);

impl CodecError {
    /// A codec error with the given message (crate-internal construction,
    /// also used by the cache/sweep layers for schema-level problems).
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        CodecError(msg.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// A parsed JSON value. Numbers keep their raw source text so 64-bit
/// integers (seeds, digests, cycle counts) round-trip exactly instead of
/// being squeezed through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else).
    ///
    /// # Errors
    ///
    /// Returns an error describing the first syntax problem.
    pub fn parse(text: &str) -> Result<JsonValue, CodecError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(CodecError::new(format!(
                "trailing garbage at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }

    /// Object field lookup (first match), or `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64` (exact; rejects floats and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), CodecError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(CodecError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, CodecError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.eat_lit("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_lit("null") => Ok(JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(CodecError::new(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<JsonValue, CodecError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(CodecError::new(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, CodecError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(CodecError::new(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, CodecError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(CodecError::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(CodecError::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| CodecError::new("bad \\u escape"))?;
                            self.pos += 4;
                            // BMP only; unpaired surrogates map to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(CodecError::new(format!(
                                "bad escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-walk UTF-8: step back and take the whole char.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| CodecError::new("invalid UTF-8 in string"))?;
                    let Some(c) = s.chars().next() else {
                        return Err(CodecError::new("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, CodecError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| CodecError::new("invalid number"))?;
        if raw.parse::<f64>().is_err() {
            return Err(CodecError::new(format!("invalid number `{raw}`")));
        }
        Ok(JsonValue::Num(raw.to_string()))
    }
}

/// Escapes `s` into a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn routing_name(r: RoutingAlgorithm) -> &'static str {
    match r {
        RoutingAlgorithm::XY => "xy",
        RoutingAlgorithm::YX => "yx",
        RoutingAlgorithm::WestFirst => "west-first",
    }
}

fn routing_from_name(name: &str) -> Result<RoutingAlgorithm, CodecError> {
    match name {
        "xy" => Ok(RoutingAlgorithm::XY),
        "yx" => Ok(RoutingAlgorithm::YX),
        "west-first" => Ok(RoutingAlgorithm::WestFirst),
        other => Err(CodecError::new(format!(
            "unknown routing `{other}` (expected xy, yx or west-first)"
        ))),
    }
}

/// The topology as its JSON fragment: the kind name, plus the edge list
/// for irregular fabrics.
fn topology_json(t: &TopologyKind) -> String {
    match t {
        TopologyKind::Irregular { edges } => {
            let pairs: Vec<String> = edges.iter().map(|(a, b)| format!("[{a},{b}]")).collect();
            format!(
                "\"topology\":\"irregular\",\"edges\":[{}]",
                pairs.join(",")
            )
        }
        other => format!("\"topology\":{}", json_string(other.name())),
    }
}

fn topology_from_fields(obj: &JsonValue) -> Result<TopologyKind, CodecError> {
    let name = match obj.get("topology") {
        None => return Ok(TopologyKind::default()),
        Some(v) => v
            .as_str()
            .ok_or_else(|| CodecError::new("`topology` must be a string"))?,
    };
    match name {
        "mesh" => Ok(TopologyKind::Mesh),
        "torus" => Ok(TopologyKind::Torus),
        "ring" => Ok(TopologyKind::Ring),
        "irregular" => {
            let arr = obj
                .get("edges")
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| CodecError::new("irregular topology requires an `edges` array"))?;
            let mut edges = Vec::with_capacity(arr.len());
            for pair in arr {
                let pair = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| CodecError::new("`edges` entries must be [a, b] pairs"))?;
                let a = pair[0]
                    .as_u64()
                    .ok_or_else(|| CodecError::new("edge endpoints must be unsigned integers"))?;
                let b = pair[1]
                    .as_u64()
                    .ok_or_else(|| CodecError::new("edge endpoints must be unsigned integers"))?;
                edges.push((a as usize, b as usize));
            }
            Ok(TopologyKind::Irregular { edges })
        }
        other => Err(CodecError::new(format!(
            "unknown topology `{other}` (expected mesh, torus, ring or irregular)"
        ))),
    }
}

fn pattern_name(p: &DestinationPattern) -> Result<&'static str, CodecError> {
    match p {
        DestinationPattern::UniformRandom => Ok("uniform"),
        DestinationPattern::Transpose => Ok("transpose"),
        DestinationPattern::BitComplement => Ok("bit-complement"),
        DestinationPattern::BitReverse => Ok("bit-reverse"),
        DestinationPattern::Shuffle => Ok("shuffle"),
        DestinationPattern::Tornado => Ok("tornado"),
        DestinationPattern::Neighbor => Ok("neighbor"),
        DestinationPattern::HotSpot { .. } => Err(CodecError::new(
            "hotspot traffic is not servable over the wire",
        )),
    }
}

fn pattern_from_name(name: &str) -> Result<DestinationPattern, CodecError> {
    match name {
        "uniform" => Ok(DestinationPattern::UniformRandom),
        "transpose" => Ok(DestinationPattern::Transpose),
        "bit-complement" => Ok(DestinationPattern::BitComplement),
        "bit-reverse" => Ok(DestinationPattern::BitReverse),
        "shuffle" => Ok(DestinationPattern::Shuffle),
        "tornado" => Ok(DestinationPattern::Tornado),
        "neighbor" => Ok(DestinationPattern::Neighbor),
        other => Err(CodecError::new(format!("unknown traffic pattern `{other}`"))),
    }
}

/// Encodes an [`ExperimentJob`] as the canonical spec JSON.
///
/// # Errors
///
/// Returns an error for job features without a wire representation
/// (benchmark-mix traffic, hotspot patterns, quantized sensors).
pub fn spec_to_json(job: &ExperimentJob) -> Result<String, CodecError> {
    let cfg = &job.cfg;
    if !matches!(cfg.sensor, SensorModel::Ideal) {
        return Err(CodecError::new(
            "quantized sensor models are not servable over the wire",
        ));
    }
    let traffic = match &job.traffic {
        TrafficSpec::Uniform { rate, seed } => format!(
            "{{\"kind\":\"uniform\",\"rate\":{rate},\"seed\":{seed}}}"
        ),
        TrafficSpec::Pattern {
            pattern,
            rate,
            seed,
        } => format!(
            "{{\"kind\":\"pattern\",\"pattern\":{},\"rate\":{rate},\"seed\":{seed}}}",
            json_string(pattern_name(pattern)?)
        ),
        TrafficSpec::Mix { .. } => {
            return Err(CodecError::new(
                "benchmark-mix traffic is not servable over the wire",
            ))
        }
    };
    let noc = &cfg.noc;
    Ok(format!(
        concat!(
            "{{\"noc\":{{\"cols\":{},\"rows\":{},\"vcs\":{},\"buffer_depth\":{},",
            "\"flits_per_packet\":{},\"link_latency\":{},\"credit_latency\":{},",
            "\"wakeup_latency\":{},\"routing\":{},{}}},",
            "\"policy\":{},\"warmup\":{},\"measure\":{},\"pv_seed\":{},",
            "\"rr_rotation_period\":{},\"md_refresh_period\":{},\"invariants\":{},",
            "\"telemetry\":{{\"trace\":{},\"sample_period\":{}}},",
            "\"traffic\":{}}}"
        ),
        noc.cols,
        noc.rows,
        noc.vcs_per_port,
        noc.buffer_depth,
        noc.flits_per_packet,
        noc.link_latency,
        noc.credit_latency,
        noc.wakeup_latency,
        json_string(routing_name(noc.routing)),
        topology_json(&noc.topology),
        json_string(&cfg.policy.label()),
        cfg.warmup_cycles,
        cfg.measure_cycles,
        cfg.pv_seed,
        cfg.rr_rotation_period,
        cfg.md_refresh_period,
        json_string(&cfg.invariants.to_string()),
        cfg.telemetry.trace,
        cfg.telemetry.sample_period,
        traffic
    ))
}

fn field_u64(obj: &JsonValue, key: &str, default: u64) -> Result<u64, CodecError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| CodecError::new(format!("`{key}` must be an unsigned integer"))),
    }
}

fn field_usize(obj: &JsonValue, key: &str, default: usize) -> Result<usize, CodecError> {
    Ok(field_u64(obj, key, default as u64)? as usize)
}

/// Decodes a spec JSON into a runnable [`ExperimentJob`].
///
/// Absent fields take the experiment defaults (`ExperimentConfig::new`
/// plus `NocConfig::default`); the decoded network configuration is
/// validated, so a returned job never panics on construction.
///
/// # Errors
///
/// Returns an error on syntax problems, unknown names, or an invalid
/// network configuration.
pub fn spec_from_json(text: &str) -> Result<ExperimentJob, CodecError> {
    let root = JsonValue::parse(text)?;
    if !matches!(root, JsonValue::Obj(_)) {
        return Err(CodecError::new("spec must be a JSON object"));
    }
    let policy_name = root
        .get("policy")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| CodecError::new("missing `policy`"))?;
    let policy = PolicyKind::parse(policy_name).map_err(CodecError::new)?;

    let defaults = NocConfig::default();
    let noc = match root.get("noc") {
        None => defaults,
        Some(n) => NocConfig {
            cols: field_usize(n, "cols", defaults.cols)?,
            rows: field_usize(n, "rows", defaults.rows)?,
            vcs_per_port: field_usize(n, "vcs", defaults.vcs_per_port)?,
            buffer_depth: field_usize(n, "buffer_depth", defaults.buffer_depth)?,
            flits_per_packet: field_usize(n, "flits_per_packet", defaults.flits_per_packet)?,
            link_latency: field_u64(n, "link_latency", defaults.link_latency)?,
            credit_latency: field_u64(n, "credit_latency", defaults.credit_latency)?,
            wakeup_latency: field_u64(n, "wakeup_latency", defaults.wakeup_latency)?,
            routing: match n.get("routing") {
                None => defaults.routing,
                Some(r) => routing_from_name(
                    r.as_str()
                        .ok_or_else(|| CodecError::new("`routing` must be a string"))?,
                )?,
            },
            topology: topology_from_fields(n)?,
        },
    };
    noc.validate()
        .map_err(|e| CodecError::new(e.to_string()))?;

    let base = ExperimentConfig::new(noc, policy);
    let invariants = match root.get("invariants") {
        None => base.invariants,
        Some(v) => v
            .as_str()
            .ok_or_else(|| CodecError::new("`invariants` must be a string"))?
            .parse::<InvariantLevel>()
            .map_err(|e| CodecError::new(e.to_string()))?,
    };
    let telemetry = match root.get("telemetry") {
        None => TelemetrySpec::default(),
        Some(t) => TelemetrySpec {
            trace: t.get("trace").and_then(JsonValue::as_bool).unwrap_or(false),
            trace_capacity: field_usize(t, "trace_capacity", 0)?,
            sample_period: field_u64(t, "sample_period", 0)?,
        },
    };

    let traffic_v = root
        .get("traffic")
        .ok_or_else(|| CodecError::new("missing `traffic`"))?;
    let rate = traffic_v
        .get("rate")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| CodecError::new("missing `traffic.rate`"))?;
    if !(rate.is_finite() && rate >= 0.0) {
        return Err(CodecError::new("`traffic.rate` must be non-negative"));
    }
    let seed = field_u64(traffic_v, "seed", 1)?;
    let kind = traffic_v
        .get("kind")
        .and_then(JsonValue::as_str)
        .unwrap_or("uniform");
    let traffic = match kind {
        "uniform" => TrafficSpec::Uniform { rate, seed },
        "pattern" => TrafficSpec::Pattern {
            pattern: pattern_from_name(
                traffic_v
                    .get("pattern")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| CodecError::new("missing `traffic.pattern`"))?,
            )?,
            rate,
            seed,
        },
        other => {
            return Err(CodecError::new(format!(
                "unknown traffic kind `{other}` (expected uniform or pattern)"
            )))
        }
    };

    let cfg = ExperimentConfig {
        warmup_cycles: field_u64(&root, "warmup", base.warmup_cycles)?,
        measure_cycles: field_u64(&root, "measure", base.measure_cycles)?,
        pv_seed: field_u64(&root, "pv_seed", base.pv_seed)?,
        rr_rotation_period: field_u64(&root, "rr_rotation_period", base.rr_rotation_period)?
            .max(1),
        md_refresh_period: field_u64(&root, "md_refresh_period", base.md_refresh_period)?,
        invariants,
        telemetry,
        ..base
    };
    Ok(ExperimentJob { cfg, traffic })
}

/// The wire view of one per-port result row.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePort {
    /// The port name (`Display` form of the simulator's `PortId`).
    pub port: String,
    /// The most degraded VC index.
    pub md_vc: usize,
    /// Per-VC duty cycles in percent.
    pub duty_percent: Vec<f64>,
    /// Flits received during the measured window.
    pub flits: u64,
}

/// The wire view of an [`ExperimentResult`] — the schema both the CLI's
/// `run --json` output and the service's result endpoint emit.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResult {
    /// The policy label.
    pub policy: String,
    /// Measured cycles after warm-up.
    pub measured_cycles: u64,
    /// Packets injected during the measured window.
    pub packets_injected: u64,
    /// Packets delivered during the measured window.
    pub packets_ejected: u64,
    /// Flits delivered during the measured window.
    pub flits_ejected: u64,
    /// Mean end-to-end latency in cycles, when any packet was delivered.
    pub avg_latency: Option<f64>,
    /// `(p50, p95, p99, max)` latency upper bounds in cycles.
    pub latency: Option<(u64, u64, u64, u64)>,
    /// Invariant violations over the whole run.
    pub invariant_violations: u64,
    /// The event-stream digest, when the run was traced.
    pub trace_digest: Option<u64>,
    /// Total deterministic work units (see `WorkCounters::total`).
    pub work_total: u64,
    /// Per-port rows, in `Network::port_ids` order.
    pub ports: Vec<WirePort>,
}

impl From<&ExperimentResult> for WireResult {
    fn from(r: &ExperimentResult) -> Self {
        let latency = r.net.latency_quantile_upper(0.5).map(|p50| {
            (
                p50,
                r.net.latency_quantile_upper(0.95).unwrap_or(p50),
                r.net.latency_quantile_upper(0.99).unwrap_or(p50),
                r.net.latency_quantile_upper(1.0).unwrap_or(p50),
            )
        });
        WireResult {
            policy: r.policy.label(),
            measured_cycles: r.measured_cycles,
            packets_injected: r.net.packets_injected,
            packets_ejected: r.net.packets_ejected,
            flits_ejected: r.net.flits_ejected,
            avg_latency: r.net.avg_latency(),
            latency,
            invariant_violations: r.invariant_violations,
            trace_digest: r.trace_digest(),
            work_total: r.work.total(),
            ports: r
                .ports
                .iter()
                .map(|p| WirePort {
                    port: p.port.to_string(),
                    md_vc: p.md_vc,
                    duty_percent: p.duty_percent.clone(),
                    flits: p.flits_received,
                })
                .collect(),
        }
    }
}

impl WireResult {
    /// Encodes the result as canonical JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.ports.len() * 96);
        out.push_str(&format!(
            "{{\"policy\":{},\"measured_cycles\":{},\"packets_injected\":{},\
             \"packets_ejected\":{},\"flits_ejected\":{},",
            json_string(&self.policy),
            self.measured_cycles,
            self.packets_injected,
            self.packets_ejected,
            self.flits_ejected,
        ));
        match self.avg_latency {
            Some(v) => out.push_str(&format!("\"avg_latency\":{v},")),
            None => out.push_str("\"avg_latency\":null,"),
        }
        match self.latency {
            Some((p50, p95, p99, max)) => out.push_str(&format!(
                "\"latency\":{{\"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\"max\":{max}}},"
            )),
            None => out.push_str("\"latency\":null,"),
        }
        out.push_str(&format!(
            "\"invariant_violations\":{},",
            self.invariant_violations
        ));
        match self.trace_digest {
            Some(d) => out.push_str(&format!("\"trace_digest\":\"{d:016x}\",")),
            None => out.push_str("\"trace_digest\":null,"),
        }
        out.push_str(&format!("\"work_total\":{},\"ports\":[", self.work_total));
        for (i, p) in self.ports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"port\":{},\"md_vc\":{},\"duty_percent\":[",
                json_string(&p.port),
                p.md_vc
            ));
            for (j, d) in p.duty_percent.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{d}"));
            }
            out.push_str(&format!("],\"flits\":{}}}", p.flits));
        }
        out.push_str("]}");
        out
    }

    /// Decodes the canonical result JSON.
    ///
    /// # Errors
    ///
    /// Returns an error on syntax problems or missing required fields.
    pub fn from_json(text: &str) -> Result<WireResult, CodecError> {
        let root = JsonValue::parse(text)?;
        let policy = root
            .get("policy")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| CodecError::new("missing `policy`"))?
            .to_string();
        let latency = match root.get("latency") {
            Some(JsonValue::Null) | None => None,
            Some(l) => Some((
                field_u64(l, "p50", 0)?,
                field_u64(l, "p95", 0)?,
                field_u64(l, "p99", 0)?,
                field_u64(l, "max", 0)?,
            )),
        };
        let trace_digest = match root.get("trace_digest") {
            Some(JsonValue::Str(s)) => Some(
                u64::from_str_radix(s, 16)
                    .map_err(|_| CodecError::new(format!("bad trace_digest `{s}`")))?,
            ),
            _ => None,
        };
        let avg_latency = match root.get("avg_latency") {
            Some(JsonValue::Num(_)) => root.get("avg_latency").and_then(JsonValue::as_f64),
            _ => None,
        };
        let mut ports = Vec::new();
        if let Some(rows) = root.get("ports").and_then(JsonValue::as_arr) {
            for row in rows {
                let duty = row
                    .get("duty_percent")
                    .and_then(JsonValue::as_arr)
                    .ok_or_else(|| CodecError::new("port row missing `duty_percent`"))?
                    .iter()
                    .map(|v| {
                        v.as_f64()
                            .ok_or_else(|| CodecError::new("duty entries must be numbers"))
                    })
                    .collect::<Result<Vec<f64>, _>>()?;
                ports.push(WirePort {
                    port: row
                        .get("port")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| CodecError::new("port row missing `port`"))?
                        .to_string(),
                    md_vc: field_usize(row, "md_vc", 0)?,
                    duty_percent: duty,
                    flits: field_u64(row, "flits", 0)?,
                });
            }
        }
        Ok(WireResult {
            policy,
            measured_cycles: field_u64(&root, "measured_cycles", 0)?,
            packets_injected: field_u64(&root, "packets_injected", 0)?,
            packets_ejected: field_u64(&root, "packets_ejected", 0)?,
            flits_ejected: field_u64(&root, "flits_ejected", 0)?,
            avg_latency,
            latency,
            invariant_violations: field_u64(&root, "invariant_violations", 0)?,
            trace_digest,
            work_total: field_u64(&root, "work_total", 0)?,
            ports,
        })
    }
}

/// Encodes an [`ExperimentResult`] as the canonical result JSON.
pub fn result_to_json(r: &ExperimentResult) -> String {
    WireResult::from(r).to_json()
}

// The campaign-epoch wire types live in their own module but belong to the
// same one-schema codec surface.
pub use crate::epoch_wire::{is_epoch_request, WireEpochOutcome, WireEpochRequest};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SyntheticScenario;

    fn sample_job() -> ExperimentJob {
        let mut job = SyntheticScenario {
            cores: 4,
            vcs: 2,
            injection_rate: 0.1,
        }
        .job(PolicyKind::SensorWise, 200, 2_000);
        job.cfg.telemetry.trace = true;
        job
    }

    #[test]
    fn json_parser_handles_the_grammar() {
        let v = JsonValue::parse(
            r#"{"a": [1, -2.5, 1e3], "b": "x\"\nA", "c": true, "d": null, "e": {}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"\nA"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} x").is_err());
    }

    #[test]
    fn u64_values_round_trip_exactly() {
        let raw = format!("{{\"seed\": {}}}", u64::MAX);
        let v = JsonValue::parse(&raw).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let job = sample_job();
        let text = spec_to_json(&job).unwrap();
        let back = spec_from_json(&text).unwrap();
        assert_eq!(back.cfg.noc, job.cfg.noc);
        assert_eq!(back.cfg.policy, job.cfg.policy);
        assert_eq!(back.cfg.warmup_cycles, job.cfg.warmup_cycles);
        assert_eq!(back.cfg.measure_cycles, job.cfg.measure_cycles);
        assert_eq!(back.cfg.pv_seed, job.cfg.pv_seed);
        assert_eq!(back.cfg.telemetry, job.cfg.telemetry);
        match (&back.traffic, &job.traffic) {
            (
                TrafficSpec::Uniform { rate: ra, seed: sa },
                TrafficSpec::Uniform { rate: rb, seed: sb },
            ) => {
                assert_eq!(ra, rb);
                assert_eq!(sa, sb);
            }
            other => panic!("traffic mismatch: {other:?}"),
        }
    }

    #[test]
    fn decoded_spec_runs_identically_to_the_original() {
        let job = sample_job();
        let text = spec_to_json(&job).unwrap();
        let decoded = spec_from_json(&text).unwrap();
        let a = job.run();
        let b = decoded.run();
        assert_eq!(a.net, b.net);
        assert_eq!(a.ports, b.ports);
        assert_eq!(a.trace_digest(), b.trace_digest());
        assert!(a.trace_digest().is_some());
    }

    #[test]
    fn spec_defaults_apply_for_absent_fields() {
        let job = spec_from_json(
            r#"{"policy":"rr","traffic":{"rate":0.1,"seed":3},
                "noc":{"cols":2,"rows":2,"vcs":2}}"#,
        )
        .unwrap();
        assert_eq!(job.cfg.policy, PolicyKind::RrNoSensor);
        assert_eq!(job.cfg.noc.buffer_depth, NocConfig::default().buffer_depth);
        assert_eq!(job.cfg.warmup_cycles, 20_000);
        assert!(!job.cfg.telemetry.trace);
    }

    #[test]
    fn bad_specs_are_rejected_with_messages() {
        for (text, needle) in [
            ("[]", "spec must be a JSON object"),
            (r#"{"traffic":{"rate":0.1}}"#, "missing `policy`"),
            (r#"{"policy":"sw"}"#, "missing `traffic`"),
            (
                r#"{"policy":"magic","traffic":{"rate":0.1}}"#,
                "unknown policy",
            ),
            (
                r#"{"policy":"sw","traffic":{"rate":0.1},"noc":{"cols":0}}"#,
                "invalid NoC configuration",
            ),
            (
                r#"{"policy":"sw","traffic":{"kind":"mix","rate":0.1}}"#,
                "unknown traffic kind",
            ),
            (
                r#"{"policy":"sw","traffic":{"rate":-0.5}}"#,
                "non-negative",
            ),
        ] {
            let err = spec_from_json(text).unwrap_err().to_string();
            assert!(err.contains(needle), "`{text}` -> {err}");
        }
    }

    #[test]
    fn unsupported_jobs_refuse_to_encode() {
        let mut job = sample_job();
        job.traffic = TrafficSpec::Mix {
            mix: noc_traffic::app::BenchmarkMix::random(4, 1),
            seed: 1,
        };
        assert!(spec_to_json(&job).is_err());
    }

    #[test]
    fn result_round_trips_through_json() {
        let r = sample_job().run();
        let text = result_to_json(&r);
        let wire = WireResult::from_json(&text).unwrap();
        assert_eq!(wire, WireResult::from(&r));
        assert_eq!(wire.trace_digest, r.trace_digest());
        assert!(wire.trace_digest.is_some());
        assert_eq!(wire.ports.len(), r.ports.len());
        assert_eq!(wire.latency.is_some(), r.net.packets_ejected > 0);
    }
}
