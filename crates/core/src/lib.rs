//! # sensorwise — the DATE 2013 sensor-wise NBTI mitigation methodology
//!
//! This crate implements the paper's contribution on top of the `noc-sim`
//! substrate and the `nbti-model` physics:
//!
//! * [`policy`] — the pre-VA gating policies: the NBTI-unaware baseline,
//!   Algorithm 1 (*rr-no-sensor*), and Algorithm 2 (*sensor-wise*, with and
//!   without traffic information),
//! * [`monitor`] — per-port NBTI bookkeeping: process-variation `Vth`
//!   sampling, per-VC age trackers, and the sensor election carried by the
//!   `Down_Up` link,
//! * [`experiment`] — the cycle loop tying traffic, network, policies and
//!   monitors together, plus the paper's synthetic scenarios,
//! * [`tables`] — builders that regenerate the paper's Tables II, III and
//!   IV and render them as text,
//! * [`analysis`] — the headline extractions: activity-factor gaps, the
//!   ten-year `Vth` saving versus the baseline (E5), and the cooperative
//!   gain of traffic information (E6),
//! * [`sweep`] — gap-versus-load sweeps and saturation-point analysis,
//! * [`codec`] — the wire codec: one JSON schema for experiment specs and
//!   results shared by the CLI and the `noc-service` HTTP API,
//! * [`cache`] — content-addressed result memoization: canonical spec JSON
//!   is the address, identical spec means byte-identical cached result;
//!   backs the sweep memoization and the service's cache-hit fast path,
//! * [`parallel`] — the deterministic parallel experiment engine every
//!   swept artifact fans out through: bounded worker pool, results in
//!   input order, bit-identical for any worker count.
//!
//! # Example
//!
//! ```
//! use sensorwise::experiment::SyntheticScenario;
//! use sensorwise::policy::PolicyKind;
//!
//! let scenario = SyntheticScenario { cores: 4, vcs: 2, injection_rate: 0.1 };
//! let rr = scenario.run(PolicyKind::RrNoSensor, 500, 3_000);
//! let sw = scenario.run(PolicyKind::SensorWise, 500, 3_000);
//! let port = rr.east_input(noc_sim::types::NodeId(0));
//! let md = port.md_vc;
//! // The sensor-wise policy reduces the most degraded VC's duty cycle.
//! assert!(sw.east_input(noc_sim::types::NodeId(0)).duty_percent[md]
//!     <= port.duty_percent[md]);
//! ```

#![deny(missing_debug_implementations)]
#![warn(
    clippy::semicolon_if_nothing_returned,
    clippy::explicit_iter_loop,
    clippy::redundant_closure_for_method_calls,
    clippy::manual_let_else
)]

pub mod analysis;
pub mod cache;
pub mod codec;
pub mod epoch_wire;
pub mod experiment;
pub mod modelcheck;
pub mod monitor;
pub mod parallel;
pub mod policy;
pub mod sweep;
pub mod tables;

pub use cache::{run_batch_cached, spec_key, CachedBatch, MemoryCache, ResultCache};
pub use codec::{
    result_to_json, spec_from_json, spec_to_json, CodecError, JsonValue, WirePort, WireResult,
};
pub use epoch_wire::{is_epoch_request, WireEpochOutcome, WireEpochRequest};
pub use experiment::{
    run_epoch, run_epoch_cancellable, run_experiment, run_experiment_cancellable,
    run_experiment_profiled, EpochError, EpochOutcome, ExperimentConfig, ExperimentResult,
    PortResult, SensorModel, SyntheticScenario, LOAD_CALIBRATION,
};
pub use modelcheck::{
    checked_policies, controller_for, explore_config_for, model_check, model_check_default,
    model_check_with_fault, CheckCase, CheckOutcome, ModelCheckReport,
};
pub use monitor::NbtiMonitor;
pub use parallel::{
    default_jobs, parallel_map, run_batch, validate_jobs, ExperimentJob, TrafficSpec,
};
pub use policy::{BaselinePolicy, GatingPolicy, PolicyKind, RrNoSensorPolicy, SensorWisePolicy};
pub use noc_telemetry::{TelemetryReport, TelemetrySpec, WorkCounters};
