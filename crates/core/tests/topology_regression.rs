//! Topology regression oracle.
//!
//! The mesh routed through the `Topology` trait must be *bit-identical*
//! to the pre-refactor direct-`Mesh2D` network: the golden digests below
//! were captured on the commit before the trait was introduced, for every
//! policy, and pin the refactor down to the event stream.

use noc_sim::config::NocConfig;
use noc_telemetry::TelemetrySpec;
use sensorwise::policy::PolicyKind;
use sensorwise::{run_experiment, ExperimentConfig, TrafficSpec};

const POLICIES: [PolicyKind; 5] = [
    PolicyKind::Baseline,
    PolicyKind::RrNoSensor,
    PolicyKind::SensorWiseNoTraffic,
    PolicyKind::SensorWise,
    PolicyKind::SensorWiseK(2),
];

fn digest_for(policy: PolicyKind, cores: usize) -> u64 {
    digest_with_routing(policy, cores, noc_sim::routing::RoutingAlgorithm::XY)
}

fn digest_with_routing(
    policy: PolicyKind,
    cores: usize,
    routing: noc_sim::routing::RoutingAlgorithm,
) -> u64 {
    let mut noc = NocConfig::paper_synthetic(cores, 2);
    noc.routing = routing;
    let cfg = ExperimentConfig::new(noc.clone(), policy)
        .with_cycles(300, 3_000)
        .with_pv_seed(0x70_70_01)
        .with_telemetry(TelemetrySpec {
            trace: true,
            trace_capacity: 0,
            sample_period: 0,
        });
    let spec = TrafficSpec::Uniform {
        rate: 0.12,
        seed: 0xDEAD_0001,
    };
    let mut traffic = spec.build(&noc);
    let result = run_experiment(&cfg, traffic.as_mut());
    result.trace_digest().expect("trace was requested")
}

/// Golden digests captured on the pre-`Topology`-trait network (4×4 mesh,
/// 2 VCs, XY, uniform 0.12, 300+3000 cycles, pv seed 0x707001, traffic
/// seed 0xDEAD0001), one per policy.
const GOLDEN_BY_POLICY: [u64; 5] = [
    0x9e31_5169_1c9d_0d3b, // Baseline
    0xa23b_26fe_2887_8df5, // RrNoSensor
    0x9f7b_0bdd_39ca_78d0, // SensorWiseNoTraffic
    0xc60f_c45d_2b9e_391b, // SensorWise
    0x1f1d_2cec_b57e_4e72, // SensorWiseK(2)
];

#[test]
fn mesh_through_topology_trait_matches_pre_refactor_goldens() {
    for (policy, golden) in POLICIES.into_iter().zip(GOLDEN_BY_POLICY) {
        let digest = digest_for(policy, 16);
        assert_eq!(
            digest, golden,
            "{policy:?}: digest {digest:#018x} != pre-refactor golden {golden:#018x}"
        );
    }
}

/// Torus and ring fabrics under the full invariant checker: every flit
/// and credit must be conserved, every packet must arrive, and the run
/// must report zero violations — the wrap/idle links change the port set
/// but not the protocol.
#[test]
fn torus_and_ring_conserve_flits_and_credits_at_full_invariants() {
    use noc_sim::config::TopologyKind;
    use noc_sim::invariants::InvariantLevel;

    for (kind, cols, rows) in [
        (TopologyKind::Torus, 4, 4),
        (TopologyKind::Torus, 2, 3),
        (TopologyKind::Ring, 8, 1),
    ] {
        let mut noc = NocConfig::default();
        noc.cols = cols;
        noc.rows = rows;
        noc.vcs_per_port = 2;
        noc.topology = kind.clone();
        let cfg = ExperimentConfig::new(noc.clone(), PolicyKind::SensorWise)
            .with_cycles(200, 2_000)
            .with_invariants(InvariantLevel::Full);
        let spec = TrafficSpec::Uniform {
            rate: 0.10,
            seed: 0xBEEF_0002,
        };
        let mut traffic = spec.build(&noc);
        let result = run_experiment(&cfg, traffic.as_mut());
        assert_eq!(
            result.invariant_violations,
            0,
            "{}: {:?}",
            kind.name(),
            result.violations.first()
        );
        assert!(
            result.net.packets_ejected > 0,
            "{}: no traffic flowed",
            kind.name()
        );
    }
}

/// Determinism across fabrics: the digest of a torus/ring run is a pure
/// function of the configuration, like the mesh digests above.
#[test]
fn non_mesh_digests_are_reproducible() {
    use noc_sim::config::TopologyKind;

    for kind in [TopologyKind::Torus, TopologyKind::Ring] {
        let digest = |_: u32| {
            let mut noc = NocConfig::default();
            noc.cols = 4;
            noc.rows = 4;
            noc.vcs_per_port = 2;
            noc.topology = kind.clone();
            let cfg = ExperimentConfig::new(noc.clone(), PolicyKind::SensorWise)
                .with_cycles(100, 1_000)
                .with_telemetry(TelemetrySpec {
                    trace: true,
                    trace_capacity: 0,
                    sample_period: 0,
                });
            let spec = TrafficSpec::Uniform {
                rate: 0.10,
                seed: 7,
            };
            let mut traffic = spec.build(&noc);
            run_experiment(&cfg, traffic.as_mut())
                .trace_digest()
                .expect("trace was requested")
        };
        assert_eq!(digest(0), digest(1), "{} digest not stable", kind.name());
    }
}

/// The same oracle across routing algorithms, pinning the adaptive
/// (West-First) credit-tie-break path through the trait as well.
#[test]
fn mesh_routing_variants_match_pre_refactor_goldens() {
    use noc_sim::routing::RoutingAlgorithm;
    let golden = [
        (RoutingAlgorithm::XY, 0xc60f_c45d_2b9e_391b_u64),
        (RoutingAlgorithm::YX, 0xf68e_9284_f20a_cf17),
        (RoutingAlgorithm::WestFirst, 0x3d6f_2618_f281_5a16),
    ];
    for (routing, want) in golden {
        let digest = digest_with_routing(PolicyKind::SensorWise, 16, routing);
        assert_eq!(
            digest, want,
            "{routing:?}: digest {digest:#018x} != pre-refactor golden {want:#018x}"
        );
    }
}
