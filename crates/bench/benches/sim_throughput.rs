//! Simulator throughput: cycles/second of the full experiment loop
//! (traffic + network + policy + NBTI accounting) for each policy and mesh
//! size. This is the cost of regenerating the paper's tables; it also
//! quantifies the overhead each policy adds to the control path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use noc_sim::config::NocConfig;
use noc_sim::topology::Mesh2D;
use noc_traffic::synthetic::SyntheticTraffic;
use sensorwise::{run_experiment, ExperimentConfig, PolicyKind};

fn bench_policies(c: &mut Criterion) {
    let cycles = 2_000u64;
    let mut group = c.benchmark_group("experiment_loop");
    group.throughput(Throughput::Elements(cycles));
    for cores in [4usize, 16] {
        for policy in PolicyKind::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("{cores}core"), policy.label()),
                &(cores, policy),
                |b, &(cores, policy)| {
                    b.iter(|| {
                        let noc = NocConfig::paper_synthetic(cores, 2);
                        let mesh = Mesh2D::new(noc.cols, noc.rows);
                        let mut traffic =
                            SyntheticTraffic::uniform(mesh, 0.3, noc.flits_per_packet, 1);
                        let cfg = ExperimentConfig::new(noc, policy).with_cycles(0, cycles);
                        run_experiment(&cfg, &mut traffic)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_raw_network(c: &mut Criterion) {
    let cycles = 5_000u64;
    let mut group = c.benchmark_group("raw_network_step");
    group.throughput(Throughput::Elements(cycles));
    for cores in [4usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, &cores| {
            b.iter(|| {
                let noc = NocConfig::paper_synthetic(cores, 4);
                let mesh = Mesh2D::new(noc.cols, noc.rows);
                let mut traffic = SyntheticTraffic::uniform(mesh, 0.3, noc.flits_per_packet, 1);
                let mut net = noc_sim::network::Network::new(noc).unwrap();
                for _ in 0..cycles {
                    noc_traffic::source::inject_from(&mut traffic, &mut net);
                    net.step();
                }
                net.stats().packets_ejected
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_policies, bench_raw_network
}
criterion_main!(benches);
