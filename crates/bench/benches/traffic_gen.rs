//! Traffic-generation throughput: synthetic patterns and the
//! benchmark-profile application model. Generation must stay far cheaper
//! than the simulator cycle it feeds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use noc_sim::topology::Mesh2D;
use noc_traffic::app::{AppTraffic, BenchmarkMix};
use noc_traffic::pattern::DestinationPattern;
use noc_traffic::source::TrafficSource;
use noc_traffic::synthetic::SyntheticTraffic;

fn bench_synthetic(c: &mut Criterion) {
    let cycles = 1_000u64;
    let mesh = Mesh2D::square(4);
    let mut group = c.benchmark_group("synthetic_emit");
    group.throughput(Throughput::Elements(cycles * 16));
    for (name, pattern) in [
        ("uniform", DestinationPattern::UniformRandom),
        ("transpose", DestinationPattern::Transpose),
        ("tornado", DestinationPattern::Tornado),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &pattern, |b, pattern| {
            b.iter(|| {
                let mut src = SyntheticTraffic::new(mesh, pattern.clone(), 0.3, 5, 1);
                let mut out = Vec::new();
                for cyc in 0..cycles {
                    src.emit(cyc, &mut out);
                }
                out.len()
            })
        });
    }
    group.finish();
}

fn bench_app(c: &mut Criterion) {
    let cycles = 1_000u64;
    let mesh = Mesh2D::square(4);
    let mix = BenchmarkMix::random(16, 3);
    let mut group = c.benchmark_group("app_emit");
    group.throughput(Throughput::Elements(cycles * 16));
    group.bench_function("random_mix_16", |b| {
        b.iter(|| {
            let mut src = AppTraffic::new(mesh, &mix, 5);
            let mut out = Vec::new();
            for cyc in 0..cycles {
                src.emit(cyc, &mut out);
            }
            out.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_synthetic, bench_app);
criterion_main!(benches);
