//! NBTI model evaluation costs: the Eq. 1 closed form, the tracked
//! (power-law-anchored) variant, sensor sampling and process-variation
//! draws. These sit on the per-cycle path of the sensor-wise experiments,
//! so their cost bounds how often the `Down_Up` election can refresh.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nbti_model::{
    IdealSensor, LongTermModel, NbtiParams, NbtiSensor, ProcessVariation, QuantizedSensor, Volt,
};
use std::hint::black_box;

fn bench_model(c: &mut Criterion) {
    let model = LongTermModel::calibrated_45nm();
    c.bench_function("delta_vth_closed_form", |b| {
        b.iter(|| model.delta_vth(black_box(0.37), black_box(NbtiParams::TEN_YEARS_S)))
    });
    c.bench_function("delta_vth_tracked_short_time", |b| {
        b.iter(|| model.delta_vth_tracked(black_box(0.37), black_box(0.02)))
    });
    c.bench_function("saving_percent", |b| {
        b.iter(|| model.saving_percent(black_box(0.1), black_box(1.0), NbtiParams::TEN_YEARS_S))
    });
}

fn bench_sensors(c: &mut Criterion) {
    c.bench_function("ideal_sensor_sample", |b| {
        let mut s = IdealSensor::new();
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 1;
            s.sample(black_box(Volt::from_volts(0.183)), cycle)
        })
    });
    c.bench_function("quantized_sensor_sample_every_cycle", |b| {
        let mut s = QuantizedSensor::singh_45nm(1, 7);
        let mut cycle = 0u64;
        b.iter(|| {
            cycle += 1;
            s.sample(black_box(Volt::from_volts(0.183)), cycle)
        })
    });
}

fn bench_variation(c: &mut Criterion) {
    c.bench_function("pv_sample_port_of_4", |b| {
        b.iter_batched(
            || ProcessVariation::paper_45nm(9),
            |mut pv| pv.sample_port(black_box(4)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_model, bench_sensors, bench_variation
}
criterion_main!(benches);
