//! Per-decision cost of each gating policy — the software model of the
//! pre-VA combinational logic the paper synthesizes with NetMaker (and
//! finds negligible in area; here we show it is also negligible in time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_sim::types::{Direction, NodeId};
use noc_sim::view::{PortId, PortView, VcStatus};
use sensorwise::policy::PolicyKind;
use std::hint::black_box;

fn view(num_vcs: usize, busy_mask: usize, new_traffic: bool) -> PortView {
    PortView {
        port: PortId::router_input(NodeId(0), Direction::East),
        vc_status: (0..num_vcs)
            .map(|v| {
                if busy_mask & (1 << v) != 0 {
                    VcStatus::Busy
                } else if v % 2 == 0 {
                    VcStatus::IdleOn
                } else {
                    VcStatus::Off
                }
            })
            .collect(),
        new_traffic,
    }
}

fn bench_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_decide");
    for vcs in [2usize, 4, 8] {
        let views = [
            view(vcs, 0, true),
            view(vcs, 0b1, true),
            view(vcs, (1 << vcs) - 1, true),
            view(vcs, 0, false),
        ];
        for kind in PolicyKind::ALL {
            group.bench_with_input(BenchmarkId::new(kind.label(), vcs), &kind, |b, &kind| {
                let mut policy = kind.build(1);
                let mut cycle = 0u64;
                b.iter(|| {
                    cycle += 1;
                    let v = &views[(cycle % 4) as usize];
                    policy.decide(cycle, black_box(v), black_box((cycle as usize) % vcs))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_decide);
criterion_main!(benches);
