//! Shared helpers for the table-regeneration binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--measure <cycles>` — measured cycles per run,
//! * `--warmup <cycles>` — warm-up cycles discarded before measuring,
//! * `--iterations <n>` — benchmark-mix iterations (Table IV only),
//! * `--seed <n>` — base seed,
//! * `--jobs <n>` — worker threads for the parallel experiment engine
//!   (default: available parallelism; results are bit-identical for any
//!   value ≥ 1).
//!
//! Defaults are sized so the full table regenerates in minutes on a laptop;
//! pass the paper's `--measure 30000000` for the full-length runs.

#![deny(missing_debug_implementations)]
#![warn(
    clippy::semicolon_if_nothing_returned,
    clippy::explicit_iter_loop,
    clippy::redundant_closure_for_method_calls,
    clippy::manual_let_else
)]

use std::fmt;

/// Parsed command-line options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Measured cycles per experiment run.
    pub measure: u64,
    /// Warm-up cycles per experiment run.
    pub warmup: u64,
    /// Iterations for averaged experiments.
    pub iterations: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for the parallel experiment engine.
    pub jobs: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            measure: 200_000,
            warmup: 20_000,
            iterations: 10,
            seed: 0xDA7E_2013,
            jobs: sensorwise::default_jobs(),
        }
    }
}

impl fmt::Display for RunOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "warmup={} measure={} iterations={} seed={:#x} jobs={}",
            self.warmup, self.measure, self.iterations, self.seed, self.jobs
        )
    }
}

impl RunOptions {
    /// Parses options from an iterator of arguments (usually
    /// `std::env::args().skip(1)`).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments, including
    /// `--jobs 0`.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = RunOptions::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut next_u64 = |name: &str| -> u64 {
                it.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
                    .parse()
                    .unwrap_or_else(|e| panic!("bad value for {name}: {e}"))
            };
            match flag.as_str() {
                "--measure" => opts.measure = next_u64("--measure"),
                "--warmup" => opts.warmup = next_u64("--warmup"),
                "--iterations" => opts.iterations = next_u64("--iterations") as usize,
                "--seed" => opts.seed = next_u64("--seed"),
                "--jobs" => {
                    opts.jobs = sensorwise::validate_jobs(next_u64("--jobs") as usize)
                        .unwrap_or_else(|e| panic!("{e}"));
                }
                "--help" | "-h" => {
                    println!(
                        "flags: --measure <cycles> --warmup <cycles> --iterations <n> --seed <n> --jobs <n>"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag `{other}` (try --help)"),
            }
        }
        opts
    }

    /// Parses from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// A scaled-down copy for quick runs (used by tests). Serial, so test
    /// timings don't depend on the host's core count.
    pub fn quick() -> Self {
        RunOptions {
            measure: 10_000,
            warmup: 1_000,
            iterations: 2,
            seed: 7,
            jobs: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> RunOptions {
        RunOptions::parse(args.iter().map(std::string::ToString::to_string))
    }

    #[test]
    fn defaults_without_flags() {
        assert_eq!(parse(&[]), RunOptions::default());
        assert!(RunOptions::default().jobs >= 1);
    }

    #[test]
    fn flags_override_defaults() {
        let o = parse(&[
            "--measure",
            "5000",
            "--warmup",
            "100",
            "--iterations",
            "3",
            "--seed",
            "9",
            "--jobs",
            "4",
        ]);
        assert_eq!(o.measure, 5000);
        assert_eq!(o.warmup, 100);
        assert_eq!(o.iterations, 3);
        assert_eq!(o.seed, 9);
        assert_eq!(o.jobs, 4);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = parse(&["--bogus"]);
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn missing_value_panics() {
        let _ = parse(&["--measure"]);
    }

    #[test]
    #[should_panic(expected = "--jobs must be at least 1")]
    fn zero_jobs_panics() {
        let _ = parse(&["--jobs", "0"]);
    }
}
