//! Campaign throughput bench: epochs/sec through the full lifetime loop —
//! epoch simulation, ledger integration, checkpoint encode + fsync-free
//! save — appended to `BENCH_campaign.json`.
//!
//! Each invocation runs one multi-epoch campaign of the standard 4-core
//! scenario, checkpointing after every epoch exactly as `campaign run`
//! does, and records wall time, epochs/sec, checkpoint size and the final
//! chained digest. Regressions in the epoch loop or the snapshot codec
//! show up as a drop between consecutive runs.
//!
//! Usage: `cargo run --release -p nbti-noc-bench --bin campaign_epochs`
//! `[-- --epochs N --measure N --warmup N --rate R]`

use noc_campaign::{Campaign, CampaignSpec};
use noc_service::clock;
use sensorwise::{ExperimentJob, PolicyKind, SyntheticScenario};
use std::fs;
use std::path::Path;

struct BenchConfig {
    epochs: u32,
    measure: u64,
    warmup: u64,
    rate: f64,
}

fn parse_args() -> BenchConfig {
    let mut cfg = BenchConfig {
        epochs: 8,
        measure: 5_000,
        warmup: 500,
        rate: 0.15,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = it.next().map(|v| v.as_str()).unwrap_or("");
        match arg.as_str() {
            "--epochs" => cfg.epochs = value.parse().expect("--epochs"),
            "--measure" => cfg.measure = value.parse().expect("--measure"),
            "--warmup" => cfg.warmup = value.parse().expect("--warmup"),
            "--rate" => cfg.rate = value.parse().expect("--rate"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    cfg
}

/// Appends `entry` to the JSON array in `path`, creating it on first run.
fn append_entry(path: &Path, entry: &str) {
    let body = match fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end().trim_end_matches(']').trim_end();
            let trimmed = trimmed.trim_end_matches(',');
            format!("{trimmed},\n  {entry}\n]\n")
        }
        Err(_) => format!("[\n  {entry}\n]\n"),
    };
    fs::write(path, body).expect("write BENCH_campaign.json");
}

/// Entries already recorded, for the monotone run index.
fn existing_runs(path: &Path) -> u64 {
    fs::read_to_string(path)
        .map(|s| s.matches("\"run\":").count() as u64)
        .unwrap_or(0)
}

fn main() {
    let bench = parse_args();
    let scenario = SyntheticScenario {
        cores: 4,
        vcs: 2,
        injection_rate: bench.rate,
    };
    let mut job: ExperimentJob = scenario.job(PolicyKind::SensorWise, bench.warmup, bench.measure);
    job.traffic = job.traffic.with_seed(1);
    let spec = CampaignSpec {
        base: job,
        epochs: bench.epochs,
        age_acceleration: 1.0e9,
        drain_limit: 10_000,
    };

    let ckpt = std::env::temp_dir().join(format!(
        "bench-campaign-{}.ckpt",
        std::process::id()
    ));
    let mut campaign = Campaign::new(spec).expect("bench spec is valid");

    let started = clock::now();
    let reports = campaign
        .run_to_completion(None, Some(&ckpt))
        .expect("campaign completes");
    let elapsed_ms = clock::millis_since(started).max(1);

    assert_eq!(reports.len() as u32, bench.epochs);
    let checkpoint_bytes = fs::metadata(&ckpt).map(|m| m.len()).unwrap_or(0);
    let _ = fs::remove_file(&ckpt);

    let simulated_cycles = campaign.current_cycle().unwrap_or(0);
    let epochs_per_sec = f64::from(bench.epochs) * 1_000.0 / elapsed_ms as f64;
    let kcycles_per_sec = simulated_cycles as f64 / elapsed_ms as f64;
    let max_delta = reports
        .iter()
        .map(|r| r.max_delta_vth_mv)
        .fold(0.0f64, f64::max);

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_campaign.json");
    let run = existing_runs(&out) + 1;
    let entry = format!(
        "{{\"run\":{run},\"mode\":\"local\",\"epochs\":{},\"measure_cycles\":{},\"warmup_cycles\":{},\
         \"rate\":{},\"elapsed_ms\":{elapsed_ms},\"epochs_per_sec\":{epochs_per_sec:.2},\
         \"kcycles_per_sec\":{kcycles_per_sec:.1},\"simulated_cycles\":{simulated_cycles},\
         \"checkpoint_bytes\":{checkpoint_bytes},\"max_delta_vth_mv\":{max_delta:.4},\
         \"chained_digest\":\"{:016x}\"}}",
        bench.epochs,
        bench.measure,
        bench.warmup,
        bench.rate,
        campaign.chained_digest()
    );
    append_entry(&out, &entry);
    println!(
        "campaign_epochs: {} epochs in {elapsed_ms} ms ({epochs_per_sec:.2} epochs/s, \
         {kcycles_per_sec:.1} kcycles/s), checkpoint {checkpoint_bytes} B, \
         max dVth {max_delta:.4} mV, chained digest {:016x}",
        bench.epochs,
        campaign.chained_digest()
    );
    println!("appended run {run} to {}", out.display());
}
