//! Regenerates the paper's **Table IV**: average and standard deviation of
//! per-VC NBTI-duty-cycles over random benchmark mixes (the SPLASH2/WCET
//! profile substitution), for the 4-core routers' east/west input ports and
//! the 16-core main-diagonal routers, with 2 VCs.

use nbti_noc_bench::RunOptions;
use sensorwise::tables::real_traffic_table_jobs;

fn main() {
    let opts = RunOptions::from_env();
    eprintln!("[table4] regenerating Table IV with {opts}");
    let table =
        real_traffic_table_jobs(opts.iterations, opts.warmup, opts.measure, opts.seed, opts.jobs);
    println!("=== Table IV (real traffic, 2 VCs) ===");
    print!("{}", table.render());
    println!(
        "Best MD-VC gap in this table: {:.1}% (paper's Table IV best: 18.9%)",
        table.best_gap()
    );
    // The paper's stability observation: the sensor-wise std on the MD VC
    // is smaller than the rr-no-sensor std.
    let stable = table
        .rows
        .iter()
        .filter(|r| r.sw_std[r.md_vc] <= r.rr_std[r.md_vc])
        .count();
    println!(
        "Rows where sensor-wise std on the MD VC <= rr std: {}/{} (paper: all)",
        stable,
        table.rows.len()
    );
}
