//! Regenerates the paper's **net NBTI Vth saving** headline (Conclusions):
//! the measured duty cycles are pushed through the Eq. 1 long-term model at
//! a ten-year horizon and compared against the NBTI-unaware baseline
//! (α = 1). The paper reports savings of up to 54.2 %.

use nbti_model::LongTermModel;
use nbti_noc_bench::RunOptions;
use sensorwise::analysis::{best_vth_saving, vth_saving_rows};
use sensorwise::tables::synthetic_table_jobs;

fn main() {
    let opts = RunOptions::from_env();
    eprintln!("[vth_savings] rerunning the synthetic scenarios with {opts}");
    let model = LongTermModel::calibrated_45nm();
    let mut all = Vec::new();
    for vcs in [2usize, 4] {
        let table = synthetic_table_jobs(vcs, opts.warmup, opts.measure, opts.jobs);
        let rows = vth_saving_rows(&table, &model);
        println!("=== 10-year Vth saving vs NBTI-unaware baseline ({vcs} VCs) ===");
        println!(
            "{:<16} {:>10} {:>10} {:>16} {:>16}",
            "Scenario", "α(sw)", "α(rr)", "saving(sw) %", "saving(rr) %"
        );
        for r in &rows {
            println!(
                "{:<16} {:>9.1}% {:>9.1}% {:>15.1}% {:>15.1}%",
                r.scenario,
                r.alpha_sensor_wise * 100.0,
                r.alpha_rr * 100.0,
                r.saving_vs_baseline,
                r.rr_saving_vs_baseline
            );
        }
        println!();
        all.extend(rows);
    }
    println!(
        "Best net Vth saving (sensor-wise vs baseline): {:.1}% (paper: up to 54.2%)",
        best_vth_saving(&all)
    );
}
