//! The gap-versus-load figure behind the paper's Table II/III trend
//! discussion (and the evidence for the `LOAD_CALIBRATION` factor, see
//! EXPERIMENTS.md): sweeps the *raw* injection rate from light load to
//! saturation and reports the rr − sensor-wise duty gap on the most
//! degraded VC for 2 and 4 VCs.
//!
//! Expected shape (matching the paper): with 2 VCs the gap rises, peaks
//! and *shrinks* once the network congests (Table III's declining Gap
//! column); with 4 VCs it keeps growing far longer (Table II's rising Gap
//! column).

use nbti_noc_bench::RunOptions;
use sensorwise::sweep::{gap_peak, gap_sweep_jobs};

fn main() {
    let opts = RunOptions::parse(std::env::args().skip(1));
    let scaled = RunOptions {
        measure: opts.measure.min(60_000),
        ..opts
    };
    eprintln!("[gap_sweep] sweeping raw injection rates with {scaled}");
    let rates = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let two = gap_sweep_jobs(
        4,
        2,
        &rates,
        scaled.warmup,
        scaled.measure,
        scaled.seed,
        scaled.jobs,
    );
    let four = gap_sweep_jobs(
        4,
        4,
        &rates,
        scaled.warmup,
        scaled.measure,
        scaled.seed,
        scaled.jobs,
    );

    println!("=== Gap vs raw injection rate (4-core mesh, router 0 east input) ===");
    println!(
        "{:>5} | {:>9} {:>9} {:>7} {:>8} | {:>9} {:>9} {:>7}",
        "rate", "rr2 MD", "sw2 MD", "gap2", "sw2 lat", "rr4 MD", "sw4 MD", "gap4"
    );
    for (p2, p4) in two.iter().zip(&four) {
        println!(
            "{:>5.2} | {:>8.1}% {:>8.1}% {:>6.1}% {:>8.1} | {:>8.1}% {:>8.1}% {:>6.1}%",
            p2.rate,
            p2.rr_md_duty,
            p2.sw_md_duty,
            p2.gap,
            p2.sw_latency,
            p4.rr_md_duty,
            p4.sw_md_duty,
            p4.gap
        );
    }
    let peak2 = gap_peak(&two).expect("non-empty sweep");
    let peak4 = gap_peak(&four).expect("non-empty sweep");
    println!(
        "\npeak gaps: 2 VCs {:.1}% at rate {:.2}; 4 VCs {:.1}% at rate {:.2}",
        peak2.gap, peak2.rate, peak4.gap, peak4.rate
    );
    println!(
        "expected shape: gap2 peaks and then falls as congestion removes the\n\
         gating headroom (the paper's Table III trend); gap4 keeps rising to a\n\
         ~25% peak (Table II, up to 26.6% in the paper)."
    );
}
