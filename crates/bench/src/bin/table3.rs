//! Regenerates the paper's **Table III**: same protocol as Table II but
//! with 2 VCs per input port.

use nbti_noc_bench::RunOptions;
use sensorwise::tables::synthetic_table_jobs;

fn main() {
    let opts = RunOptions::from_env();
    eprintln!("[table3] regenerating Table III with {opts}");
    let table = synthetic_table_jobs(2, opts.warmup, opts.measure, opts.jobs);
    println!("=== Table III (2 VCs) ===");
    print!("{}", table.render());
    println!(
        "Best MD-VC gap in this table: {:.1}% (paper's Table III best: 13.4%)",
        table.best_gap()
    );
}
