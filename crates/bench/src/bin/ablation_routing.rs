//! Routing-algorithm ablation (extension): does the sensor-wise advantage
//! depend on the deterministic XY routing the paper uses?
//!
//! West-First adds partial adaptivity (credit-based selection among the
//! allowed productive directions), which spreads load differently across
//! ports. The per-port duty cycles move, but the policy ordering — the
//! paper's actual claim — should not.

use nbti_noc_bench::RunOptions;
use noc_sim::config::NocConfig;
use noc_sim::routing::RoutingAlgorithm;
use noc_sim::types::NodeId;
use sensorwise::{
    run_batch, ExperimentConfig, ExperimentJob, PolicyKind, SyntheticScenario, TrafficSpec,
};

fn job(routing: RoutingAlgorithm, policy: PolicyKind, opts: &RunOptions) -> ExperimentJob {
    let scenario = SyntheticScenario {
        cores: 16,
        vcs: 2,
        injection_rate: 0.2,
    };
    let mut noc = NocConfig::paper_synthetic(scenario.cores, scenario.vcs);
    noc.routing = routing;
    ExperimentJob {
        cfg: ExperimentConfig::new(noc, policy)
            .with_cycles(opts.warmup, opts.measure)
            .with_pv_seed(scenario.seed()),
        traffic: TrafficSpec::Uniform {
            rate: scenario.effective_rate(),
            seed: scenario.seed() ^ 0x7261_6666,
        },
    }
}

fn main() {
    let opts = RunOptions::parse(std::env::args().skip(1));
    let scaled = RunOptions {
        measure: opts.measure.min(60_000),
        ..opts
    };
    eprintln!("[ablation_routing] {scaled}");
    println!("=== Routing ablation (16core-inj0.20, 2 VCs) ===\n");
    println!(
        "{:<12} | {:>9} {:>9} {:>8} | {:>10} {:>10}",
        "routing", "rr MD", "sw MD", "gap", "rr lat", "sw lat"
    );
    let routings = [
        ("XY", RoutingAlgorithm::XY),
        ("YX", RoutingAlgorithm::YX),
        ("west-first", RoutingAlgorithm::WestFirst),
    ];
    let batch: Vec<ExperimentJob> = routings
        .iter()
        .flat_map(|&(_, routing)| {
            PolicyKind::REFERENCE_PAIR
                .into_iter()
                .map(move |policy| job(routing, policy, &scaled))
        })
        .collect();
    let results = run_batch(&batch, scaled.jobs);
    for ((name, _), pair) in routings.iter().zip(results.chunks_exact(2)) {
        let (rr, sw) = (&pair[0], &pair[1]);
        let rr_md = rr.east_input(NodeId(0)).md_duty();
        let sw_md = sw.east_input(NodeId(0)).md_duty();
        let rr_lat = rr.net.avg_latency().unwrap_or(f64::NAN);
        let sw_lat = sw.net.avg_latency().unwrap_or(f64::NAN);
        println!(
            "{name:<12} | {rr_md:>8.1}% {sw_md:>8.1}% {:>7.1}% | {rr_lat:>10.1} {sw_lat:>10.1}",
            rr_md - sw_md
        );
    }
    println!(
        "\nreading: the sensor-wise gap is a property of the VC allocation and\n\
         gating scheme, not of the routing function — it survives deterministic\n\
         and partially adaptive routing alike."
    );
}
