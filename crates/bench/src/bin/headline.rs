//! Summarises every headline number of the paper in one run:
//!
//! * up to 26.6 % activity-factor improvement on synthetic traffic (E7),
//! * up to 18.9 % on real traffic (E7),
//! * up to 54.2 % net ten-year Vth saving vs the baseline (E5),
//! * up to 23 % cooperative gain (E6),
//! * area overhead below 4 % (E4).

use nbti_model::LongTermModel;
use nbti_noc_bench::RunOptions;
use sensorwise::analysis::{
    best_cooperative_gain, best_vth_saving, cooperative_gain_rows, vth_saving_rows,
};
use sensorwise::tables::{real_traffic_table_jobs, synthetic_table_jobs};

fn main() {
    let opts = RunOptions::from_env();
    eprintln!("[headline] running all experiments with {opts}");
    let model = LongTermModel::calibrated_45nm();

    let t2 = synthetic_table_jobs(4, opts.warmup, opts.measure, opts.jobs);
    let t3 = synthetic_table_jobs(2, opts.warmup, opts.measure, opts.jobs);
    let t4 = real_traffic_table_jobs(opts.iterations, opts.warmup, opts.measure, opts.seed, opts.jobs);

    let synth_gap = t2.best_gap().max(t3.best_gap());
    let real_gap = t4.best_gap();

    let mut savings = vth_saving_rows(&t2, &model);
    savings.extend(vth_saving_rows(&t3, &model));
    let best_saving = best_vth_saving(&savings);

    let mut coop = cooperative_gain_rows(&t2);
    coop.extend(cooperative_gain_rows(&t3));
    let best_coop = best_cooperative_gain(&coop);

    let area = noc_area::analyze(&noc_area::AreaParams::paper_45nm());

    println!("=== Headline summary (measured vs paper) ===");
    println!(
        "synthetic activity-factor improvement : {:>6.1}%   (paper: up to 26.6%)",
        synth_gap
    );
    println!(
        "real-traffic activity-factor improv.  : {:>6.1}%   (paper: up to 18.9%)",
        real_gap
    );
    println!(
        "net 10-year Vth saving vs baseline    : {:>6.1}%   (paper: up to 54.2%)",
        best_saving
    );
    println!(
        "cooperative gain (traffic info)       : {:>6.1}%   (paper: up to 23%)",
        best_coop
    );
    println!(
        "area overhead per tile                : {:>6.2}%   (paper: below 4%)",
        area.total_overhead_percent
    );
}
