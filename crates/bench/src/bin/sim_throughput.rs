//! Simulator throughput bench: kcycles/sec of the full experiment loop
//! with the per-cycle stage profiler attached, appended to
//! `BENCH_sim.json`.
//!
//! Each invocation runs one profiled experiment of the standard synthetic
//! scenario, prints the per-stage p50/p95/p99 latency table (the same one
//! `nbti-noc run --profile` shows), and records wall time, kcycles/sec
//! and the per-stage mean costs. Regressions in the cycle loop — routing,
//! allocation, traversal, or the gating controller — show up both as a
//! throughput drop and as growth in the stage that caused it.
//!
//! Usage: `cargo run --release -p nbti-noc-bench --bin sim_throughput`
//! `[-- --cores N --vcs V --rate R --policy P --warmup N --measure N]`

use noc_service::clock;
use noc_telemetry::Stage;
use sensorwise::{ExperimentJob, PolicyKind, SyntheticScenario};
use std::fs;
use std::path::Path;

struct BenchConfig {
    cores: usize,
    vcs: usize,
    rate: f64,
    policy: PolicyKind,
    warmup: u64,
    measure: u64,
}

fn parse_args() -> BenchConfig {
    let mut cfg = BenchConfig {
        cores: 16,
        vcs: 2,
        rate: 0.2,
        policy: PolicyKind::SensorWise,
        warmup: 1_000,
        measure: 20_000,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = it.next().map(|v| v.as_str()).unwrap_or("");
        match arg.as_str() {
            "--cores" => cfg.cores = value.parse().expect("--cores"),
            "--vcs" => cfg.vcs = value.parse().expect("--vcs"),
            "--rate" => cfg.rate = value.parse().expect("--rate"),
            "--policy" => cfg.policy = PolicyKind::parse(value).expect("--policy"),
            "--warmup" => cfg.warmup = value.parse().expect("--warmup"),
            "--measure" => cfg.measure = value.parse().expect("--measure"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    cfg
}

/// Appends `entry` to the JSON array in `path`, creating it on first run.
fn append_entry(path: &Path, entry: &str) {
    let body = match fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end().trim_end_matches(']').trim_end();
            let trimmed = trimmed.trim_end_matches(',');
            format!("{trimmed},\n  {entry}\n]\n")
        }
        Err(_) => format!("[\n  {entry}\n]\n"),
    };
    fs::write(path, body).expect("write BENCH_sim.json");
}

/// Entries already recorded, for the monotone run index.
fn existing_runs(path: &Path) -> u64 {
    fs::read_to_string(path)
        .map(|s| s.matches("\"run\":").count() as u64)
        .unwrap_or(0)
}

fn main() {
    let bench = parse_args();
    let scenario = SyntheticScenario {
        cores: bench.cores,
        vcs: bench.vcs,
        injection_rate: bench.rate,
    };
    let mut job: ExperimentJob = scenario.job(bench.policy, bench.warmup, bench.measure);
    job.traffic = job.traffic.with_seed(1);

    let started = clock::now();
    let (result, prof) = job.run_profiled();
    let elapsed_ms = clock::millis_since(started).max(1);

    let cycles = bench.warmup + bench.measure;
    let kcycles_per_sec = cycles as f64 / elapsed_ms as f64;
    let report = prof.report();
    print!("{report}");

    // Per-stage mean ns, in pipeline order, for the trajectory entry.
    let stage_means: Vec<String> = Stage::ALL
        .iter()
        .map(|&s| format!("\"{}\":{}", s.name(), prof.stage(s).mean()))
        .collect();

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sim.json");
    let run = existing_runs(&out) + 1;
    let entry = format!(
        "{{\"run\":{run},\"cores\":{},\"vcs\":{},\"rate\":{},\"policy\":\"{}\",\
         \"cycles\":{cycles},\"elapsed_ms\":{elapsed_ms},\
         \"kcycles_per_sec\":{kcycles_per_sec:.1},\"packets_ejected\":{},\
         \"mean_ns\":{{{}}}}}",
        bench.cores,
        bench.vcs,
        bench.rate,
        bench.policy.label(),
        result.net.packets_ejected,
        stage_means.join(",")
    );
    append_entry(&out, &entry);
    println!(
        "sim_throughput: {cycles} cycles in {elapsed_ms} ms ({kcycles_per_sec:.1} kcycles/s), \
         {} packets, policy {}",
        result.net.packets_ejected,
        bench.policy.label()
    );
    println!("appended run {run} to {}", out.display());
}
