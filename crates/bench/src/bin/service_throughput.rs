//! Service throughput bench: jobs/sec and request-latency percentiles
//! through the full HTTP path, appended to `BENCH_service.json`.
//!
//! An in-process server (real sockets on an ephemeral port) is driven by
//! concurrent submitters; every job runs the standard 4-core scenario.
//! Each invocation appends one entry to the trajectory file, so regressions
//! in the serving layer show up as a drop between consecutive runs.
//!
//! Usage: `cargo run --release -p nbti-noc-bench --bin service_throughput`
//! `[-- --count N --workers N --queue-depth N --concurrency N --measure N]`

use noc_service::{clock, Server, ServiceClient, ServiceConfig};
use sensorwise::{parallel_map, spec_to_json, PolicyKind, SyntheticScenario};
use std::fs;
use std::path::Path;

struct BenchConfig {
    count: usize,
    workers: usize,
    queue_depth: usize,
    concurrency: usize,
    measure: u64,
}

fn parse_args() -> BenchConfig {
    let mut cfg = BenchConfig {
        count: 24,
        workers: 4,
        queue_depth: 8,
        concurrency: 8,
        measure: 2_000,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = it.next().map(|v| v.as_str()).unwrap_or("");
        match arg.as_str() {
            "--count" => cfg.count = value.parse().expect("--count"),
            "--workers" => cfg.workers = value.parse().expect("--workers"),
            "--queue-depth" => cfg.queue_depth = value.parse().expect("--queue-depth"),
            "--concurrency" => cfg.concurrency = value.parse().expect("--concurrency"),
            "--measure" => cfg.measure = value.parse().expect("--measure"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    cfg
}

/// Nearest-rank percentile of a sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Appends `entry` to the JSON array in `path`, creating it on first run.
fn append_entry(path: &Path, entry: &str) {
    let body = match fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end().trim_end_matches(']').trim_end();
            let trimmed = trimmed.trim_end_matches(',');
            format!("{trimmed},\n  {entry}\n]\n")
        }
        Err(_) => format!("[\n  {entry}\n]\n"),
    };
    fs::write(path, body).expect("write BENCH_service.json");
}

/// Entries already recorded, for the monotone run index.
fn existing_runs(path: &Path) -> u64 {
    fs::read_to_string(path)
        .map(|s| s.matches("\"run\":").count() as u64)
        .unwrap_or(0)
}

fn main() {
    let bench = parse_args();
    let server = Server::start(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: bench.workers,
        queue_depth: bench.queue_depth,
        job_timeout_ms: 0,
        spans_out: None,
    })
    .expect("ephemeral bind");
    let client = ServiceClient::new(server.local_addr().to_string());

    let scenario = SyntheticScenario {
        cores: 4,
        vcs: 2,
        injection_rate: 0.15,
    };
    let specs: Vec<String> = (0..bench.count)
        .map(|i| {
            let mut job = scenario.job(PolicyKind::SensorWise, 200, bench.measure);
            job.cfg.telemetry.trace = true;
            job.traffic = job.traffic.with_seed(1 + i as u64);
            spec_to_json(&job).expect("servable spec")
        })
        .collect();

    let started = clock::now();
    let per_job: Vec<Vec<u64>> = parallel_map(&specs, bench.concurrency, |_, spec| {
        let mut latencies = Vec::new();
        let (id, _, submit_lat) = client.submit_with_retry(spec, 10_000).expect("submits");
        latencies.extend(submit_lat);
        loop {
            let probe = clock::now();
            let status = client.status(id).expect("status");
            latencies.push(clock::millis_since(probe));
            if status.is_terminal() {
                assert_eq!(status.status, "done", "bench job must complete");
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let probe = clock::now();
        client
            .result(id)
            .expect("result")
            .expect("done job serves a result");
        latencies.push(clock::millis_since(probe));
        latencies
    });
    let elapsed_ms = clock::millis_since(started).max(1);

    server.request_shutdown(false);
    let report = server.wait();
    assert_eq!(report.completed as usize, bench.count, "{report:?}");
    assert!(report.accounts_for_all(), "{report:?}");

    let mut latencies: Vec<u64> = per_job.into_iter().flatten().collect();
    latencies.sort_unstable();
    let requests = latencies.len();
    let jobs_per_sec = bench.count as f64 * 1_000.0 / elapsed_ms as f64;
    let p50 = percentile(&latencies, 0.5);
    let p99 = percentile(&latencies, 0.99);

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json");
    let run = existing_runs(&out) + 1;
    let entry = format!(
        "{{\"run\":{run},\"jobs\":{},\"workers\":{},\"queue_depth\":{},\"concurrency\":{},\
         \"measure_cycles\":{},\"elapsed_ms\":{elapsed_ms},\"jobs_per_sec\":{jobs_per_sec:.1},\
         \"requests\":{requests},\"request_p50_ms\":{p50},\"request_p99_ms\":{p99},\
         \"rejected_busy\":{}}}",
        bench.count,
        bench.workers,
        bench.queue_depth,
        bench.concurrency,
        bench.measure,
        report.rejected_busy
    );
    append_entry(&out, &entry);
    println!(
        "service_throughput: {} jobs in {elapsed_ms} ms ({jobs_per_sec:.1} jobs/s), \
         {requests} requests, p50 {p50} ms, p99 {p99} ms, {} busy rejections",
        bench.count, report.rejected_busy
    );
    println!("appended run {run} to {}", out.display());
}
