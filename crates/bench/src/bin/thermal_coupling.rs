//! Temperature-coupled NBTI evaluation (extension).
//!
//! The paper evaluates Eq. 1 at a fixed operating temperature. In reality
//! gating also reduces leakage power, which lowers the tile temperature,
//! which — through the Arrhenius `C(T)` term — slows NBTI further. This
//! binary closes that loop with the first-order thermal model: measured
//! duty cycles → leakage power → steady-state tile temperature → ΔVth at
//! that temperature.

use nbti_model::thermal::{ThermalNode, ThermalParams};
use nbti_model::{LongTermModel, NbtiParams};
use nbti_noc_bench::RunOptions;
use noc_area::power::{gating_power_report, PowerParams};
use sensorwise::{run_batch, ExperimentJob, PolicyKind, SyntheticScenario};

fn main() {
    let opts = RunOptions::from_env();
    let scaled = RunOptions {
        measure: opts.measure.min(80_000),
        ..opts
    };
    eprintln!("[thermal_coupling] {scaled}");
    let scenario = SyntheticScenario {
        cores: 16,
        vcs: 4,
        injection_rate: 0.2,
    };
    let mut power_params = PowerParams::paper_45nm();
    power_params.arch.vcs = scenario.vcs;
    // Baseline tile power besides NoC buffers (core + caches), so the
    // buffer leakage delta moves the temperature realistically.
    let tile_base_w = 0.8;

    println!(
        "=== Temperature-coupled 10-year ΔVth on the MD VC ({}) ===\n",
        scenario.name()
    );
    println!(
        "{:<24} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "policy", "MD duty", "buffers", "tile T", "ΔVth fixed", "ΔVth coupled"
    );
    let batch: Vec<ExperimentJob> = PolicyKind::ALL
        .into_iter()
        .map(|policy| scenario.job(policy, scaled.warmup, scaled.measure))
        .collect();
    let results = run_batch(&batch, scaled.jobs);
    for (policy, r) in PolicyKind::ALL.into_iter().zip(&results) {
        let port = r.east_input(noc_sim::types::NodeId(0));
        let duty: Vec<f64> = r
            .ports
            .iter()
            .flat_map(|p| p.duty_percent.iter().map(|d| d / 100.0))
            .collect();
        let flit_hops: u64 = r.ports.iter().map(|p| p.flits_received).sum();
        let report = gating_power_report(&power_params, &duty, flit_hops, r.measured_cycles);
        // Per-tile buffer power (the network total divided over tiles).
        let buffers_w = (report.leakage_actual_uw + report.dynamic_uw) * 1e-6 / 16.0;
        let node = ThermalNode::new(ThermalParams::typical_tile());
        let t_k = node.steady_state_k(tile_base_w + buffers_w);

        let fixed_model = LongTermModel::calibrated_45nm();
        let mut coupled_params = *fixed_model.params();
        coupled_params.temperature_k = t_k;
        let coupled_model = LongTermModel::new(coupled_params);

        let alpha = port.md_duty() / 100.0;
        let fixed = fixed_model.delta_vth(alpha, NbtiParams::TEN_YEARS_S);
        let coupled = coupled_model.delta_vth(alpha, NbtiParams::TEN_YEARS_S);
        println!(
            "{:<24} {:>7.1}% {:>7.1} uW {:>9.2} K {:>9.1} mV {:>9.1} mV",
            policy.label(),
            port.md_duty(),
            report.leakage_actual_uw / 16.0,
            t_k,
            fixed.as_millivolts(),
            coupled.as_millivolts()
        );
    }
    println!(
        "\nreading: the buffer-leakage delta between policies moves the tile\n\
         temperature only slightly (buffers are a small share of tile power),\n\
         so the duty-cycle reduction — not the thermal feedback — carries the\n\
         paper's NBTI saving. The coupling becomes relevant for buffer-rich\n\
         designs or higher thermal resistance."
    );
}
