//! Buffer-depth ablation: how the sensor-wise gap depends on the VC buffer
//! depth (the paper fixes 4 flits; this design-choice sweep quantifies the
//! sensitivity).
//!
//! Shallower buffers lengthen wormhole backpressure and keep VCs busy
//! longer (higher duty overall, less gating headroom); deeper buffers let
//! packets stream through and widen the gap.

use nbti_noc_bench::RunOptions;
use noc_sim::config::NocConfig;
use noc_sim::topology::Mesh2D;
use noc_sim::types::NodeId;
use noc_traffic::synthetic::SyntheticTraffic;
use sensorwise::{run_experiment, ExperimentConfig, PolicyKind, SyntheticScenario};

fn run(depth: usize, policy: PolicyKind, opts: &RunOptions) -> f64 {
    let scenario = SyntheticScenario {
        cores: 4,
        vcs: 2,
        injection_rate: 0.2,
    };
    let mut noc = NocConfig::paper_synthetic(scenario.cores, scenario.vcs);
    noc.buffer_depth = depth;
    let mesh = Mesh2D::new(noc.cols, noc.rows);
    let mut traffic = SyntheticTraffic::uniform(
        mesh,
        scenario.effective_rate(),
        noc.flits_per_packet,
        scenario.seed() ^ 0x7261_6666,
    );
    let cfg = ExperimentConfig::new(noc, policy)
        .with_cycles(opts.warmup, opts.measure)
        .with_pv_seed(scenario.seed());
    let r = run_experiment(&cfg, &mut traffic);
    r.east_input(NodeId(0)).md_duty()
}

fn main() {
    let opts = RunOptions::parse(std::env::args().skip(1));
    let scaled = RunOptions {
        measure: opts.measure.min(60_000),
        ..opts
    };
    eprintln!("[ablation_depth] {scaled}");
    println!("=== Buffer-depth ablation (4core-inj0.20, 2 VCs) ===\n");
    println!(
        "{:>6} {:>10} {:>10} {:>8}",
        "depth", "rr MD", "sw MD", "gap"
    );
    for depth in [1usize, 2, 4, 8, 16] {
        let rr = run(depth, PolicyKind::RrNoSensor, &scaled);
        let sw = run(depth, PolicyKind::SensorWise, &scaled);
        println!("{depth:>6} {rr:>9.1}% {sw:>9.1}% {:>7.1}%", rr - sw);
    }
    println!("\nreading: the paper's 4-flit buffers sit where the gap is already healthy;\nvery shallow buffers throttle the network and erase the headroom.");
}
