//! Buffer-depth ablation: how the sensor-wise gap depends on the VC buffer
//! depth (the paper fixes 4 flits; this design-choice sweep quantifies the
//! sensitivity).
//!
//! Shallower buffers lengthen wormhole backpressure and keep VCs busy
//! longer (higher duty overall, less gating headroom); deeper buffers let
//! packets stream through and widen the gap.

use nbti_noc_bench::RunOptions;
use noc_sim::config::NocConfig;
use noc_sim::types::NodeId;
use sensorwise::{
    run_batch, ExperimentConfig, ExperimentJob, PolicyKind, SyntheticScenario, TrafficSpec,
};

fn job(depth: usize, policy: PolicyKind, opts: &RunOptions) -> ExperimentJob {
    let scenario = SyntheticScenario {
        cores: 4,
        vcs: 2,
        injection_rate: 0.2,
    };
    let mut noc = NocConfig::paper_synthetic(scenario.cores, scenario.vcs);
    noc.buffer_depth = depth;
    ExperimentJob {
        cfg: ExperimentConfig::new(noc, policy)
            .with_cycles(opts.warmup, opts.measure)
            .with_pv_seed(scenario.seed()),
        traffic: TrafficSpec::Uniform {
            rate: scenario.effective_rate(),
            seed: scenario.seed() ^ 0x7261_6666,
        },
    }
}

fn main() {
    let opts = RunOptions::parse(std::env::args().skip(1));
    let scaled = RunOptions {
        measure: opts.measure.min(60_000),
        ..opts
    };
    eprintln!("[ablation_depth] {scaled}");
    println!("=== Buffer-depth ablation (4core-inj0.20, 2 VCs) ===\n");
    println!(
        "{:>6} {:>10} {:>10} {:>8}",
        "depth", "rr MD", "sw MD", "gap"
    );
    let depths = [1usize, 2, 4, 8, 16];
    let batch: Vec<ExperimentJob> = depths
        .iter()
        .flat_map(|&depth| {
            PolicyKind::REFERENCE_PAIR
                .into_iter()
                .map(move |policy| (depth, policy))
        })
        .map(|(depth, policy)| job(depth, policy, &scaled))
        .collect();
    let results = run_batch(&batch, scaled.jobs);
    for (depth, pair) in depths.iter().zip(results.chunks_exact(2)) {
        let rr = pair[0].east_input(NodeId(0)).md_duty();
        let sw = pair[1].east_input(NodeId(0)).md_duty();
        println!("{depth:>6} {rr:>9.1}% {sw:>9.1}% {:>7.1}%", rr - sw);
    }
    println!("\nreading: the paper's 4-flit buffers sit where the gap is already healthy;\nvery shallow buffers throttle the network and erase the headroom.");
}
