//! Model-checks the sensor-wise protocol: exhaustive breadth-first state
//! space exploration of the reference 2×2/2-VC mesh for every gating
//! policy, with the full invariant oracle (gating safety, VC-state
//! consistency, flit/credit conservation, the idle-on budget, duty
//! closure) consulted at every reachable state.
//!
//! Exits nonzero if any policy yields a counterexample or fails to
//! exhaust its reachable space — `scripts/ci.sh` runs this as a gate.

use nbti_noc_bench::RunOptions;
use sensorwise::modelcheck::{default_cases, model_check};
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = RunOptions::from_env();
    let cases = default_cases();
    eprintln!(
        "[model_check] {} policies, depth={} jobs={}",
        cases.len(),
        cases.first().map_or(0, |c| c.depth),
        opts.jobs
    );
    let report = model_check(&cases, opts.jobs);
    print!("{}", report.render());
    let unexhausted = report
        .outcomes
        .iter()
        .filter(|o| !o.report.exhausted)
        .count();
    if report.ok() && unexhausted == 0 {
        println!(
            "model check passed: {} policies, every reachable state explored, 0 violations",
            cases.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "model check FAILED: {} violation(s) across {} case(s), {} case(s) not exhausted",
            report.total_violations(),
            report.failures().count(),
            unexhausted
        );
        ExitCode::FAILURE
    }
}
