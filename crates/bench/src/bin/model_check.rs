//! Model-checks the sensor-wise protocol: every gating policy × small
//! meshes × traffic patterns × injection rates, each run with
//! `InvariantLevel::Full` so every cycle asserts gating safety, VC-state
//! consistency, flit/credit conservation, the idle-on budget, and duty
//! closure.
//!
//! Exits nonzero if any case reports a violation — `scripts/ci.sh` runs
//! this as a gate.

use nbti_noc_bench::RunOptions;
use sensorwise::modelcheck::{default_cases, model_check};
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = RunOptions::from_env();
    let cases = default_cases();
    // The default 20k/200k table budget is overkill for 2×2 and 3×3
    // meshes; cap the per-case budget so the full matrix stays CI-sized
    // unless the caller explicitly asks for longer runs.
    let warmup = opts.warmup.min(2_000);
    let measure = opts.measure.min(10_000);
    eprintln!(
        "[model_check] {} cases, warmup={warmup} measure={measure} jobs={}",
        cases.len(),
        opts.jobs
    );
    let report = model_check(&cases, warmup, measure, opts.jobs);
    print!("{}", report.render());
    if report.ok() {
        println!("model check passed: {} cases, 0 violations", cases.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "model check FAILED: {} violation(s) across {} case(s)",
            report.total_violations(),
            report.failures().count()
        );
        ExitCode::FAILURE
    }
}
