//! rr-no-sensor rotation-period ablation.
//!
//! Algorithm 1 rotates the `active_candidate` "on a time basis" without
//! specifying the period. This sweep shows why the choice barely matters
//! for the *average* but matters for *balance*: slow rotation keeps the
//! same VC designated for long stretches, skewing duty across VCs, while
//! per-cycle rotation equalizes them (the flat rows of Tables II/III).

use nbti_noc_bench::RunOptions;
use noc_sim::config::NocConfig;
use noc_sim::types::NodeId;
use sensorwise::{
    run_batch, ExperimentConfig, ExperimentJob, PolicyKind, SyntheticScenario, TrafficSpec,
};

fn main() {
    let opts = RunOptions::parse(std::env::args().skip(1));
    let scaled = RunOptions {
        measure: opts.measure.min(60_000),
        ..opts
    };
    eprintln!("[ablation_rotation] {scaled}");
    let scenario = SyntheticScenario {
        cores: 4,
        vcs: 4,
        injection_rate: 0.2,
    };
    println!(
        "=== rr-no-sensor candidate rotation period ({}) ===\n",
        scenario.name()
    );
    println!(
        "{:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "period", "VC0", "VC1", "VC2", "VC3", "spread"
    );
    let periods = [1u64, 8, 64, 512, 4096, 32_768];
    let batch: Vec<ExperimentJob> = periods
        .iter()
        .map(|&period| {
            let noc = NocConfig::paper_synthetic(scenario.cores, scenario.vcs);
            let mut cfg = ExperimentConfig::new(noc, PolicyKind::RrNoSensor)
                .with_cycles(scaled.warmup, scaled.measure)
                .with_pv_seed(scenario.seed());
            cfg.rr_rotation_period = period;
            ExperimentJob {
                cfg,
                traffic: TrafficSpec::Uniform {
                    rate: scenario.effective_rate(),
                    seed: scenario.seed() ^ 0x7261_6666,
                },
            }
        })
        .collect();
    let results = run_batch(&batch, scaled.jobs);
    for (&period, r) in periods.iter().zip(&results) {
        let d = &r.east_input(NodeId(0)).duty_percent;
        let min = d.iter().cloned().fold(f64::MAX, f64::min);
        let max = d.iter().cloned().fold(f64::MIN, f64::max);
        println!(
            "{:>8} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>9.1}%",
            period,
            d[0],
            d[1],
            d[2],
            d[3],
            max - min
        );
    }
    println!("\nreading: faster rotation, flatter duty — the reference policy's fairness knob.");
}
