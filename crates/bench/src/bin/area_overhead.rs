//! Regenerates the paper's **Section III-D** area-overhead analysis:
//! 16 NBTI sensors ≈ 3.25 % of the router, control links ≈ 3.8 % of a
//! 64-bit data link, Algorithm 2 logic negligible, total below 4 %.

use noc_area::{analyze, AreaParams};

fn main() {
    for (label, params) in [
        ("45 nm (paper's node)", AreaParams::paper_45nm()),
        ("32 nm (scaled)", AreaParams::paper_32nm()),
    ] {
        println!("=== Sensor-wise area overhead @ {label} ===");
        println!("{}", analyze(&params));
        println!();
    }
}
