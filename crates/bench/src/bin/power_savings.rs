//! Leakage side-effect of NBTI gating (extension): every recovery cycle
//! also cuts the buffer's leakage through the same header PMOS. This
//! binary reruns a synthetic scenario under each policy and feeds the
//! measured duty cycles into the ORION-style power model.

use nbti_noc_bench::RunOptions;
use noc_area::power::{gating_power_report, PowerParams};
use sensorwise::{run_batch, ExperimentJob, PolicyKind, SyntheticScenario};

fn main() {
    let opts = RunOptions::from_env();
    let scaled = RunOptions {
        measure: opts.measure.min(80_000),
        ..opts
    };
    eprintln!("[power_savings] {scaled}");
    let scenario = SyntheticScenario {
        cores: 16,
        vcs: 4,
        injection_rate: 0.2,
    };
    let mut params = PowerParams::paper_45nm();
    params.arch.vcs = scenario.vcs;
    println!(
        "=== Network-wide buffer leakage under gating ({}, {} VCs) ===\n",
        scenario.name(),
        scenario.vcs
    );
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>10}",
        "policy", "always-on", "actual", "saved", "net"
    );
    let batch: Vec<ExperimentJob> = PolicyKind::ALL
        .into_iter()
        .map(|policy| scenario.job(policy, scaled.warmup, scaled.measure))
        .collect();
    let results = run_batch(&batch, scaled.jobs);
    for (policy, r) in PolicyKind::ALL.into_iter().zip(&results) {
        // Every monitored VC buffer in the network, with its duty cycle.
        let duty: Vec<f64> = r
            .ports
            .iter()
            .flat_map(|p| p.duty_percent.iter().map(|d| d / 100.0))
            .collect();
        // One buffer write per flit per hop: the sum of flits received
        // across all buffer ports is exactly the dynamic event count.
        let flit_hops: u64 = r.ports.iter().map(|p| p.flits_received).sum();
        let report = gating_power_report(&params, &duty, flit_hops, r.measured_cycles);
        println!(
            "{:<24} {:>9.1} uW {:>9.1} uW {:>9.1} uW {:>9.1}%",
            policy.label(),
            report.leakage_baseline_uw,
            report.leakage_actual_uw,
            report.leakage_saved_uw,
            report.net_saving_percent
        );
    }
    println!(
        "\nreading: the paper's NBTI recovery doubles as leakage gating. The\n\
         traffic-aware policies (rr-no-sensor and sensor-wise) save the same\n\
         total leakage — both keep exactly one idle buffer per busy port —\n\
         while sensor-wise additionally redistributes WHICH buffer stays\n\
         powered, which is where the NBTI gain comes from. The no-traffic\n\
         variant wastes leakage by keeping a buffer awake on silent ports."
    );
}
