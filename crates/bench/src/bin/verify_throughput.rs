//! Explorer throughput bench: states/second and peak seen-set size of the
//! exhaustive gating-protocol verification, appended to `BENCH_verify.json`.
//!
//! Runs the breadth-first explorer over every checked policy (exact mode
//! and symmetry-reduced mode) at the full closure depth and records the
//! aggregate throughput, so regressions in the state encoder, the
//! seen-set, or the replay-based expansion show up as a drop between
//! consecutive runs.
//!
//! Usage: `cargo run --release -p nbti-noc-bench --bin verify_throughput`
//! `[-- --depth N --symmetry-only]`

use noc_modelcheck::{explore, StandardOracle};
use noc_service::clock;
use sensorwise::modelcheck::{checked_policies, controller_for, explore_config_for, DEFAULT_DEPTH};
use std::fs;
use std::path::Path;

struct BenchConfig {
    depth: usize,
    /// Skip the (slower) exact-mode pass and measure only the
    /// symmetry-reduced explorations.
    symmetry_only: bool,
}

fn parse_args() -> BenchConfig {
    let mut cfg = BenchConfig {
        depth: DEFAULT_DEPTH,
        symmetry_only: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--depth" => {
                let value = it.next().expect("--depth needs a value");
                cfg.depth = value.parse().expect("--depth");
            }
            "--symmetry-only" => cfg.symmetry_only = true,
            other => panic!("unknown argument `{other}`"),
        }
    }
    cfg
}

/// Appends `entry` to the JSON array in `path`, creating it on first run.
fn append_entry(path: &Path, entry: &str) {
    let body = match fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end().trim_end_matches(']').trim_end();
            let trimmed = trimmed.trim_end_matches(',');
            format!("{trimmed},\n  {entry}\n]\n")
        }
        Err(_) => format!("[\n  {entry}\n]\n"),
    };
    fs::write(path, body).expect("write BENCH_verify.json");
}

/// Entries already recorded, for the monotone run index.
fn existing_runs(path: &Path) -> u64 {
    fs::read_to_string(path)
        .map(|s| s.matches("\"run\":").count() as u64)
        .unwrap_or(0)
}

fn main() {
    let bench = parse_args();
    let modes: &[bool] = if bench.symmetry_only {
        &[true]
    } else {
        &[false, true]
    };

    let mut total_states = 0usize;
    let mut total_transitions = 0usize;
    let mut peak_seen = 0usize;
    let mut exact_states = 0usize;
    let mut symmetry_states = 0usize;
    let started = clock::now();
    for &symmetry in modes {
        for policy in checked_policies() {
            let cfg = explore_config_for(policy, bench.depth, symmetry);
            let mut ctrl = controller_for(policy);
            let report = explore(&cfg, &mut ctrl, &mut StandardOracle);
            assert!(
                report.counterexample.is_none(),
                "clean protocol must verify: {policy:?}"
            );
            assert!(
                report.exhausted,
                "depth {} must close the space for {policy:?}",
                bench.depth
            );
            total_states += report.unique_states;
            total_transitions += report.transitions;
            peak_seen = peak_seen.max(report.peak_seen);
            if symmetry {
                symmetry_states += report.unique_states;
            } else {
                exact_states += report.unique_states;
            }
            eprintln!(
                "[verify_throughput] {}{}: {}",
                policy.label(),
                if symmetry { " (symmetry)" } else { "" },
                report.summary()
            );
        }
    }
    let elapsed_ms = clock::millis_since(started).max(1);
    let states_per_sec = total_states as f64 * 1_000.0 / elapsed_ms as f64;

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_verify.json");
    let run = existing_runs(&out) + 1;
    let entry = format!(
        "{{\"run\":{run},\"depth\":{},\"policies\":{},\"modes\":{},\
         \"unique_states\":{total_states},\"exact_states\":{exact_states},\
         \"symmetry_states\":{symmetry_states},\"transitions\":{total_transitions},\
         \"peak_seen\":{peak_seen},\"elapsed_ms\":{elapsed_ms},\
         \"states_per_sec\":{states_per_sec:.0}}}",
        bench.depth,
        checked_policies().len(),
        modes.len()
    );
    append_entry(&out, &entry);
    println!(
        "verify_throughput: {total_states} states ({total_transitions} transitions) in \
         {elapsed_ms} ms ({states_per_sec:.0} states/s), peak seen-set {peak_seen}",
    );
    println!("appended run {run} to {}", out.display());
}
