//! Distributed campaign throughput bench: epochs/sec through the remote
//! dispatch plane — two in-process `noc-service` workers sharing one
//! content-addressed result store, every epoch dispatched over HTTP and
//! integrated from the wire — appended to `BENCH_campaign.json` with
//! `"mode":"remote"`.
//!
//! Each invocation first runs the identical campaign in-process (the
//! digest oracle, recorded as the baseline), then dispatches it through a
//! [`RemoteExecutor`] and records wall time, epochs/sec, and the dispatch
//! span p50/p99 — the per-epoch submit→poll→result round-trip overhead
//! the distributed plane adds on top of simulation.
//!
//! Usage: `cargo run --release -p nbti-noc-bench --bin campaign_remote`
//! `[-- --epochs N --measure N --warmup N --rate R]`

use noc_campaign::{Campaign, CampaignSpec, FsResultStore, RemoteExecutor, WorkerPool};
use noc_service::{clock, Server, ServiceConfig};
use noc_telemetry::SpanKind;
use sensorwise::{ExperimentJob, PolicyKind, SyntheticScenario};
use std::fs;
use std::path::Path;
use std::sync::Arc;

struct BenchConfig {
    epochs: u32,
    measure: u64,
    warmup: u64,
    rate: f64,
}

fn parse_args() -> BenchConfig {
    let mut cfg = BenchConfig {
        epochs: 8,
        measure: 5_000,
        warmup: 500,
        rate: 0.15,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = it.next().map(|v| v.as_str()).unwrap_or("");
        match arg.as_str() {
            "--epochs" => cfg.epochs = value.parse().expect("--epochs"),
            "--measure" => cfg.measure = value.parse().expect("--measure"),
            "--warmup" => cfg.warmup = value.parse().expect("--warmup"),
            "--rate" => cfg.rate = value.parse().expect("--rate"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    cfg
}

/// Appends `entry` to the JSON array in `path`, creating it on first run.
fn append_entry(path: &Path, entry: &str) {
    let body = match fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end().trim_end_matches(']').trim_end();
            let trimmed = trimmed.trim_end_matches(',');
            format!("{trimmed},\n  {entry}\n]\n")
        }
        Err(_) => format!("[\n  {entry}\n]\n"),
    };
    fs::write(path, body).expect("write BENCH_campaign.json");
}

/// Entries already recorded, for the monotone run index.
fn existing_runs(path: &Path) -> u64 {
    fs::read_to_string(path)
        .map(|s| s.matches("\"run\":").count() as u64)
        .unwrap_or(0)
}

fn spec(bench: &BenchConfig) -> CampaignSpec {
    let scenario = SyntheticScenario {
        cores: 4,
        vcs: 2,
        injection_rate: bench.rate,
    };
    let mut job: ExperimentJob = scenario.job(PolicyKind::SensorWise, bench.warmup, bench.measure);
    job.traffic = job.traffic.with_seed(1);
    CampaignSpec {
        base: job,
        epochs: bench.epochs,
        age_acceleration: 1.0e9,
        drain_limit: 10_000,
    }
}

fn start_worker(store_dir: &Path) -> Server {
    let cache = FsResultStore::open(store_dir).expect("worker opens the shared store");
    Server::start_with_cache(
        &ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            job_timeout_ms: 0,
            spans_out: None,
        },
        Some(Arc::new(cache)),
    )
    .expect("ephemeral bind succeeds")
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let bench = parse_args();

    // The in-process baseline doubles as the digest oracle: a remote
    // campaign that diverges from it is a broken bench, not a data point.
    let mut local = Campaign::new(spec(&bench)).expect("bench spec is valid");
    while !local.is_finished() {
        local.run_next_epoch(None).expect("local epoch runs");
    }

    let store_dir = std::env::temp_dir().join(format!(
        "bench-campaign-remote-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&store_dir);
    let store = FsResultStore::open(&store_dir).expect("shared store opens");
    let w1 = start_worker(&store_dir);
    let w2 = start_worker(&store_dir);
    let pool = WorkerPool::new(&[
        w1.local_addr().to_string(),
        w2.local_addr().to_string(),
    ])
    .expect("two live workers");
    let exec = RemoteExecutor::new(pool, 2).with_poll(2, 600_000);

    let mut campaign = Campaign::new(spec(&bench)).expect("bench spec is valid");
    let started = clock::now();
    while !campaign.is_finished() {
        campaign
            .run_next_epoch_with(&exec, Some(&store))
            .expect("remote epoch dispatches");
    }
    let elapsed_ms = clock::millis_since(started).max(1);

    assert_eq!(
        campaign.chained_digest(),
        local.chained_digest(),
        "remote campaign diverged from the in-process oracle"
    );

    let mut dispatch_us: Vec<u64> = exec
        .drain_spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Dispatch)
        .map(|s| s.dur_us)
        .collect();
    dispatch_us.sort_unstable();
    let p50 = percentile(&dispatch_us, 0.50);
    let p99 = percentile(&dispatch_us, 0.99);

    w1.request_shutdown(false);
    w2.request_shutdown(false);
    let _ = (w1.wait(), w2.wait());
    let _ = fs::remove_dir_all(&store_dir);

    let simulated_cycles = campaign.current_cycle().unwrap_or(0);
    let epochs_per_sec = f64::from(bench.epochs) * 1_000.0 / elapsed_ms as f64;
    let kcycles_per_sec = simulated_cycles as f64 / elapsed_ms as f64;

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_campaign.json");
    let run = existing_runs(&out) + 1;
    let entry = format!(
        "{{\"run\":{run},\"mode\":\"remote\",\"workers\":2,\"epochs\":{},\
         \"measure_cycles\":{},\"warmup_cycles\":{},\"rate\":{},\
         \"elapsed_ms\":{elapsed_ms},\"epochs_per_sec\":{epochs_per_sec:.2},\
         \"kcycles_per_sec\":{kcycles_per_sec:.1},\"simulated_cycles\":{simulated_cycles},\
         \"dispatch_p50_us\":{p50},\"dispatch_p99_us\":{p99},\
         \"chained_digest\":\"{:016x}\"}}",
        bench.epochs,
        bench.measure,
        bench.warmup,
        bench.rate,
        campaign.chained_digest()
    );
    append_entry(&out, &entry);
    println!(
        "campaign_remote: {} epochs over 2 workers in {elapsed_ms} ms \
         ({epochs_per_sec:.2} epochs/s, {kcycles_per_sec:.1} kcycles/s), \
         dispatch p50 {p50} us p99 {p99} us, chained digest {:016x}",
        bench.epochs,
        campaign.chained_digest()
    );
    println!("appended run {run} to {}", out.display());
}
