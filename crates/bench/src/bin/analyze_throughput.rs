//! Analyzer throughput bench: files/second and per-pass timings of a
//! full `noc-analyze` run over the workspace, appended to
//! `BENCH_analyze.json`.
//!
//! Runs the whole pipeline — lexing, item extraction, call-graph
//! construction, and every pass — so regressions in any stage show up as
//! a drop between consecutive runs. The workspace must be clean: a
//! finding here means `scripts/ci.sh` would fail too.
//!
//! Usage: `cargo run --release -p nbti-noc-bench --bin analyze_throughput`
//! `[-- --iters N]`

use noc_analyze::{analyze_root, Options};
use noc_service::clock;
use std::fs;
use std::path::Path;

fn parse_iters() -> usize {
    let mut iters = 5usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iters" => {
                let value = it.next().expect("--iters needs a value");
                iters = value.parse().expect("--iters");
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    iters.max(1)
}

/// Appends `entry` to the JSON array in `path`, creating it on first run.
fn append_entry(path: &Path, entry: &str) {
    let body = match fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end().trim_end_matches(']').trim_end();
            let trimmed = trimmed.trim_end_matches(',');
            format!("{trimmed},\n  {entry}\n]\n")
        }
        Err(_) => format!("[\n  {entry}\n]\n"),
    };
    fs::write(path, body).expect("write BENCH_analyze.json");
}

/// Entries already recorded, for the monotone run index.
fn existing_runs(path: &Path) -> u64 {
    fs::read_to_string(path)
        .map(|s| s.matches("\"run\":").count() as u64)
        .unwrap_or(0)
}

fn main() {
    let iters = parse_iters();
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let opts = Options::default();

    let mut files = 0usize;
    let mut fns = 0usize;
    // Per-pass totals in pipeline order (taken from the first run).
    let mut pass_ms: Vec<(String, f64)> = Vec::new();
    let started = clock::now();
    for _ in 0..iters {
        let analysis = analyze_root(&root, &opts);
        assert!(
            analysis.findings.is_empty(),
            "the workspace must be clean under noc-analyze: {:#?}",
            analysis.findings
        );
        files = analysis.files;
        fns = analysis.fns;
        for (phase, ms) in &analysis.timings_ms {
            match pass_ms.iter_mut().find(|(p, _)| p == phase) {
                Some((_, total)) => *total += ms,
                None => pass_ms.push(((*phase).to_string(), *ms)),
            }
        }
    }
    let elapsed_ms = clock::millis_since(started).max(1);
    let files_per_sec = (files * iters) as f64 * 1_000.0 / elapsed_ms as f64;

    let passes_json: Vec<String> = pass_ms
        .iter()
        .map(|(phase, total)| format!("\"{phase}\":{:.2}", total / iters as f64))
        .collect();
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_analyze.json");
    let run = existing_runs(&out) + 1;
    let entry = format!(
        "{{\"run\":{run},\"iters\":{iters},\"files\":{files},\"fns\":{fns},\
         \"elapsed_ms\":{elapsed_ms},\"files_per_sec\":{files_per_sec:.0},\
         \"pass_ms\":{{{}}}}}",
        passes_json.join(",")
    );
    append_entry(&out, &entry);
    println!(
        "analyze_throughput: {files} files / {fns} fns x{iters} in {elapsed_ms} ms \
         ({files_per_sec:.0} files/s)",
    );
    println!("appended run {run} to {}", out.display());
}
