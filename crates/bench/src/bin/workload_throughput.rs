//! Workload subsystem throughput bench: `NBTITRC` codec speed in
//! trace-records/sec and replay-driven simulation speed in kcycles/sec
//! per topology, appended to `BENCH_workload.json`.
//!
//! Each invocation generates one deterministic application-mix trace in
//! memory, times the encode and the checksum-verifying decode, then
//! replays the same trace through the full experiment loop on the mesh,
//! the torus and the ring. Regressions in the chunked codec show up as a
//! records/s drop; regressions in the topology-generic fabric show up in
//! the per-topology kcycles/s.
//!
//! Usage: `cargo run --release -p nbti-noc-bench --bin workload_throughput`
//! `[-- --nodes N --vcs V --rate R --cycles N --seed N]`

use noc_service::clock;
use noc_sim::config::{NocConfig, TopologyKind};
use noc_workload::{decode_trace, MixGenerator, MixKind, MixSpec, TraceSource};
use sensorwise::{run_experiment, ExperimentConfig, PolicyKind};
use std::fs;
use std::path::Path;

struct BenchConfig {
    nodes: u16,
    vcs: usize,
    rate: f64,
    cycles: u64,
    seed: u64,
}

fn parse_args() -> BenchConfig {
    let mut cfg = BenchConfig {
        nodes: 16,
        vcs: 2,
        rate: 0.15,
        cycles: 20_000,
        seed: 7,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = it.next().map(|v| v.as_str()).unwrap_or("");
        match arg.as_str() {
            "--nodes" => cfg.nodes = value.parse().expect("--nodes"),
            "--vcs" => cfg.vcs = value.parse().expect("--vcs"),
            "--rate" => cfg.rate = value.parse().expect("--rate"),
            "--cycles" => cfg.cycles = value.parse().expect("--cycles"),
            "--seed" => cfg.seed = value.parse().expect("--seed"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    cfg
}

/// Appends `entry` to the JSON array in `path`, creating it on first run.
fn append_entry(path: &Path, entry: &str) {
    let body = match fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end().trim_end_matches(']').trim_end();
            let trimmed = trimmed.trim_end_matches(',');
            format!("{trimmed},\n  {entry}\n]\n")
        }
        Err(_) => format!("[\n  {entry}\n]\n"),
    };
    fs::write(path, body).expect("write BENCH_workload.json");
}

/// Entries already recorded, for the monotone run index.
fn existing_runs(path: &Path) -> u64 {
    fs::read_to_string(path)
        .map(|s| s.matches("\"run\":").count() as u64)
        .unwrap_or(0)
}

fn main() {
    let bench = parse_args();
    let spec = MixSpec {
        kind: MixKind::HotspotServer,
        nodes: bench.nodes,
        rate: bench.rate,
        packet_len: 5,
        seed: bench.seed,
    };

    // Codec: generate + encode, then the checksum-verifying decode.
    let started = clock::now();
    let bytes = MixGenerator::new(spec)
        .write_trace(bench.cycles)
        .expect("mix generators emit valid records")
        .finish();
    let encode_ms = clock::millis_since(started).max(1);
    let started = clock::now();
    let (header, records) = decode_trace(&bytes).expect("own encoding decodes");
    let decode_ms = clock::millis_since(started).max(1);
    let n_records = header.records;
    let encode_rps = n_records as f64 * 1_000.0 / encode_ms as f64;
    let decode_rps = n_records as f64 * 1_000.0 / decode_ms as f64;
    println!(
        "codec: {n_records} records, encode {encode_rps:.0} records/s, \
         decode {decode_rps:.0} records/s ({} bytes)",
        bytes.len()
    );

    // Replay the same trace through the experiment loop per topology.
    let mut topo_kcps = Vec::new();
    for topology in [TopologyKind::Mesh, TopologyKind::Torus, TopologyKind::Ring] {
        let mut noc = NocConfig::paper_synthetic(usize::from(bench.nodes), bench.vcs);
        noc.topology = topology.clone();
        let cfg = ExperimentConfig::new(noc, PolicyKind::SensorWise)
            .with_cycles(0, bench.cycles);
        let mut source = TraceSource::from_records(records.clone(), "bench");
        let started = clock::now();
        let result = run_experiment(&cfg, &mut source);
        let elapsed_ms = clock::millis_since(started).max(1);
        let kcps = bench.cycles as f64 / elapsed_ms as f64;
        println!(
            "{}: {} cycles in {elapsed_ms} ms ({kcps:.1} kcycles/s), {} packets",
            topology.name(),
            bench.cycles,
            result.net.packets_ejected
        );
        topo_kcps.push(format!("\"{}\":{kcps:.1}", topology.name()));
    }

    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_workload.json");
    let run = existing_runs(&out) + 1;
    let entry = format!(
        "{{\"run\":{run},\"nodes\":{},\"vcs\":{},\"rate\":{},\"cycles\":{},\
         \"records\":{n_records},\"gen_records_per_sec\":{encode_rps:.0},\
         \"trace_records_per_sec\":{decode_rps:.0},\
         \"topo_kcycles_per_sec\":{{{}}}}}",
        bench.nodes,
        bench.vcs,
        bench.rate,
        bench.cycles,
        topo_kcps.join(",")
    );
    append_entry(&out, &entry);
    println!("appended run {run} to {}", out.display());
}
