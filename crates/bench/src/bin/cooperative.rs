//! Regenerates the paper's **cooperative gain** headline (Conclusions):
//! how much the traffic information exchanged between upstream and
//! downstream routers reduces the most degraded VC's duty cycle —
//! sensor-wise-no-traffic vs sensor-wise. The paper reports up to 23 %.

use nbti_noc_bench::RunOptions;
use sensorwise::analysis::{best_cooperative_gain, cooperative_gain_rows};
use sensorwise::tables::synthetic_table_jobs;

fn main() {
    let opts = RunOptions::from_env();
    eprintln!("[cooperative] rerunning the synthetic scenarios with {opts}");
    let mut all = Vec::new();
    for vcs in [2usize, 4] {
        let table = synthetic_table_jobs(vcs, opts.warmup, opts.measure, opts.jobs);
        let rows = cooperative_gain_rows(&table);
        println!("=== Cooperative gain on the MD VC ({vcs} VCs) ===");
        println!(
            "{:<16} {:>22} {:>18} {:>10}",
            "Scenario", "no-traffic MD duty", "with-traffic MD", "gain"
        );
        for r in &rows {
            println!(
                "{:<16} {:>21.1}% {:>17.1}% {:>9.1}%",
                r.scenario, r.no_traffic_md_duty, r.with_traffic_md_duty, r.gain
            );
        }
        println!();
        all.extend(rows);
    }
    println!(
        "Best cooperative gain: {:.1}% (paper: up to 23%)",
        best_cooperative_gain(&all)
    );
}
