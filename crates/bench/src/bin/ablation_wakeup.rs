//! Sleep-transistor wake-up penalty ablation (an extension beyond the
//! paper, which treats the header-PMOS gating as instantaneous).
//!
//! A freshly powered VC buffer becomes allocatable only after the wake-up
//! latency. Because the upstream router designates the idle VC one to two
//! cycles before the head flit would use it, small penalties hide inside
//! the pipeline; large penalties start to cost latency. The rr-no-sensor
//! rotation period is kept above the wake-up latency — rotating faster
//! than the buffers can wake would starve the port.

use nbti_noc_bench::RunOptions;
use noc_sim::config::NocConfig;
use noc_sim::types::NodeId;
use sensorwise::{
    run_batch, ExperimentConfig, ExperimentJob, PolicyKind, SyntheticScenario, TrafficSpec,
};

fn job(wakeup: u64, policy: PolicyKind, opts: &RunOptions) -> ExperimentJob {
    let scenario = SyntheticScenario {
        cores: 4,
        vcs: 2,
        injection_rate: 0.2,
    };
    let mut noc = NocConfig::paper_synthetic(scenario.cores, scenario.vcs);
    noc.wakeup_latency = wakeup;
    let mut cfg = ExperimentConfig::new(noc, policy)
        .with_cycles(opts.warmup, opts.measure)
        .with_pv_seed(scenario.seed());
    cfg.rr_rotation_period = (wakeup + 1).max(1);
    ExperimentJob {
        cfg,
        traffic: TrafficSpec::Uniform {
            rate: scenario.effective_rate(),
            seed: scenario.seed() ^ 0x7261_6666,
        },
    }
}

fn main() {
    let opts = RunOptions::parse(std::env::args().skip(1));
    let scaled = RunOptions {
        measure: opts.measure.min(60_000),
        ..opts
    };
    eprintln!("[ablation_wakeup] {scaled}");
    println!("=== Wake-up penalty ablation (4core-inj0.20, 2 VCs) ===\n");
    println!(
        "{:>7} | {:>9} {:>9} {:>8} | {:>10} {:>10}",
        "wakeup", "rr MD", "sw MD", "gap", "rr lat", "sw lat"
    );
    let wakeups = [0u64, 1, 2, 4, 8, 16];
    let batch: Vec<ExperimentJob> = wakeups
        .iter()
        .flat_map(|&wakeup| {
            PolicyKind::REFERENCE_PAIR
                .into_iter()
                .map(move |policy| (wakeup, policy))
        })
        .map(|(wakeup, policy)| job(wakeup, policy, &scaled))
        .collect();
    let results = run_batch(&batch, scaled.jobs);
    for (&wakeup, pair) in wakeups.iter().zip(results.chunks_exact(2)) {
        let rr_md = pair[0].east_input(NodeId(0)).md_duty();
        let sw_md = pair[1].east_input(NodeId(0)).md_duty();
        let rr_lat = pair[0].net.avg_latency().unwrap_or(f64::NAN);
        let sw_lat = pair[1].net.avg_latency().unwrap_or(f64::NAN);
        println!(
            "{wakeup:>7} | {rr_md:>8.1}% {sw_md:>8.1}% {:>7.1}% | {rr_lat:>10.1} {sw_lat:>10.1}",
            rr_md - sw_md
        );
    }
    println!(
        "\nreading: the NBTI gap survives realistic wake-up penalties; the cost\n\
         shows up as packet latency once the penalty exceeds what the pre-VA\n\
         designation pipeline can hide."
    );
}
