//! Sleep-transistor wake-up penalty ablation (an extension beyond the
//! paper, which treats the header-PMOS gating as instantaneous).
//!
//! A freshly powered VC buffer becomes allocatable only after the wake-up
//! latency. Because the upstream router designates the idle VC one to two
//! cycles before the head flit would use it, small penalties hide inside
//! the pipeline; large penalties start to cost latency. The rr-no-sensor
//! rotation period is kept above the wake-up latency — rotating faster
//! than the buffers can wake would starve the port.

use nbti_noc_bench::RunOptions;
use noc_sim::config::NocConfig;
use noc_sim::topology::Mesh2D;
use noc_sim::types::NodeId;
use noc_traffic::synthetic::SyntheticTraffic;
use sensorwise::{run_experiment, ExperimentConfig, PolicyKind, SyntheticScenario};

fn run(wakeup: u64, policy: PolicyKind, opts: &RunOptions) -> (f64, f64, u64) {
    let scenario = SyntheticScenario {
        cores: 4,
        vcs: 2,
        injection_rate: 0.2,
    };
    let mut noc = NocConfig::paper_synthetic(scenario.cores, scenario.vcs);
    noc.wakeup_latency = wakeup;
    let mesh = Mesh2D::new(noc.cols, noc.rows);
    let mut traffic = SyntheticTraffic::uniform(
        mesh,
        scenario.effective_rate(),
        noc.flits_per_packet,
        scenario.seed() ^ 0x7261_6666,
    );
    let mut cfg = ExperimentConfig::new(noc, policy)
        .with_cycles(opts.warmup, opts.measure)
        .with_pv_seed(scenario.seed());
    cfg.rr_rotation_period = (wakeup + 1).max(1);
    let r = run_experiment(&cfg, &mut traffic);
    (
        r.east_input(NodeId(0)).md_duty(),
        r.net.avg_latency().unwrap_or(f64::NAN),
        r.net.packets_ejected,
    )
}

fn main() {
    let opts = RunOptions::parse(std::env::args().skip(1));
    let scaled = RunOptions {
        measure: opts.measure.min(60_000),
        ..opts
    };
    eprintln!("[ablation_wakeup] {scaled}");
    println!("=== Wake-up penalty ablation (4core-inj0.20, 2 VCs) ===\n");
    println!(
        "{:>7} | {:>9} {:>9} {:>8} | {:>10} {:>10}",
        "wakeup", "rr MD", "sw MD", "gap", "rr lat", "sw lat"
    );
    for wakeup in [0u64, 1, 2, 4, 8, 16] {
        let (rr_md, rr_lat, _) = run(wakeup, PolicyKind::RrNoSensor, &scaled);
        let (sw_md, sw_lat, _) = run(wakeup, PolicyKind::SensorWise, &scaled);
        println!(
            "{wakeup:>7} | {rr_md:>8.1}% {sw_md:>8.1}% {:>7.1}% | {rr_lat:>10.1} {sw_lat:>10.1}",
            rr_md - sw_md
        );
    }
    println!(
        "\nreading: the NBTI gap survives realistic wake-up penalties; the cost\n\
         shows up as packet latency once the penalty exceeds what the pre-VA\n\
         designation pipeline can hide."
    );
}
