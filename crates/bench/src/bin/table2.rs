//! Regenerates the paper's **Table II**: NBTI-duty-cycle (%) for all VCs
//! using the rr-no-sensor, sensor-wise-no-traffic and sensor-wise policies,
//! on 4- and 16-core meshes with 4 VCs and injection rates 0.1/0.2/0.3
//! flits/cycle/port, sampled on the upper-left router's east input port.

use nbti_noc_bench::RunOptions;
use sensorwise::tables::synthetic_table_jobs;

fn main() {
    let opts = RunOptions::from_env();
    eprintln!("[table2] regenerating Table II with {opts}");
    let table = synthetic_table_jobs(4, opts.warmup, opts.measure, opts.jobs);
    println!("=== Table II (4 VCs) ===");
    print!("{}", table.render());
    println!(
        "Best MD-VC gap in this table: {:.1}% (paper's Table II best: 26.6%)",
        table.best_gap()
    );
}
