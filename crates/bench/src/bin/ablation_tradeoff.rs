//! NBTI/performance trade-off: the `sensor-wise-k` extension.
//!
//! The paper keeps exactly one idle VC awake per port (enough for
//! correctness, since one flit crosses each link per cycle) but that
//! serializes new-packet VC allocation. Keeping `k` idle VCs awake lets
//! bursty traffic allocate several VCs at once — buying latency at the
//! cost of NBTI stress. This sweep quantifies the trade under bursty
//! application traffic.

use nbti_noc_bench::RunOptions;
use noc_sim::config::NocConfig;
use noc_sim::types::NodeId;
use noc_traffic::app::BenchmarkMix;
use sensorwise::{run_batch, ExperimentConfig, ExperimentJob, ExperimentResult, PolicyKind, TrafficSpec};

fn job(policy: PolicyKind, opts: &RunOptions) -> ExperimentJob {
    let noc = NocConfig::paper_synthetic(16, 4);
    let mix = BenchmarkMix::from_names(&[
        "radix", "fft", "ocean", "radix", "fft", "lu", "radix", "ocean", "fft", "radix", "lu",
        "ocean", "radix", "fft", "ocean", "radix",
    ]);
    ExperimentJob {
        cfg: ExperimentConfig::new(noc, policy)
            .with_cycles(opts.warmup, opts.measure)
            .with_pv_seed(0xCAFE),
        traffic: TrafficSpec::Mix { mix, seed: 7 },
    }
}

fn summarize(r: &ExperimentResult) -> (f64, f64, f64) {
    let port = r.east_input(NodeId(5));
    let avg_duty = port.duty_percent.iter().sum::<f64>() / port.duty_percent.len() as f64;
    (
        port.md_duty(),
        avg_duty,
        r.net.avg_latency().unwrap_or(f64::NAN),
    )
}

fn main() {
    let opts = RunOptions::parse(std::env::args().skip(1));
    let scaled = RunOptions {
        measure: opts.measure.min(80_000),
        ..opts
    };
    eprintln!("[ablation_tradeoff] {scaled}");
    println!("=== NBTI/performance trade-off: sensor-wise-k (16 cores, 4 VCs, bursty mix) ===\n");
    println!(
        "{:<18} {:>10} {:>10} {:>12}",
        "policy", "MD duty", "avg duty", "avg latency"
    );
    let policies: Vec<(String, PolicyKind)> = std::iter::once(("baseline".into(), PolicyKind::Baseline))
        .chain((1u8..=4).map(|k| (format!("sensor-wise-k{k}"), PolicyKind::SensorWiseK(k))))
        .collect();
    let batch: Vec<ExperimentJob> = policies.iter().map(|(_, p)| job(*p, &scaled)).collect();
    let results = run_batch(&batch, scaled.jobs);
    let runs: Vec<(String, (f64, f64, f64))> = policies
        .iter()
        .zip(&results)
        .map(|((name, _), r)| (name.clone(), summarize(r)))
        .collect();
    for (name, (md, avg, lat)) in &runs {
        println!("{name:<18} {md:>9.1}% {avg:>9.1}% {lat:>12.1}");
    }
    println!(
        "\nreading: k slides from the paper's sensor-wise point (k=1, least\n\
         stress) towards the baseline. At these loads the single-designation\n\
         bottleneck is hidden by the router pipeline — latency barely moves\n\
         while MD stress grows with k — which supports the paper's choice of\n\
         keeping exactly one idle VC."
    );
}
