//! NBTI/performance trade-off: the `sensor-wise-k` extension.
//!
//! The paper keeps exactly one idle VC awake per port (enough for
//! correctness, since one flit crosses each link per cycle) but that
//! serializes new-packet VC allocation. Keeping `k` idle VCs awake lets
//! bursty traffic allocate several VCs at once — buying latency at the
//! cost of NBTI stress. This sweep quantifies the trade under bursty
//! application traffic.

use nbti_noc_bench::RunOptions;
use noc_sim::config::NocConfig;
use noc_sim::topology::Mesh2D;
use noc_sim::types::NodeId;
use noc_traffic::app::{AppTraffic, BenchmarkMix};
use sensorwise::{run_experiment, ExperimentConfig, PolicyKind};

fn run(policy: PolicyKind, opts: &RunOptions) -> (f64, f64, f64) {
    let noc = NocConfig::paper_synthetic(16, 4);
    let mesh = Mesh2D::new(noc.cols, noc.rows);
    let mix = BenchmarkMix::from_names(&[
        "radix", "fft", "ocean", "radix", "fft", "lu", "radix", "ocean", "fft", "radix", "lu",
        "ocean", "radix", "fft", "ocean", "radix",
    ]);
    let mut traffic = AppTraffic::new(mesh, &mix, 7);
    let cfg = ExperimentConfig::new(noc, policy)
        .with_cycles(opts.warmup, opts.measure)
        .with_pv_seed(0xCAFE);
    let r = run_experiment(&cfg, &mut traffic);
    let port = r.east_input(NodeId(5));
    let avg_duty = port.duty_percent.iter().sum::<f64>() / port.duty_percent.len() as f64;
    (
        port.md_duty(),
        avg_duty,
        r.net.avg_latency().unwrap_or(f64::NAN),
    )
}

fn main() {
    let opts = RunOptions::parse(std::env::args().skip(1));
    let scaled = RunOptions {
        measure: opts.measure.min(80_000),
        ..opts
    };
    eprintln!("[ablation_tradeoff] {scaled}");
    println!("=== NBTI/performance trade-off: sensor-wise-k (16 cores, 4 VCs, bursty mix) ===\n");
    println!(
        "{:<18} {:>10} {:>10} {:>12}",
        "policy", "MD duty", "avg duty", "avg latency"
    );
    let mut runs: Vec<(String, (f64, f64, f64))> = Vec::new();
    runs.push(("baseline".into(), run(PolicyKind::Baseline, &scaled)));
    for k in [1u8, 2, 3, 4] {
        runs.push((
            format!("sensor-wise-k{k}"),
            run(PolicyKind::SensorWiseK(k), &scaled),
        ));
    }
    for (name, (md, avg, lat)) in &runs {
        println!("{name:<18} {md:>9.1}% {avg:>9.1}% {lat:>12.1}");
    }
    println!(
        "\nreading: k slides from the paper's sensor-wise point (k=1, least\n\
         stress) towards the baseline. At these loads the single-designation\n\
         bottleneck is hidden by the router pipeline — latency barely moves\n\
         while MD stress grows with k — which supports the paper's choice of\n\
         keeping exactly one idle VC."
    );
}
