//! Sensor-fidelity ablation: how much sensor quality does the sensor-wise
//! policy actually need?
//!
//! The paper assumes the Singh et al. 45 nm sensor delivers a clean
//! most-degraded election. Here the sensor resolution (LSB) and read noise
//! are swept from ideal to badly degraded; the metric is the sensor-wise
//! duty cycle on the *true* most degraded VC. With process-variation σ of
//! 5 mV, noise well below 5 mV barely matters; noise comparable to σ makes
//! the election random and the MD protection collapses towards the
//! rr-no-sensor level.

use nbti_model::Volt;
use nbti_noc_bench::RunOptions;
use noc_sim::types::NodeId;
use sensorwise::{
    run_batch, ExperimentConfig, ExperimentJob, PolicyKind, SensorModel, SyntheticScenario,
    TrafficSpec,
};

fn job(sensor: SensorModel, opts: &RunOptions) -> ExperimentJob {
    let scenario = SyntheticScenario {
        cores: 4,
        vcs: 4,
        injection_rate: 0.2,
    };
    let noc = noc_sim::config::NocConfig::paper_synthetic(scenario.cores, scenario.vcs);
    ExperimentJob {
        cfg: ExperimentConfig {
            sensor,
            ..ExperimentConfig::new(noc, PolicyKind::SensorWise)
                .with_cycles(opts.warmup, opts.measure)
                .with_pv_seed(scenario.seed())
        },
        traffic: TrafficSpec::Uniform {
            rate: scenario.effective_rate(),
            seed: scenario.seed() ^ 0x7261_6666,
        },
    }
}

fn main() {
    let opts = RunOptions::parse(std::env::args().skip(1));
    let scaled = RunOptions {
        measure: opts.measure.min(60_000),
        ..opts
    };
    eprintln!("[ablation_sensor] {scaled}");
    println!("=== Sensor fidelity ablation (4core-inj0.20, 4 VCs, sensor-wise) ===");
    println!("PV sigma is 5 mV; the MD election only needs to beat that spread.\n");
    println!("{:<34} {:>18}", "sensor", "MD-VC duty cycle");

    let grid = [
        (0.5, 0.25, 10_000u64), // the Singh sensor ballpark
        (1.0, 0.5, 10_000),
        (2.0, 2.0, 10_000),
        (5.0, 5.0, 10_000),
        (10.0, 10.0, 10_000),
    ];
    let sensors: Vec<SensorModel> = std::iter::once(SensorModel::Ideal)
        .chain(grid.iter().map(|&(lsb_mv, noise_mv, period)| {
            SensorModel::Quantized {
                lsb: Volt::from_millivolts(lsb_mv),
                noise_sigma: Volt::from_millivolts(noise_mv),
                period,
            }
        }))
        .collect();
    let batch: Vec<ExperimentJob> = sensors.iter().map(|&s| job(s, &scaled)).collect();
    let results = run_batch(&batch, scaled.jobs);
    println!(
        "{:<34} {:>17.1}%",
        "ideal",
        results[0].east_input(NodeId(0)).md_duty()
    );
    for (&(lsb_mv, noise_mv, _), r) in grid.iter().zip(&results[1..]) {
        println!(
            "{:<34} {:>17.1}%",
            format!("lsb {lsb_mv} mV, noise {noise_mv} mV"),
            r.east_input(NodeId(0)).md_duty()
        );
    }
    println!(
        "\nreading: two failure modes are visible. Gaussian read noise \
         comparable\nto the 5 mV process-variation spread randomizes the \
         election and erodes\nprotection gradually. Quantization has a dead \
         zone: when the margin\nbetween the two most-degraded buffers falls \
         inside one LSB they share a\ncode and the tie breaks by index — \
         possibly persistently wrong, which\nis why a coarse-but-quiet sensor \
         can do worse than a noisier one whose\ndither re-randomizes the tie."
    );
}
