//! The lifetime campaign engine.
//!
//! A *campaign* chains epochs of the cycle-accurate experiment into one
//! simulated lifetime: each epoch resumes the network exactly where the
//! previous epoch left it (drained-boundary [`NetworkSnapshot`]), and the
//! per-buffer `ΔVth` accumulated by the [`LifetimeLedger`] feeds back into
//! the next epoch's sensor readings — so the gating policy under test
//! shapes the very degradation landscape it later reacts to (the paper's
//! sensor-wise feedback loop, extended across a lifetime).
//!
//! Determinism contract: a campaign checkpointed at any epoch boundary and
//! resumed from the snapshot produces bit-identical epoch digests, network
//! state and ledger trajectories to the uninterrupted run. The witness is
//! the chained [`EventDigest`] over the campaign's
//! [`EventKind::EpochEnd`] boundary events, verifiable cheaply from a
//! checkpoint alone.

use crate::ledger::{LedgerError, LifetimeLedger};
use crate::snapshot::SnapshotError;
use nbti_model::rd::RdState;
use nbti_model::{AlphaPowerModel, Volt};
use noc_sim::snapshot::NetworkSnapshot;
use noc_telemetry::{EventDigest, EventKind, TraceEvent};
use sensorwise::codec::{json_string, spec_from_json, spec_to_json, JsonValue};
use sensorwise::experiment::SensorModel;
use sensorwise::{run_epoch, EpochError, ExperimentConfig, ExperimentJob, ResultCache, TrafficSpec, WireResult};
use std::fmt;
use std::path::Path;

/// The per-epoch traffic-seed stride (the 64-bit golden-ratio constant):
/// epoch `e` injects with seed `base + e·stride`, giving every epoch an
/// independent but fully reproducible traffic stream.
pub const EPOCH_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Everything that defines a campaign: the base experiment and the
/// lifetime parameters layered on top of it.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// The base experiment (config + traffic recipe). Its seeds anchor all
    /// campaign randomness; its warmup/measure windows shape every epoch.
    pub base: ExperimentJob,
    /// How many epochs the campaign runs.
    pub epochs: u32,
    /// Lifetime scale factor: one simulated cycle ages the devices
    /// `age_acceleration × tclk` seconds.
    pub age_acceleration: f64,
    /// Maximum drain cycles tolerated at each epoch boundary before the
    /// epoch fails with a timeout.
    pub drain_limit: u64,
}

impl CampaignSpec {
    /// The injection seed for epoch `index` (epoch 0 keeps the base seed).
    pub fn epoch_seed(&self, index: u32) -> u64 {
        let base = match &self.base.traffic {
            TrafficSpec::Uniform { seed, .. }
            | TrafficSpec::Pattern { seed, .. }
            | TrafficSpec::Mix { seed, .. } => *seed,
        };
        base.wrapping_add(u64::from(index).wrapping_mul(EPOCH_SEED_STRIDE))
    }

    /// The canonical JSON form of this spec — the campaign's identity for
    /// content addressing and checkpoints. The base experiment is embedded
    /// as its own canonical wire-codec string, so two specs are equal iff
    /// their canonical JSON is equal.
    pub fn canonical_json(&self) -> Result<String, CampaignError> {
        let base = spec_to_json(&self.base).map_err(|e| CampaignError::Spec(e.to_string()))?;
        Ok(format!(
            "{{\"campaign\":{{\"epochs\":{},\"age_acceleration\":{},\"drain_limit\":{}}},\"base_spec\":{}}}",
            self.epochs,
            self.age_acceleration,
            self.drain_limit,
            json_string(&base)
        ))
    }

    /// Parses a spec back from its canonical JSON.
    pub fn from_json(text: &str) -> Result<CampaignSpec, CampaignError> {
        let bad = |msg: &str| CampaignError::Spec(msg.to_string());
        let v = JsonValue::parse(text).map_err(|e| CampaignError::Spec(e.to_string()))?;
        let c = v.get("campaign").ok_or_else(|| bad("missing \"campaign\" object"))?;
        let epochs_raw = c
            .get("epochs")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| bad("missing or non-integer \"epochs\""))?;
        let epochs = u32::try_from(epochs_raw)
            .map_err(|_| bad("\"epochs\" exceeds the supported range"))?;
        let age_acceleration = c
            .get("age_acceleration")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| bad("missing or non-numeric \"age_acceleration\""))?;
        let drain_limit = c
            .get("drain_limit")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| bad("missing or non-integer \"drain_limit\""))?;
        let base_text = v
            .get("base_spec")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("missing \"base_spec\" string"))?;
        let base = spec_from_json(base_text).map_err(|e| CampaignError::Spec(e.to_string()))?;
        Ok(CampaignSpec {
            base,
            epochs,
            age_acceleration,
            drain_limit,
        })
    }
}

/// Why a campaign operation failed.
#[derive(Debug)]
pub enum CampaignError {
    /// Every epoch already ran; there is nothing left to do.
    Finished,
    /// The spec is unusable (zero epochs, bad acceleration, codec
    /// rejection, …).
    Spec(String),
    /// An epoch failed inside the experiment engine.
    Epoch(EpochError),
    /// The aging ledger rejected the epoch's duty totals.
    Ledger(LedgerError),
    /// A checkpoint could not be written or read.
    Snapshot(SnapshotError),
    /// An epoch produced no trace digest (telemetry harvest missing).
    MissingTrace,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Finished => write!(f, "campaign already ran all its epochs"),
            CampaignError::Spec(msg) => write!(f, "invalid campaign spec: {msg}"),
            CampaignError::Epoch(e) => write!(f, "epoch failed: {e}"),
            CampaignError::Ledger(e) => write!(f, "aging ledger rejected the epoch: {e}"),
            CampaignError::Snapshot(e) => write!(f, "checkpoint error: {e}"),
            CampaignError::MissingTrace => {
                write!(f, "epoch returned no trace digest despite tracing being forced on")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Epoch(e) => Some(e),
            CampaignError::Ledger(e) => Some(e),
            CampaignError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EpochError> for CampaignError {
    fn from(e: EpochError) -> Self {
        CampaignError::Epoch(e)
    }
}

impl From<LedgerError> for CampaignError {
    fn from(e: LedgerError) -> Self {
        CampaignError::Ledger(e)
    }
}

impl From<SnapshotError> for CampaignError {
    fn from(e: SnapshotError) -> Self {
        CampaignError::Snapshot(e)
    }
}

/// What one finished epoch reports back.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Zero-based epoch index.
    pub index: u32,
    /// The network cycle at the drained epoch boundary.
    pub end_cycle: u64,
    /// The epoch's own whole-stream event digest.
    pub digest: u64,
    /// The campaign digest chained over all boundary events so far.
    pub chained_digest: u64,
    /// Drain cycles spent settling in-flight traffic at the boundary.
    pub drain_cycles: u64,
    /// Worst accumulated `ΔVth` across all buffers after this epoch (mV).
    pub max_delta_vth_mv: f64,
    /// Worst per-buffer critical-path delay degradation after this epoch
    /// (percent, alpha-power model).
    pub worst_delay_degradation_percent: f64,
    /// The epoch's measurement window, in wire form.
    pub result: WireResult,
}

/// A running (or resumed) lifetime campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    pub(crate) spec: CampaignSpec,
    pub(crate) spec_json: String,
    pub(crate) cfg: ExperimentConfig,
    pub(crate) completed: u32,
    pub(crate) epoch_ends: Vec<(u64, u64)>,
    pub(crate) net: Option<NetworkSnapshot>,
    pub(crate) ledger: Option<LifetimeLedger>,
}

impl Campaign {
    /// Starts a fresh campaign.
    ///
    /// The base spec is normalized through the wire codec (serialize +
    /// reparse) so an uninterrupted run and a checkpoint-resumed run use
    /// byte-identical configurations, and event tracing is forced on —
    /// the per-epoch digest is the campaign's determinism witness, not an
    /// optional extra.
    pub fn new(spec: CampaignSpec) -> Result<Campaign, CampaignError> {
        if spec.epochs == 0 {
            return Err(CampaignError::Spec("a campaign needs at least one epoch".to_string()));
        }
        if !spec.age_acceleration.is_finite() || spec.age_acceleration <= 0.0 {
            return Err(CampaignError::Spec(format!(
                "age acceleration must be finite and positive (got {})",
                spec.age_acceleration
            )));
        }
        if spec.drain_limit == 0 {
            return Err(CampaignError::Spec(
                "drain limit must be at least 1 cycle".to_string(),
            ));
        }
        if !matches!(spec.base.cfg.sensor, SensorModel::Ideal) {
            return Err(CampaignError::Epoch(EpochError::UnsupportedSensor));
        }
        let base_json = spec_to_json(&spec.base).map_err(|e| CampaignError::Spec(e.to_string()))?;
        let base = spec_from_json(&base_json).map_err(|e| CampaignError::Spec(e.to_string()))?;
        let spec = CampaignSpec { base, ..spec };
        let spec_json = spec.canonical_json()?;
        let mut cfg = spec.base.cfg.clone();
        cfg.telemetry.trace = true;
        Ok(Campaign {
            spec,
            spec_json,
            cfg,
            completed: 0,
            epoch_ends: Vec::new(),
            net: None,
            ledger: None,
        })
    }

    /// Rebuilds a campaign from decoded checkpoint parts, cross-checking
    /// their internal consistency (used by the snapshot codec).
    pub(crate) fn from_parts(
        spec: CampaignSpec,
        completed: u32,
        epoch_ends: Vec<(u64, u64)>,
        net: Option<NetworkSnapshot>,
        states: Option<Vec<Vec<(Volt, RdState)>>>,
    ) -> Result<Campaign, SnapshotError> {
        let mut campaign =
            Campaign::new(spec).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        if u64::from(completed) != epoch_ends.len() as u64 {
            return Err(SnapshotError::Malformed(format!(
                "completed-epoch count {completed} disagrees with {} boundary records",
                epoch_ends.len()
            )));
        }
        if completed > campaign.spec.epochs {
            return Err(SnapshotError::Malformed(format!(
                "checkpoint claims {completed} completed epochs of a {}-epoch campaign",
                campaign.spec.epochs
            )));
        }
        if (completed > 0) != net.is_some() || (completed > 0) != states.is_some() {
            return Err(SnapshotError::Malformed(
                "network/ledger state must be present exactly when epochs completed".to_string(),
            ));
        }
        campaign.ledger = match states {
            Some(rows) => Some(
                LifetimeLedger::from_states(
                    &rows,
                    campaign.cfg.model,
                    campaign.spec.age_acceleration,
                )
                .map_err(|e| SnapshotError::Malformed(e.to_string()))?,
            ),
            None => None,
        };
        campaign.completed = completed;
        campaign.epoch_ends = epoch_ends;
        campaign.net = net;
        Ok(campaign)
    }

    /// The campaign's spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The canonical spec JSON — the campaign's content address.
    pub fn spec_json(&self) -> &str {
        &self.spec_json
    }

    /// Epochs finished so far.
    pub fn completed(&self) -> u32 {
        self.completed
    }

    /// `true` once every epoch has run.
    pub fn is_finished(&self) -> bool {
        self.completed >= self.spec.epochs
    }

    /// Per-epoch `(end cycle, digest)` boundary records.
    pub fn epoch_ends(&self) -> &[(u64, u64)] {
        &self.epoch_ends
    }

    /// The network cycle of the latest drained boundary, if any epoch ran.
    pub fn current_cycle(&self) -> Option<u64> {
        self.net.as_ref().map(|snapshot| snapshot.cycle)
    }

    /// The aging ledger, once epoch 0 has seeded it.
    pub fn ledger(&self) -> Option<&LifetimeLedger> {
        self.ledger.as_ref()
    }

    /// The campaign-level determinism witness: an [`EventDigest`] folded
    /// over one [`EventKind::EpochEnd`] event per finished epoch. Equal
    /// chained digests mean equal epoch boundaries — cycle, stream digest
    /// and order — which the resume tests tie back to bit-identical state.
    pub fn chained_digest(&self) -> u64 {
        let mut digest = EventDigest::new();
        for (i, &(cycle, epoch_digest)) in self.epoch_ends.iter().enumerate() {
            digest.update(&TraceEvent {
                cycle,
                kind: EventKind::EpochEnd {
                    index: i as u32,
                    digest: epoch_digest,
                },
            });
        }
        digest.value()
    }

    /// The content-address under which epoch `index` of this campaign is
    /// filed in a result store.
    pub fn epoch_store_key(&self, index: u32) -> String {
        format!("{{\"campaign_epoch\":{index},\"campaign\":{}}}", self.spec_json)
    }

    /// Runs the next epoch: resumes the drained network, seeds sensors
    /// with the ledger's aged `Vth`s, simulates warmup + measurement +
    /// drain, then folds the epoch's duty totals back into the ledger.
    ///
    /// When a `store` is given, the epoch's wire result is persisted under
    /// [`epoch_store_key`](Campaign::epoch_store_key) for later inspection
    /// (`campaign status`, the service's cache endpoints). Epochs are
    /// never *served* from the store — the snapshot chain, not the result
    /// cache, is the resume mechanism.
    pub fn run_next_epoch(
        &mut self,
        store: Option<&dyn ResultCache>,
    ) -> Result<EpochReport, CampaignError> {
        if self.is_finished() {
            return Err(CampaignError::Finished);
        }
        let index = self.completed;
        let traffic_spec = self
            .spec
            .base
            .traffic
            .with_seed(self.spec.epoch_seed(index));
        let mut traffic = traffic_spec.build(&self.cfg.noc);
        let aged = self.ledger.as_ref().map(LifetimeLedger::aged_vths);
        let outcome = run_epoch(
            &self.cfg,
            traffic.as_mut(),
            self.net.as_ref(),
            aged.as_deref(),
            self.spec.drain_limit,
        )?;
        let digest = outcome.result.trace_digest().ok_or(CampaignError::MissingTrace)?;
        if self.ledger.is_none() {
            let initial: Vec<Vec<Volt>> = outcome
                .result
                .ports
                .iter()
                .map(|p| p.initial_vths.clone())
                .collect();
            self.ledger = Some(LifetimeLedger::new(
                &initial,
                self.cfg.model,
                self.spec.age_acceleration,
            )?);
        }
        let (max_delta_vth_mv, worst_delay) = match self.ledger.as_mut() {
            Some(ledger) => {
                ledger.integrate_epoch(&outcome.duty_totals)?;
                (
                    ledger.max_delta_vth_mv(),
                    ledger.worst_delay_degradation_percent(&AlphaPowerModel::paper_45nm()),
                )
            }
            None => (0.0, 0.0),
        };
        let end_cycle = outcome.snapshot.cycle;
        self.epoch_ends.push((end_cycle, digest));
        self.net = Some(outcome.snapshot);
        self.completed = index + 1;
        let result = WireResult::from(&outcome.result);
        if let Some(store) = store {
            store.put(&self.epoch_store_key(index), &result);
        }
        Ok(EpochReport {
            index,
            end_cycle,
            digest,
            chained_digest: self.chained_digest(),
            drain_cycles: outcome.drain_cycles,
            max_delta_vth_mv,
            worst_delay_degradation_percent: worst_delay,
            result,
        })
    }

    /// Runs every remaining epoch, checkpointing after each one when a
    /// path is given (so a kill at any moment loses at most the epoch in
    /// flight).
    pub fn run_to_completion(
        &mut self,
        store: Option<&dyn ResultCache>,
        checkpoint: Option<&Path>,
    ) -> Result<Vec<EpochReport>, CampaignError> {
        let mut reports = Vec::new();
        while !self.is_finished() {
            let report = self.run_next_epoch(store)?;
            if let Some(path) = checkpoint {
                self.save(path)?;
            }
            reports.push(report);
        }
        Ok(reports)
    }
}
