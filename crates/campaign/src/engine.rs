//! The lifetime campaign engine.
//!
//! A *campaign* chains epochs of the cycle-accurate experiment into one
//! simulated lifetime: each epoch resumes the network exactly where the
//! previous epoch left it (drained-boundary [`NetworkSnapshot`]), and the
//! per-buffer `ΔVth` accumulated by the [`LifetimeLedger`] feeds back into
//! the next epoch's sensor readings — so the gating policy under test
//! shapes the very degradation landscape it later reacts to (the paper's
//! sensor-wise feedback loop, extended across a lifetime).
//!
//! Determinism contract: a campaign checkpointed at any epoch boundary and
//! resumed from the snapshot produces bit-identical epoch digests, network
//! state and ledger trajectories to the uninterrupted run. The witness is
//! the chained [`EventDigest`] over the campaign's
//! [`EventKind::EpochEnd`] boundary events, verifiable cheaply from a
//! checkpoint alone.

use crate::ledger::{LedgerError, LifetimeLedger};
use crate::snapshot::SnapshotError;
use nbti_model::rd::RdState;
use nbti_model::{AlphaPowerModel, Volt};
use noc_sim::snapshot::NetworkSnapshot;
use noc_telemetry::{derive_id, EventDigest, EventKind, SpanKind, SpanLog, TraceEvent, NO_PARENT};
use sensorwise::codec::{json_string, spec_from_json, spec_to_json, JsonValue};
use sensorwise::experiment::SensorModel;
use sensorwise::{
    EpochError, ExperimentConfig, ExperimentJob, ResultCache, TrafficSpec, WireEpochOutcome,
    WireEpochRequest, WireResult,
};
use std::fmt;
use std::path::Path;
use std::sync::atomic::AtomicBool;

/// The per-epoch traffic-seed stride (the 64-bit golden-ratio constant):
/// epoch `e` injects with seed `base + e·stride`, giving every epoch an
/// independent but fully reproducible traffic stream.
pub const EPOCH_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Everything that defines a campaign: the base experiment and the
/// lifetime parameters layered on top of it.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// The base experiment (config + traffic recipe). Its seeds anchor all
    /// campaign randomness; its warmup/measure windows shape every epoch.
    pub base: ExperimentJob,
    /// How many epochs the campaign runs.
    pub epochs: u32,
    /// Lifetime scale factor: one simulated cycle ages the devices
    /// `age_acceleration × tclk` seconds.
    pub age_acceleration: f64,
    /// Maximum drain cycles tolerated at each epoch boundary before the
    /// epoch fails with a timeout.
    pub drain_limit: u64,
}

impl CampaignSpec {
    /// The injection seed for epoch `index` (epoch 0 keeps the base seed).
    pub fn epoch_seed(&self, index: u32) -> u64 {
        let base = match &self.base.traffic {
            TrafficSpec::Uniform { seed, .. }
            | TrafficSpec::Pattern { seed, .. }
            | TrafficSpec::Mix { seed, .. } => *seed,
        };
        base.wrapping_add(u64::from(index).wrapping_mul(EPOCH_SEED_STRIDE))
    }

    /// The canonical JSON form of this spec — the campaign's identity for
    /// content addressing and checkpoints. The base experiment is embedded
    /// as its own canonical wire-codec string, so two specs are equal iff
    /// their canonical JSON is equal.
    pub fn canonical_json(&self) -> Result<String, CampaignError> {
        let base = spec_to_json(&self.base).map_err(|e| CampaignError::Spec(e.to_string()))?;
        Ok(format!(
            "{{\"campaign\":{{\"epochs\":{},\"age_acceleration\":{},\"drain_limit\":{}}},\"base_spec\":{}}}",
            self.epochs,
            self.age_acceleration,
            self.drain_limit,
            json_string(&base)
        ))
    }

    /// Parses a spec back from its canonical JSON.
    pub fn from_json(text: &str) -> Result<CampaignSpec, CampaignError> {
        let bad = |msg: &str| CampaignError::Spec(msg.to_string());
        let v = JsonValue::parse(text).map_err(|e| CampaignError::Spec(e.to_string()))?;
        let c = v.get("campaign").ok_or_else(|| bad("missing \"campaign\" object"))?;
        let epochs_raw = c
            .get("epochs")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| bad("missing or non-integer \"epochs\""))?;
        let epochs = u32::try_from(epochs_raw)
            .map_err(|_| bad("\"epochs\" exceeds the supported range"))?;
        let age_acceleration = c
            .get("age_acceleration")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| bad("missing or non-numeric \"age_acceleration\""))?;
        let drain_limit = c
            .get("drain_limit")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| bad("missing or non-integer \"drain_limit\""))?;
        let base_text = v
            .get("base_spec")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("missing \"base_spec\" string"))?;
        let base = spec_from_json(base_text).map_err(|e| CampaignError::Spec(e.to_string()))?;
        Ok(CampaignSpec {
            base,
            epochs,
            age_acceleration,
            drain_limit,
        })
    }
}

/// Why a campaign operation failed.
#[derive(Debug)]
pub enum CampaignError {
    /// Every epoch already ran; there is nothing left to do.
    Finished,
    /// The spec is unusable (zero epochs, bad acceleration, codec
    /// rejection, …).
    Spec(String),
    /// An epoch failed inside the experiment engine.
    Epoch(EpochError),
    /// The aging ledger rejected the epoch's duty totals.
    Ledger(LedgerError),
    /// A checkpoint could not be written or read.
    Snapshot(SnapshotError),
    /// An epoch produced no trace digest (telemetry harvest missing).
    MissingTrace,
    /// A remote dispatch could not be completed: every worker refused,
    /// died, or the retry budget ran out.
    Dispatch(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Finished => write!(f, "campaign already ran all its epochs"),
            CampaignError::Spec(msg) => write!(f, "invalid campaign spec: {msg}"),
            CampaignError::Epoch(e) => write!(f, "epoch failed: {e}"),
            CampaignError::Ledger(e) => write!(f, "aging ledger rejected the epoch: {e}"),
            CampaignError::Snapshot(e) => write!(f, "checkpoint error: {e}"),
            CampaignError::MissingTrace => {
                write!(f, "epoch returned no trace digest despite tracing being forced on")
            }
            CampaignError::Dispatch(msg) => write!(f, "remote dispatch failed: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Epoch(e) => Some(e),
            CampaignError::Ledger(e) => Some(e),
            CampaignError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EpochError> for CampaignError {
    fn from(e: EpochError) -> Self {
        CampaignError::Epoch(e)
    }
}

impl From<LedgerError> for CampaignError {
    fn from(e: LedgerError) -> Self {
        CampaignError::Ledger(e)
    }
}

impl From<SnapshotError> for CampaignError {
    fn from(e: SnapshotError) -> Self {
        CampaignError::Snapshot(e)
    }
}

/// Where a campaign's epochs actually run.
///
/// The engine never simulates directly: it builds a [`WireEpochRequest`]
/// for the next epoch, hands it to an executor, and integrates the
/// returned [`WireEpochOutcome`]. Because *both* the in-process
/// [`LocalExecutor`] and the service-backed remote executor consume the
/// same wire types, a remote campaign is bit-identical to a local one by
/// construction — the only thing an executor may vary is *where* the
/// deterministic function runs, never its inputs or outputs.
pub trait EpochExecutor {
    /// Runs epoch `index` described by `request` to completion.
    ///
    /// # Errors
    ///
    /// Simulation failures ([`CampaignError::Epoch`]) or, for remote
    /// executors, exhausted dispatch attempts ([`CampaignError::Spec`] is
    /// never used here; remotes surface [`CampaignError::Dispatch`]).
    fn execute(
        &self,
        index: u32,
        request: &WireEpochRequest,
    ) -> Result<WireEpochOutcome, CampaignError>;

    /// The executor's span log, when it records dispatch timing. The
    /// engine parents its `integrate` spans under the matching epoch span.
    fn span_log(&self) -> Option<&SpanLog> {
        None
    }
}

/// Runs epochs in-process, on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalExecutor;

impl EpochExecutor for LocalExecutor {
    fn execute(
        &self,
        _index: u32,
        request: &WireEpochRequest,
    ) -> Result<WireEpochOutcome, CampaignError> {
        static NEVER: AtomicBool = AtomicBool::new(false);
        let outcome = request.run_cancellable(&NEVER)?;
        Ok(WireEpochOutcome::from(&outcome))
    }
}

/// One in-flight (or historical) remote dispatch, as recorded in the
/// checkpoint's coordination log. An entry present in a loaded checkpoint
/// means the front end died while that epoch was out on that worker — the
/// resume path re-dispatches it (the shared result store absorbs the
/// duplicate if the original worker finished the job before dying).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchEntry {
    /// The epoch that was dispatched.
    pub epoch: u32,
    /// The worker address it went to.
    pub worker: String,
    /// Zero-based attempt number (bumps on reassignment).
    pub attempt: u32,
}

/// What one finished epoch reports back.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Zero-based epoch index.
    pub index: u32,
    /// The network cycle at the drained epoch boundary.
    pub end_cycle: u64,
    /// The epoch's own whole-stream event digest.
    pub digest: u64,
    /// The campaign digest chained over all boundary events so far.
    pub chained_digest: u64,
    /// Drain cycles spent settling in-flight traffic at the boundary.
    pub drain_cycles: u64,
    /// Worst accumulated `ΔVth` across all buffers after this epoch (mV).
    pub max_delta_vth_mv: f64,
    /// Worst per-buffer critical-path delay degradation after this epoch
    /// (percent, alpha-power model).
    pub worst_delay_degradation_percent: f64,
    /// The epoch's measurement window, in wire form.
    pub result: WireResult,
}

/// A running (or resumed) lifetime campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    pub(crate) spec: CampaignSpec,
    pub(crate) spec_json: String,
    pub(crate) cfg: ExperimentConfig,
    pub(crate) completed: u32,
    pub(crate) epoch_ends: Vec<(u64, u64)>,
    pub(crate) net: Option<NetworkSnapshot>,
    pub(crate) ledger: Option<LifetimeLedger>,
    pub(crate) dispatch: Vec<DispatchEntry>,
}

impl Campaign {
    /// Starts a fresh campaign.
    ///
    /// The base spec is normalized through the wire codec (serialize +
    /// reparse) so an uninterrupted run and a checkpoint-resumed run use
    /// byte-identical configurations, and event tracing is forced on —
    /// the per-epoch digest is the campaign's determinism witness, not an
    /// optional extra.
    pub fn new(spec: CampaignSpec) -> Result<Campaign, CampaignError> {
        if spec.epochs == 0 {
            return Err(CampaignError::Spec("a campaign needs at least one epoch".to_string()));
        }
        if !spec.age_acceleration.is_finite() || spec.age_acceleration <= 0.0 {
            return Err(CampaignError::Spec(format!(
                "age acceleration must be finite and positive (got {})",
                spec.age_acceleration
            )));
        }
        if spec.drain_limit == 0 {
            return Err(CampaignError::Spec(
                "drain limit must be at least 1 cycle".to_string(),
            ));
        }
        if !matches!(spec.base.cfg.sensor, SensorModel::Ideal) {
            return Err(CampaignError::Epoch(EpochError::UnsupportedSensor));
        }
        let base_json = spec_to_json(&spec.base).map_err(|e| CampaignError::Spec(e.to_string()))?;
        let base = spec_from_json(&base_json).map_err(|e| CampaignError::Spec(e.to_string()))?;
        let spec = CampaignSpec { base, ..spec };
        let spec_json = spec.canonical_json()?;
        let mut cfg = spec.base.cfg.clone();
        cfg.telemetry.trace = true;
        Ok(Campaign {
            spec,
            spec_json,
            cfg,
            completed: 0,
            epoch_ends: Vec::new(),
            net: None,
            ledger: None,
            dispatch: Vec::new(),
        })
    }

    /// Rebuilds a campaign from decoded checkpoint parts, cross-checking
    /// their internal consistency (used by the snapshot codec).
    pub(crate) fn from_parts(
        spec: CampaignSpec,
        completed: u32,
        epoch_ends: Vec<(u64, u64)>,
        net: Option<NetworkSnapshot>,
        states: Option<Vec<Vec<(Volt, RdState)>>>,
    ) -> Result<Campaign, SnapshotError> {
        let mut campaign =
            Campaign::new(spec).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        if u64::from(completed) != epoch_ends.len() as u64 {
            return Err(SnapshotError::Malformed(format!(
                "completed-epoch count {completed} disagrees with {} boundary records",
                epoch_ends.len()
            )));
        }
        if completed > campaign.spec.epochs {
            return Err(SnapshotError::Malformed(format!(
                "checkpoint claims {completed} completed epochs of a {}-epoch campaign",
                campaign.spec.epochs
            )));
        }
        if (completed > 0) != net.is_some() || (completed > 0) != states.is_some() {
            return Err(SnapshotError::Malformed(
                "network/ledger state must be present exactly when epochs completed".to_string(),
            ));
        }
        campaign.ledger = match states {
            Some(rows) => Some(
                LifetimeLedger::from_states(
                    &rows,
                    campaign.cfg.model,
                    campaign.spec.age_acceleration,
                )
                .map_err(|e| SnapshotError::Malformed(e.to_string()))?,
            ),
            None => None,
        };
        campaign.completed = completed;
        campaign.epoch_ends = epoch_ends;
        campaign.net = net;
        Ok(campaign)
    }

    /// The campaign's spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The canonical spec JSON — the campaign's content address.
    pub fn spec_json(&self) -> &str {
        &self.spec_json
    }

    /// Epochs finished so far.
    pub fn completed(&self) -> u32 {
        self.completed
    }

    /// `true` once every epoch has run.
    pub fn is_finished(&self) -> bool {
        self.completed >= self.spec.epochs
    }

    /// Per-epoch `(end cycle, digest)` boundary records.
    pub fn epoch_ends(&self) -> &[(u64, u64)] {
        &self.epoch_ends
    }

    /// The network cycle of the latest drained boundary, if any epoch ran.
    pub fn current_cycle(&self) -> Option<u64> {
        self.net.as_ref().map(|snapshot| snapshot.cycle)
    }

    /// The aging ledger, once epoch 0 has seeded it.
    pub fn ledger(&self) -> Option<&LifetimeLedger> {
        self.ledger.as_ref()
    }

    /// The campaign-level determinism witness: an [`EventDigest`] folded
    /// over one [`EventKind::EpochEnd`] event per finished epoch. Equal
    /// chained digests mean equal epoch boundaries — cycle, stream digest
    /// and order — which the resume tests tie back to bit-identical state.
    pub fn chained_digest(&self) -> u64 {
        let mut digest = EventDigest::new();
        for (i, &(cycle, epoch_digest)) in self.epoch_ends.iter().enumerate() {
            digest.update(&TraceEvent {
                cycle,
                kind: EventKind::EpochEnd {
                    index: i as u32,
                    digest: epoch_digest,
                },
            });
        }
        digest.value()
    }

    /// The content-address under which epoch `index` of this campaign is
    /// filed in a result store.
    pub fn epoch_store_key(&self, index: u32) -> String {
        format!("{{\"campaign_epoch\":{index},\"campaign\":{}}}", self.spec_json)
    }

    /// The checkpoint's coordination log: dispatches that were in flight
    /// when the checkpoint was written.
    pub fn dispatch_ledger(&self) -> &[DispatchEntry] {
        &self.dispatch
    }

    /// Records an in-flight dispatch (checkpoint it before dispatching so
    /// a front-end death leaves a visible trail).
    pub fn push_dispatch(&mut self, entry: DispatchEntry) {
        self.dispatch.push(entry);
    }

    /// Clears the in-flight ledger (the epoch's outcome is integrated).
    pub fn clear_dispatch(&mut self) {
        self.dispatch.clear();
    }

    /// Builds the wire request describing the *next* epoch: the base
    /// experiment re-seeded for this epoch, the drained boundary snapshot
    /// to resume from, and the ledger's aged threshold voltages. This is
    /// the complete, self-contained input a worker needs — local and
    /// remote execution consume the identical request.
    pub fn epoch_request(&self) -> Result<WireEpochRequest, CampaignError> {
        if self.is_finished() {
            return Err(CampaignError::Finished);
        }
        let index = self.completed;
        let traffic = self
            .spec
            .base
            .traffic
            .with_seed(self.spec.epoch_seed(index));
        let base = ExperimentJob {
            cfg: self.cfg.clone(),
            traffic,
        };
        let vths_bits = self
            .ledger
            .as_ref()
            .map(|ledger| WireEpochRequest::encode_vths(&ledger.aged_vths()));
        Ok(WireEpochRequest {
            base,
            resume: self.net.clone(),
            vths_bits,
            drain_limit: self.spec.drain_limit,
        })
    }

    /// Folds a finished epoch's wire outcome into the campaign: seeds or
    /// ages the ledger, advances the boundary chain, and files the result.
    fn integrate_outcome(
        &mut self,
        index: u32,
        wire: WireEpochOutcome,
        store: Option<&dyn ResultCache>,
    ) -> Result<EpochReport, CampaignError> {
        let digest = wire.result.trace_digest.ok_or(CampaignError::MissingTrace)?;
        if self.ledger.is_none() {
            let initial = wire.initial_vths();
            self.ledger = Some(LifetimeLedger::new(
                &initial,
                self.cfg.model,
                self.spec.age_acceleration,
            )?);
        }
        let (max_delta_vth_mv, worst_delay) = match self.ledger.as_mut() {
            Some(ledger) => {
                ledger.integrate_epoch(&wire.duty_totals)?;
                (
                    ledger.max_delta_vth_mv(),
                    ledger.worst_delay_degradation_percent(&AlphaPowerModel::paper_45nm()),
                )
            }
            None => (0.0, 0.0),
        };
        let end_cycle = wire.snapshot.cycle;
        self.epoch_ends.push((end_cycle, digest));
        self.net = Some(wire.snapshot);
        self.completed = index + 1;
        if let Some(store) = store {
            store.put(&self.epoch_store_key(index), &wire.result);
        }
        Ok(EpochReport {
            index,
            end_cycle,
            digest,
            chained_digest: self.chained_digest(),
            drain_cycles: wire.drain_cycles,
            max_delta_vth_mv,
            worst_delay_degradation_percent: worst_delay,
            result: wire.result,
        })
    }

    /// Runs the next epoch through `exec`: builds the wire request,
    /// executes it (locally or on a remote worker), then integrates the
    /// wire outcome. When the executor carries a [`SpanLog`], the
    /// integration step is recorded as an `integrate` span parented under
    /// the epoch's derived span id.
    pub fn run_next_epoch_with(
        &mut self,
        exec: &dyn EpochExecutor,
        store: Option<&dyn ResultCache>,
    ) -> Result<EpochReport, CampaignError> {
        let index = self.completed;
        let request = self.epoch_request()?;
        let wire = exec.execute(index, &request)?;
        let started = exec.span_log().map(SpanLog::now_us);
        let report = self.integrate_outcome(index, wire, store)?;
        if let (Some(log), Some(start)) = (exec.span_log(), started) {
            let parent = derive_id(SpanKind::Epoch, &format!("epoch-{index}"), NO_PARENT);
            log.record(SpanKind::Integrate, &format!("integrate-e{index}"), parent, start);
        }
        Ok(report)
    }

    /// Runs the next epoch: resumes the drained network, seeds sensors
    /// with the ledger's aged `Vth`s, simulates warmup + measurement +
    /// drain, then folds the epoch's duty totals back into the ledger.
    ///
    /// When a `store` is given, the epoch's wire result is persisted under
    /// [`epoch_store_key`](Campaign::epoch_store_key) for later inspection
    /// (`campaign status`, the service's cache endpoints). Epochs are
    /// never *served* from the store — the snapshot chain, not the result
    /// cache, is the resume mechanism.
    pub fn run_next_epoch(
        &mut self,
        store: Option<&dyn ResultCache>,
    ) -> Result<EpochReport, CampaignError> {
        self.run_next_epoch_with(&LocalExecutor, store)
    }

    /// Runs every remaining epoch, checkpointing after each one when a
    /// path is given (so a kill at any moment loses at most the epoch in
    /// flight).
    pub fn run_to_completion(
        &mut self,
        store: Option<&dyn ResultCache>,
        checkpoint: Option<&Path>,
    ) -> Result<Vec<EpochReport>, CampaignError> {
        let mut reports = Vec::new();
        while !self.is_finished() {
            let report = self.run_next_epoch(store)?;
            if let Some(path) = checkpoint {
                self.save(path)?;
            }
            reports.push(report);
        }
        Ok(reports)
    }
}
