//! # noc-campaign — multi-epoch lifetime campaigns
//!
//! The DATE 2013 paper evaluates its sensor-wise gating policies over a
//! device *lifetime*: NBTI threshold-voltage drift accumulates over
//! months while the NoC keeps switching every nanosecond. This crate
//! bridges those timescales by chaining cycle-accurate experiment
//! *epochs* into one campaign:
//!
//! * [`ledger`] — per-VC-buffer aging state carried between epochs: each
//!   buffer's reaction–diffusion walker integrates the epoch's
//!   stress/recovery duty totals (scaled by an age-acceleration factor),
//!   and its aged `Vth` feeds the *next* epoch's sensor readings — the
//!   paper's feedback loop, extended across a lifetime,
//! * [`engine`] — the campaign driver: per-epoch traffic seeding, drained
//!   network hand-off, the chained epoch-boundary digest that witnesses
//!   determinism, and epoch reports carrying `ΔVth` and delay-degradation
//!   projections,
//! * [`snapshot`] — versioned, checksummed binary checkpoints
//!   (`NBTICAMP` v2): resume at any epoch boundary is bit-identical to
//!   the uninterrupted run, and any corruption surfaces as a typed error,
//! * [`store`] — a content-addressed filesystem result store (canonical
//!   spec JSON → persisted wire result) implementing the engine-side
//!   [`sensorwise::ResultCache`] contract, with deterministic
//!   sequence-number GC,
//! * [`remote`] — the distributed execution plane: a [`WorkerPool`] of
//!   `noc-service` workers, a [`RemoteExecutor`] implementing the same
//!   [`EpochExecutor`] contract as in-process execution (so remote
//!   campaigns are bit-identical by construction), retry with
//!   reassignment on worker death, and backpressure-aware scheduling.
//!
//! # Example
//!
//! ```
//! use noc_campaign::{Campaign, CampaignSpec};
//! use sensorwise::policy::PolicyKind;
//! use sensorwise::{ExperimentConfig, ExperimentJob, TrafficSpec};
//!
//! let spec = CampaignSpec {
//!     base: ExperimentJob {
//!         cfg: ExperimentConfig::new(
//!             noc_sim::config::NocConfig::paper_synthetic(4, 2),
//!             PolicyKind::SensorWise,
//!         )
//!         .with_cycles(200, 1_000),
//!         traffic: TrafficSpec::Uniform { rate: 0.1, seed: 42 },
//!     },
//!     epochs: 2,
//!     age_acceleration: 1.0e9, // one cycle ≈ one second of lifetime
//!     drain_limit: 5_000,
//! };
//! let mut campaign = Campaign::new(spec).unwrap();
//! let first = campaign.run_next_epoch(None).unwrap();
//! let second = campaign.run_next_epoch(None).unwrap();
//! assert_eq!((first.index, second.index), (0, 1));
//! assert!(second.end_cycle > first.end_cycle);
//! assert!(second.max_delta_vth_mv > 0.0);
//! assert!(campaign.is_finished());
//! ```

#![deny(missing_debug_implementations)]
#![warn(
    clippy::semicolon_if_nothing_returned,
    clippy::explicit_iter_loop,
    clippy::redundant_closure_for_method_calls,
    clippy::manual_let_else
)]

pub mod engine;
pub mod ledger;
pub mod remote;
pub mod snapshot;
pub mod store;

pub use engine::{
    Campaign, CampaignError, CampaignSpec, DispatchEntry, EpochExecutor, EpochReport,
    LocalExecutor, EPOCH_SEED_STRIDE,
};
pub use ledger::{LedgerError, LifetimeLedger};
pub use remote::{recover_from_store, run_batch_remote, RemoteExecutor, WorkerPool};
pub use snapshot::{SnapshotError, FORMAT_VERSION, MAGIC, MIN_READ_VERSION};
pub use store::{FsResultStore, GcReport, StoreError, StoreStats};
