//! Distributed campaign execution.
//!
//! A remote campaign runs its epochs as served jobs against a pool of
//! `noc-service` workers instead of the calling thread. Three pieces:
//!
//! * [`pool`] — the [`WorkerPool`]: the worker addresses, their liveness,
//!   and the deterministic epoch→worker assignment (round-robin over the
//!   workers still alive, rotated by attempt number so reassignment after
//!   a death is itself deterministic),
//! * [`dispatch`] — the [`RemoteExecutor`]: implements the engine's
//!   [`EpochExecutor`](crate::EpochExecutor) contract by shipping the
//!   epoch's [`sensorwise::WireEpochRequest`] to a worker and decoding the
//!   [`sensorwise::WireEpochOutcome`] it serves back, with retry and
//!   reassignment on worker death and backpressure-aware (`429` +
//!   `Retry-After`, deterministic backoff) scheduling — plus
//!   [`run_batch_remote`](dispatch::run_batch_remote), the same plane for
//!   the per-point jobs of a cached sweep,
//! * [`recovery`] — resuming after a kill: the shared
//!   [`FsResultStore`](crate::FsResultStore) is the result plane every
//!   worker writes into, so an epoch whose worker died *after* filing its
//!   outcome is recovered from the store without re-simulation
//!   ([`recovery::recover_from_store`]), and a corrupt entry simply reads
//!   as a miss and is recomputed.
//!
//! # Determinism
//!
//! The executor never touches the epoch's inputs or outputs: the engine
//! builds the identical [`sensorwise::WireEpochRequest`] it would run
//! locally, and the worker runs the identical
//! [`sensorwise::run_epoch_cancellable`] the local executor calls. Every
//! `f64` crosses the wire as its IEEE-754 bit pattern. The chained
//! epoch-boundary digest of a remote campaign — through any interleaving
//! of worker deaths, retries and resumes — is therefore bit-identical to
//! the single-process run, and the CI smoke asserts exactly that.

pub mod dispatch;
pub mod pool;
pub mod recovery;

pub use dispatch::{run_batch_remote, RemoteExecutor};
pub use pool::WorkerPool;
pub use recovery::recover_from_store;
