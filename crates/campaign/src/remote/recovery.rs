//! Resuming a distributed campaign after a kill.
//!
//! The shared [`FsResultStore`] is the result plane every worker writes
//! finished epochs into, keyed by the canonical [`WireEpochRequest`] JSON.
//! Because the request for a given epoch is a deterministic function of
//! the campaign state, a resumed front end rebuilds byte-identical keys —
//! so an epoch whose worker filed its outcome before anyone died is
//! recovered straight from the store, no re-simulation and no worker
//! contact. A corrupt or undecodable entry reads as a miss (the store
//! checksums every entry) and the epoch is simply re-dispatched.

use crate::engine::{Campaign, CampaignError, EpochExecutor, EpochReport};
use crate::store::FsResultStore;
use sensorwise::{ResultCache, WireEpochOutcome, WireEpochRequest};

/// An executor that only answers from the shared result store: a hit
/// yields the stored outcome, a miss is a [`CampaignError::Dispatch`].
/// Never simulates and never contacts a worker — the recovery loop uses
/// the error as its stop condition.
#[derive(Debug)]
pub struct StoreExecutor<'a> {
    store: &'a FsResultStore,
}

impl<'a> StoreExecutor<'a> {
    /// An executor over `store`.
    pub fn new(store: &'a FsResultStore) -> StoreExecutor<'a> {
        StoreExecutor { store }
    }
}

impl EpochExecutor for StoreExecutor<'_> {
    fn execute(
        &self,
        index: u32,
        request: &WireEpochRequest,
    ) -> Result<WireEpochOutcome, CampaignError> {
        let key = request
            .to_json()
            .map_err(|e| CampaignError::Spec(e.to_string()))?;
        let doc = self.store.get_json(&key).ok_or_else(|| {
            CampaignError::Dispatch(format!("epoch {index} is not in the result store"))
        })?;
        WireEpochOutcome::from_json(&doc).map_err(|e| {
            CampaignError::Dispatch(format!("stored outcome for epoch {index} is undecodable: {e}"))
        })
    }
}

/// Integrates every consecutive epoch already present in the shared
/// store, stopping at the first miss (or campaign completion). Returns
/// the recovered reports; the caller dispatches whatever remains.
///
/// This is the first thing a `campaign resume --remote` does after
/// loading the checkpoint: epochs that finished on surviving workers
/// while the front end was dead are folded in for free, and only then do
/// the in-flight entries of the dispatch ledger go back out to the pool.
///
/// # Errors
///
/// Anything other than a store miss — a recovered outcome that fails
/// ledger integration, say — is a real [`CampaignError`].
pub fn recover_from_store(
    campaign: &mut Campaign,
    store: &FsResultStore,
) -> Result<Vec<EpochReport>, CampaignError> {
    let exec = StoreExecutor::new(store);
    let mut recovered = Vec::new();
    while !campaign.is_finished() {
        match campaign.run_next_epoch_with(&exec, Some(store as &dyn ResultCache)) {
            Ok(report) => recovered.push(report),
            Err(CampaignError::Dispatch(_)) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(recovered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CampaignSpec, LocalExecutor};
    use sensorwise::policy::PolicyKind;
    use sensorwise::{ExperimentConfig, ExperimentJob, TrafficSpec};
    use std::fs;

    fn small_spec(epochs: u32) -> CampaignSpec {
        CampaignSpec {
            base: ExperimentJob {
                cfg: ExperimentConfig::new(
                    noc_sim::config::NocConfig::paper_synthetic(4, 2),
                    PolicyKind::SensorWise,
                )
                .with_cycles(200, 1_200)
                .with_pv_seed(17),
                traffic: TrafficSpec::Uniform {
                    rate: 0.12,
                    seed: 999,
                },
            },
            epochs,
            age_acceleration: 1.0e9,
            drain_limit: 5_000,
        }
    }

    fn temp_store(tag: &str) -> FsResultStore {
        let dir = std::env::temp_dir().join(format!(
            "nbti-recovery-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        FsResultStore::open(dir).unwrap()
    }

    /// Simulates a worker having filed epoch outcomes into the shared
    /// store: runs a shadow campaign locally, writing each epoch's wire
    /// outcome under its request key.
    fn file_epochs(store: &FsResultStore, spec: CampaignSpec, epochs: u32) {
        let mut shadow = Campaign::new(spec).unwrap();
        for _ in 0..epochs {
            let request = shadow.epoch_request().unwrap();
            let key = request.to_json().unwrap();
            let outcome = LocalExecutor.execute(shadow.completed(), &request).unwrap();
            store.put_json(&key, &outcome.to_json());
            shadow.run_next_epoch(None).unwrap();
        }
    }

    #[test]
    fn recovers_filed_epochs_bit_identically_then_stops_at_the_miss() {
        let store = temp_store("partial");
        // A worker finished epochs 0 and 1 of a 4-epoch campaign before
        // the front end died.
        file_epochs(&store, small_spec(4), 2);

        let mut resumed = Campaign::new(small_spec(4)).unwrap();
        let recovered = recover_from_store(&mut resumed, &store).unwrap();
        assert_eq!(recovered.len(), 2, "exactly the filed epochs recover");
        assert_eq!(resumed.completed(), 2);

        // The recovered prefix is bit-identical to a pure local run.
        let mut local = Campaign::new(small_spec(4)).unwrap();
        local.run_next_epoch(None).unwrap();
        local.run_next_epoch(None).unwrap();
        assert_eq!(resumed.chained_digest(), local.chained_digest());
        assert_eq!(resumed.epoch_ends(), local.epoch_ends());

        // Finishing locally from the recovered state still matches an
        // uninterrupted run end-to-end.
        local.run_next_epoch(None).unwrap();
        local.run_next_epoch(None).unwrap();
        resumed.run_next_epoch(None).unwrap();
        resumed.run_next_epoch(None).unwrap();
        assert_eq!(resumed.chained_digest(), local.chained_digest());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_store_entry_is_a_miss_not_a_wrong_resume() {
        let store = temp_store("corrupt");
        file_epochs(&store, small_spec(2), 1);

        // Corrupt the filed entry in place: flip one byte of the stored
        // result text.
        let mut resumed = Campaign::new(small_spec(2)).unwrap();
        let key = resumed.epoch_request().unwrap().to_json().unwrap();
        let path = store
            .dir()
            .join(format!("{:016x}.json", sensorwise::spec_key(&key)));
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("epoch_outcome", "epoch_outcomf", 1);
        assert_ne!(tampered, text);
        fs::write(&path, tampered).unwrap();

        // Recovery sees a miss and recovers nothing; it never serves the
        // damaged bytes.
        let recovered = recover_from_store(&mut resumed, &store).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(resumed.completed(), 0);

        // Recomputing heals the plane and the digest matches local.
        let request = resumed.epoch_request().unwrap();
        let outcome = LocalExecutor.execute(0, &request).unwrap();
        store.put_json(&request.to_json().unwrap(), &outcome.to_json());
        let recovered = recover_from_store(&mut resumed, &store).unwrap();
        assert_eq!(recovered.len(), 1);

        let mut local = Campaign::new(small_spec(2)).unwrap();
        local.run_next_epoch(None).unwrap();
        assert_eq!(resumed.chained_digest(), local.chained_digest());
        let _ = fs::remove_dir_all(store.dir());
    }
}
