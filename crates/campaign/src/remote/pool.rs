//! The worker pool: addresses, liveness, deterministic assignment.

use crate::engine::CampaignError;
use noc_service::ServiceClient;
use std::sync::atomic::{AtomicBool, Ordering};

/// A pool of `noc-service` workers sharing one result store.
///
/// Liveness is tracked per worker with interior mutability so the
/// dispatcher can mark a worker dead from behind the shared
/// [`EpochExecutor`](crate::EpochExecutor) reference. Death is sticky for
/// the life of the pool: a worker that refused a TCP connection once is
/// skipped by every later assignment, keeping the retry schedule
/// deterministic for a given failure pattern.
#[derive(Debug)]
pub struct WorkerPool {
    clients: Vec<ServiceClient>,
    alive: Vec<AtomicBool>,
}

impl WorkerPool {
    /// A pool over `addrs` (`host:port` each). All workers start alive.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Dispatch`] when `addrs` is empty.
    pub fn new(addrs: &[String]) -> Result<WorkerPool, CampaignError> {
        if addrs.is_empty() {
            return Err(CampaignError::Dispatch(
                "a remote campaign needs at least one worker address".to_string(),
            ));
        }
        Ok(WorkerPool {
            clients: addrs.iter().map(ServiceClient::new).collect(),
            alive: addrs.iter().map(|_| AtomicBool::new(true)).collect(),
        })
    }

    /// Total workers, dead or alive.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// `true` when the pool has no workers (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Workers still considered alive.
    pub fn alive_count(&self) -> usize {
        self.alive
            .iter()
            .filter(|flag| flag.load(Ordering::Relaxed))
            .count()
    }

    /// The client for worker `index`.
    pub fn client(&self, index: usize) -> &ServiceClient {
        &self.clients[index]
    }

    /// The address of worker `index`.
    pub fn addr(&self, index: usize) -> &str {
        self.clients[index].addr()
    }

    /// Marks worker `index` dead (transport failure observed).
    pub fn mark_dead(&self, index: usize) {
        self.alive[index].store(false, Ordering::Relaxed);
    }

    /// Whether worker `index` is still alive.
    pub fn is_alive(&self, index: usize) -> bool {
        self.alive[index].load(Ordering::Relaxed)
    }

    /// The deterministic worker assignment for `(epoch, attempt)`: the
    /// `(epoch + attempt) mod alive`-th worker among those still alive.
    /// Epochs spread round-robin across the pool; each retry rotates to
    /// the next live worker, so a reassignment after a death lands
    /// somewhere else whenever somewhere else exists. `None` when every
    /// worker is dead.
    pub fn planned_worker(&self, epoch: u32, attempt: u32) -> Option<usize> {
        let live: Vec<usize> = (0..self.clients.len())
            .filter(|&i| self.is_alive(i))
            .collect();
        if live.is_empty() {
            return None;
        }
        let slot = (epoch as usize + attempt as usize) % live.len();
        Some(live[slot])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> WorkerPool {
        let addrs: Vec<String> = (0..n).map(|i| format!("127.0.0.1:{}", 4000 + i)).collect();
        WorkerPool::new(&addrs).unwrap()
    }

    #[test]
    fn empty_pools_are_rejected() {
        assert!(matches!(
            WorkerPool::new(&[]).unwrap_err(),
            CampaignError::Dispatch(_)
        ));
    }

    #[test]
    fn assignment_is_round_robin_and_deterministic() {
        let p = pool(3);
        let first: Vec<_> = (0..6).map(|e| p.planned_worker(e, 0)).collect();
        assert_eq!(first, vec![Some(0), Some(1), Some(2), Some(0), Some(1), Some(2)]);
        // Replays identically.
        let again: Vec<_> = (0..6).map(|e| p.planned_worker(e, 0)).collect();
        assert_eq!(first, again);
        // A retry rotates to the next worker.
        assert_eq!(p.planned_worker(0, 1), Some(1));
        assert_eq!(p.planned_worker(0, 2), Some(2));
        assert_eq!(p.planned_worker(0, 3), Some(0));
    }

    #[test]
    fn dead_workers_are_skipped_until_none_remain() {
        let p = pool(3);
        p.mark_dead(1);
        assert_eq!(p.alive_count(), 2);
        // Assignments only ever name workers 0 and 2 now.
        for epoch in 0..8 {
            for attempt in 0..4 {
                let w = p.planned_worker(epoch, attempt).unwrap();
                assert_ne!(w, 1, "dead worker assigned at ({epoch},{attempt})");
            }
        }
        p.mark_dead(0);
        assert_eq!(p.planned_worker(5, 0), Some(2));
        p.mark_dead(2);
        assert_eq!(p.planned_worker(0, 0), None);
        assert_eq!(p.alive_count(), 0);
    }
}
