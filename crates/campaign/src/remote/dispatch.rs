//! The remote epoch dispatcher.

use crate::engine::{CampaignError, EpochExecutor};
use crate::remote::pool::WorkerPool;
use noc_service::{deterministic_backoff_ms, ServiceClient, Submitted};
use noc_telemetry::{derive_id, Span, SpanKind, SpanLog, NO_PARENT};
use sensorwise::{spec_key, WireEpochOutcome, WireEpochRequest, WireResult};
use std::collections::BTreeMap;
use std::thread;
use std::time::Duration;

/// Why one dispatch attempt against one worker did not yield an outcome.
enum TryError {
    /// The worker is unreachable or stopped answering mid-job: mark it
    /// dead and reassign.
    Transport(String),
    /// The worker's queue is full (`429`): back off deterministically and
    /// rotate to the next worker. Carries the `Retry-After` hint.
    Busy(u64),
    /// The worker ran the job and it failed (typed simulation error).
    /// Deterministic — the same request fails the same way anywhere — so
    /// reassignment is pointless.
    Job(String),
}

/// Polls a job to terminal state and decodes its raw result body.
fn poll_result_json(
    client: &ServiceClient,
    id: u64,
    poll_ms: u64,
    max_polls: u32,
) -> Result<String, TryError> {
    for _ in 0..max_polls {
        let status = client.status(id).map_err(TryError::Transport)?;
        if status.is_terminal() {
            if status.status != "done" {
                return Err(TryError::Job(format!(
                    "worker {} job {id} ended {}{}",
                    client.addr(),
                    status.status,
                    status.error.map(|e| format!(": {e}")).unwrap_or_default()
                )));
            }
            return client
                .result_json(id)
                .map_err(TryError::Transport)?
                .ok_or_else(|| {
                    TryError::Transport(format!(
                        "worker {} reported job {id} done but served no result",
                        client.addr()
                    ))
                });
        }
        thread::sleep(Duration::from_millis(poll_ms.max(1)));
    }
    Err(TryError::Transport(format!(
        "worker {} job {id} still not terminal after {max_polls} polls",
        client.addr()
    )))
}

/// Executes campaign epochs on a [`WorkerPool`] of `noc-service` workers.
///
/// Implements the engine's [`EpochExecutor`] contract: the engine hands it
/// the exact [`WireEpochRequest`] a local run would execute, and gets back
/// the exact [`WireEpochOutcome`] the worker's simulator produced —
/// bit-for-bit, every float as its IEEE-754 pattern. The executor owns
/// *placement only*: which worker, how many retries, how long to back off
/// under `429` backpressure.
///
/// Failure handling per attempt:
///
/// * transport failure (connect refused, death mid-job, torn result) —
///   the worker is marked dead and the epoch reassigned to the next live
///   worker, up to `retries` reassignments;
/// * `429 Busy` — deterministic seed-derived backoff (never wall-clock
///   random), then the rotation naturally tries the next worker;
/// * a typed job failure (drain timeout, unsupported sensor, …) — fails
///   the campaign immediately: the request is deterministic, so every
///   worker would fail identically.
///
/// Every attempt is recorded as a `dispatch` span (`dispatch-e{E}-a{A}`)
/// parented under the epoch's derived span id, and every integration the
/// engine performs on this executor's behalf as an `integrate` span —
/// `drain_spans` hands them to the caller's sidecar.
#[derive(Debug)]
pub struct RemoteExecutor {
    pool: WorkerPool,
    retries: u32,
    poll_ms: u64,
    max_polls: u32,
    spans: SpanLog,
}

impl RemoteExecutor {
    /// An executor over `pool` tolerating `retries` reassignments per
    /// epoch. Polls results every 10 ms for up to 10 minutes.
    pub fn new(pool: WorkerPool, retries: u32) -> RemoteExecutor {
        RemoteExecutor {
            pool,
            retries,
            poll_ms: 10,
            max_polls: 60_000,
            spans: SpanLog::new(),
        }
    }

    /// Overrides the result-poll cadence (interval and probe budget).
    #[must_use]
    pub fn with_poll(mut self, poll_ms: u64, max_polls: u32) -> RemoteExecutor {
        self.poll_ms = poll_ms;
        self.max_polls = max_polls;
        self
    }

    /// The worker pool.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The reassignment budget per epoch.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// The worker the scheduler will try for `(epoch, attempt)`, if any
    /// live worker remains (exposed for `campaign status` and tests).
    pub fn planned_worker(&self, epoch: u32, attempt: u32) -> Option<String> {
        self.pool
            .planned_worker(epoch, attempt)
            .map(|i| self.pool.addr(i).to_string())
    }

    /// Takes every recorded dispatch/integrate span, oldest first.
    #[must_use]
    pub fn drain_spans(&self) -> Vec<Span> {
        self.spans.drain()
    }

    fn try_worker(&self, worker: usize, request_json: &str) -> Result<WireEpochOutcome, TryError> {
        let client = self.pool.client(worker);
        let (submitted, _) = client.submit(request_json).map_err(TryError::Transport)?;
        let id = match submitted {
            Submitted::Accepted { id } => id,
            Submitted::Busy { retry_after_secs } => return Err(TryError::Busy(retry_after_secs)),
            Submitted::Refused { status, error } => {
                return Err(TryError::Job(format!(
                    "worker {} refused the epoch ({status}): {error}",
                    client.addr()
                )))
            }
        };
        let doc = poll_result_json(client, id, self.poll_ms, self.max_polls)?;
        // A result that fails to decode is corruption in transit or at
        // rest — a miss, recomputed elsewhere, never a wrong value.
        WireEpochOutcome::from_json(&doc).map_err(|e| {
            TryError::Transport(format!(
                "worker {} served an undecodable epoch outcome: {e}",
                client.addr()
            ))
        })
    }
}

impl EpochExecutor for RemoteExecutor {
    fn execute(
        &self,
        index: u32,
        request: &WireEpochRequest,
    ) -> Result<WireEpochOutcome, CampaignError> {
        let request_json = request
            .to_json()
            .map_err(|e| CampaignError::Spec(e.to_string()))?;
        let seed = spec_key(&request_json);
        let epoch_span = derive_id(SpanKind::Epoch, &format!("epoch-{index}"), NO_PARENT);
        let mut last_error = String::new();
        for attempt in 0..=self.retries {
            let Some(worker) = self.pool.planned_worker(index, attempt) else {
                return Err(CampaignError::Dispatch(format!(
                    "epoch {index}: every worker is dead (last error: {last_error})"
                )));
            };
            let start = self.spans.now_us();
            let outcome = self.try_worker(worker, &request_json);
            self.spans.record(
                SpanKind::Dispatch,
                &format!("dispatch-e{index}-a{attempt}"),
                epoch_span,
                start,
            );
            match outcome {
                Ok(wire) => return Ok(wire),
                Err(TryError::Transport(msg)) => {
                    self.pool.mark_dead(worker);
                    last_error = msg;
                }
                Err(TryError::Busy(retry_after)) => {
                    last_error = format!("worker {} is at capacity", self.pool.addr(worker));
                    let wait = deterministic_backoff_ms(seed, attempt, retry_after);
                    thread::sleep(Duration::from_millis(wait));
                }
                Err(TryError::Job(msg)) => {
                    return Err(CampaignError::Dispatch(msg));
                }
            }
        }
        Err(CampaignError::Dispatch(format!(
            "epoch {index} undispatched after {} attempts: {last_error}",
            self.retries + 1
        )))
    }

    fn span_log(&self) -> Option<&SpanLog> {
        Some(&self.spans)
    }
}

/// Runs the per-point jobs of a sweep against the pool via
/// `POST /jobs/batch`: one queue-reservation pass per worker per round,
/// per-item `202`/`429` handling, deterministic backoff between rounds,
/// and reassignment of every point stranded on a dead worker. Returns one
/// [`WireResult`] per spec, in input order.
///
/// # Errors
///
/// [`CampaignError::Dispatch`] when every worker dies, a point is refused
/// outright, a job fails on a worker, or the retry budget runs out with
/// points still pending.
pub fn run_batch_remote(
    pool: &WorkerPool,
    specs: &[String],
    retries: u32,
    poll_ms: u64,
    max_polls: u32,
) -> Result<Vec<WireResult>, CampaignError> {
    let mut results: Vec<Option<WireResult>> = specs.iter().map(|_| None).collect();
    let mut pending: Vec<usize> = (0..specs.len()).collect();
    let mut attempt: u32 = 0;
    while !pending.is_empty() {
        if attempt > retries {
            return Err(CampaignError::Dispatch(format!(
                "{} sweep points still undispatched after {} rounds",
                pending.len(),
                retries + 1
            )));
        }
        // Group this round's points by their deterministic assignment.
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &point in &pending {
            match pool.planned_worker(point as u32, attempt) {
                Some(worker) => groups.entry(worker).or_default().push(point),
                None => {
                    return Err(CampaignError::Dispatch(
                        "every worker is dead with sweep points pending".to_string(),
                    ))
                }
            }
        }
        let mut deferred: Vec<usize> = Vec::new();
        let mut accepted: Vec<(usize, usize, u64)> = Vec::new();
        for (worker, points) in &groups {
            let client = pool.client(*worker);
            let batch: Vec<String> = points.iter().map(|&p| specs[p].clone()).collect();
            match client.submit_batch(&batch) {
                Ok(rows) => {
                    for (slot, &point) in points.iter().enumerate() {
                        match rows.get(slot) {
                            Some(Submitted::Accepted { id }) => {
                                accepted.push((*worker, point, *id));
                            }
                            Some(Submitted::Busy { .. }) | None => deferred.push(point),
                            Some(Submitted::Refused { status, error }) => {
                                return Err(CampaignError::Dispatch(format!(
                                    "sweep point {point} refused by {} ({status}): {error}",
                                    client.addr()
                                )))
                            }
                        }
                    }
                }
                Err(_) => {
                    pool.mark_dead(*worker);
                    deferred.extend(points.iter().copied());
                }
            }
        }
        for (worker, point, id) in accepted {
            let client = pool.client(worker);
            match poll_result_json(client, id, poll_ms, max_polls)
                .and_then(|doc| {
                    WireResult::from_json(&doc).map_err(|e| {
                        TryError::Transport(format!("undecodable sweep result: {e}"))
                    })
                }) {
                Ok(result) => results[point] = Some(result),
                Err(TryError::Job(msg)) => return Err(CampaignError::Dispatch(msg)),
                Err(_) => {
                    pool.mark_dead(worker);
                    deferred.push(point);
                }
            }
        }
        if !deferred.is_empty() {
            deferred.sort_unstable();
            let seed = spec_key(&specs[deferred[0]]);
            let wait = deterministic_backoff_ms(seed, attempt, 1);
            thread::sleep(Duration::from_millis(wait));
        }
        pending = deferred;
        attempt += 1;
    }
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.ok_or_else(|| CampaignError::Dispatch(format!("sweep point {i} produced no result")))
        })
        .collect()
}
