//! Per-buffer lifetime aging ledger.
//!
//! A campaign's aging feedback loop lives here: after every epoch the
//! engine hands the ledger each VC buffer's aggregate stress/recovery
//! cycle counts (the paper's NBTI-duty-cycle bookkeeping, Sec. III), and
//! the ledger advances one reaction–diffusion walker
//! ([`RdCycleModel`], Eq. 1 of the paper) per buffer. The aged threshold
//! voltages it reports — initial process-variation `Vth` plus the
//! accumulated `ΔVth` — seed the *next* epoch's sensor readings, so a
//! policy's gating decisions feed back into the degradation trajectory it
//! will face later in life.
//!
//! Epoch integration applies the epoch's aggregate stress first, then its
//! aggregate recovery. That canonical order makes integration independent
//! of the (unknowable) intra-epoch interleaving while preserving the
//! model's power-law-stress / universal-relaxation structure; with
//! epoch-level granularity it is also the conservative choice (recovery
//! relaxes the full accumulated shift).

use nbti_model::rd::{RdCycleModel, RdState};
use nbti_model::{AlphaPowerModel, LongTermModel, Volt};
use std::fmt;

/// Why a ledger operation was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// The age-acceleration factor is not a finite positive number.
    BadAcceleration(f64),
    /// The duty-total (or state) table has a different port count than the
    /// ledger.
    PortMismatch {
        /// Ports the ledger tracks.
        expected: usize,
        /// Ports the caller supplied.
        got: usize,
    },
    /// One port's VC count disagrees with the ledger.
    VcMismatch {
        /// The offending port index.
        port: usize,
        /// VCs the ledger tracks for that port.
        expected: usize,
        /// VCs the caller supplied.
        got: usize,
    },
    /// A restored walker state carried non-finite or negative values.
    InvalidState {
        /// The offending port index.
        port: usize,
        /// The offending VC index.
        vc: usize,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::BadAcceleration(a) => {
                write!(f, "age acceleration must be finite and positive (got {a})")
            }
            LedgerError::PortMismatch { expected, got } => {
                write!(f, "port count mismatch: ledger has {expected}, caller supplied {got}")
            }
            LedgerError::VcMismatch {
                port,
                expected,
                got,
            } => write!(
                f,
                "VC count mismatch on port {port}: ledger has {expected}, caller supplied {got}"
            ),
            LedgerError::InvalidState { port, vc } => {
                write!(f, "invalid walker state for port {port} VC {vc}")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

/// One VC buffer's lifetime record: its process-variation initial `Vth`
/// and the R-D walker accumulating its `ΔVth`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct VcAge {
    initial_vth: Volt,
    rd: RdCycleModel,
}

/// Per-port, per-VC lifetime aging state carried across campaign epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeLedger {
    tclk_s: f64,
    age_acceleration: f64,
    ports: Vec<Vec<VcAge>>,
}

impl LifetimeLedger {
    /// Seeds a fresh ledger from epoch 0's sampled initial threshold
    /// voltages (one row per monitored port, one entry per VC).
    ///
    /// `age_acceleration` scales simulated cycles into lifetime seconds:
    /// each epoch cycle ages the device `age_acceleration × tclk` seconds,
    /// letting a few thousand simulated cycles stand in for months of
    /// operation (the paper's ten-year horizon would otherwise be
    /// unreachable in simulation).
    pub fn new(
        initial_vths: &[Vec<Volt>],
        model: LongTermModel,
        age_acceleration: f64,
    ) -> Result<LifetimeLedger, LedgerError> {
        if !age_acceleration.is_finite() || age_acceleration <= 0.0 {
            return Err(LedgerError::BadAcceleration(age_acceleration));
        }
        let ports = initial_vths
            .iter()
            .map(|vcs| {
                vcs.iter()
                    .map(|&initial_vth| VcAge {
                        initial_vth,
                        rd: RdCycleModel::new(model),
                    })
                    .collect()
            })
            .collect();
        Ok(LifetimeLedger {
            tclk_s: model.params().tclk_s,
            age_acceleration,
            ports,
        })
    }

    /// Rebuilds a ledger from checkpointed per-VC `(initial Vth, walker
    /// state)` rows, validating every value before restoring (corrupted
    /// snapshots must surface as typed errors, never panics).
    pub fn from_states(
        states: &[Vec<(Volt, RdState)>],
        model: LongTermModel,
        age_acceleration: f64,
    ) -> Result<LifetimeLedger, LedgerError> {
        if !age_acceleration.is_finite() || age_acceleration <= 0.0 {
            return Err(LedgerError::BadAcceleration(age_acceleration));
        }
        let mut ports = Vec::with_capacity(states.len());
        for (p, row) in states.iter().enumerate() {
            let mut vcs = Vec::with_capacity(row.len());
            for (v, &(initial_vth, state)) in row.iter().enumerate() {
                let ok = initial_vth.is_finite()
                    && state.delta_vth_v.is_finite()
                    && state.stress_age_s.is_finite()
                    && state.total_age_s.is_finite()
                    && state.delta_vth_v >= 0.0
                    && state.stress_age_s >= 0.0
                    && state.total_age_s >= 0.0;
                if !ok {
                    return Err(LedgerError::InvalidState { port: p, vc: v });
                }
                let mut rd = RdCycleModel::new(model);
                rd.restore_state(state);
                vcs.push(VcAge { initial_vth, rd });
            }
            ports.push(vcs);
        }
        Ok(LifetimeLedger {
            tclk_s: model.params().tclk_s,
            age_acceleration,
            ports,
        })
    }

    /// Integrates one finished epoch: `duty_totals[port][vc]` is that
    /// buffer's `(stress_cycles, recovery_cycles)` aggregate, exactly as
    /// reported by the experiment engine's duty closure.
    pub fn integrate_epoch(
        &mut self,
        duty_totals: &[Vec<(u64, u64)>],
    ) -> Result<(), LedgerError> {
        if duty_totals.len() != self.ports.len() {
            return Err(LedgerError::PortMismatch {
                expected: self.ports.len(),
                got: duty_totals.len(),
            });
        }
        for (p, (vcs, totals)) in self.ports.iter_mut().zip(duty_totals).enumerate() {
            if totals.len() != vcs.len() {
                return Err(LedgerError::VcMismatch {
                    port: p,
                    expected: vcs.len(),
                    got: totals.len(),
                });
            }
            for (age, &(stress, recovery)) in vcs.iter_mut().zip(totals) {
                let scale = self.tclk_s * self.age_acceleration;
                age.rd.stress(stress as f64 * scale);
                age.rd.recover(recovery as f64 * scale);
            }
        }
        Ok(())
    }

    /// The aged threshold voltages — initial `Vth` plus accumulated
    /// `ΔVth` — that seed the next epoch's ideal sensors.
    pub fn aged_vths(&self) -> Vec<Vec<Volt>> {
        self.ports
            .iter()
            .map(|vcs| {
                vcs.iter()
                    .map(|age| age.initial_vth + age.rd.delta_vth())
                    .collect()
            })
            .collect()
    }

    /// Accumulated per-buffer `ΔVth` rows (same shape as [`aged_vths`]).
    ///
    /// [`aged_vths`]: LifetimeLedger::aged_vths
    pub fn delta_vths(&self) -> Vec<Vec<Volt>> {
        self.ports
            .iter()
            .map(|vcs| vcs.iter().map(|age| age.rd.delta_vth()).collect())
            .collect()
    }

    /// The worst accumulated shift across every tracked buffer, in mV.
    pub fn max_delta_vth_mv(&self) -> f64 {
        self.ports
            .iter()
            .flatten()
            .map(|age| age.rd.delta_vth().as_millivolts())
            .fold(0.0, f64::max)
    }

    /// The worst per-buffer critical-path delay degradation (percent)
    /// under the alpha-power delay model — the metric the paper's Table II
    /// ultimately protects.
    pub fn worst_delay_degradation_percent(&self, delay: &AlphaPowerModel) -> f64 {
        self.ports
            .iter()
            .flatten()
            .map(|age| delay.delay_degradation_percent(age.initial_vth, age.rd.delta_vth()))
            .fold(0.0, f64::max)
    }

    /// Number of monitored ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Checkpoint rows: per-VC `(initial Vth, walker state)`, consumed by
    /// the campaign snapshot codec.
    pub fn vc_states(&self) -> Vec<Vec<(Volt, RdState)>> {
        self.ports
            .iter()
            .map(|vcs| {
                vcs.iter()
                    .map(|age| (age.initial_vth, age.rd.state()))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_port_ledger(accel: f64) -> LifetimeLedger {
        let vth = |mv: f64| Volt::from_millivolts(mv);
        let initial = vec![vec![vth(180.0), vth(185.0)], vec![vth(178.0), vth(190.0)]];
        LifetimeLedger::new(&initial, LongTermModel::calibrated_45nm(), accel).unwrap()
    }

    #[test]
    fn rejects_bad_acceleration_and_shape_mismatches() {
        let initial = vec![vec![Volt::from_millivolts(180.0)]];
        let model = LongTermModel::calibrated_45nm();
        assert_eq!(
            LifetimeLedger::new(&initial, model, 0.0).unwrap_err(),
            LedgerError::BadAcceleration(0.0)
        );
        assert!(matches!(
            LifetimeLedger::new(&initial, model, f64::NAN).unwrap_err(),
            LedgerError::BadAcceleration(_)
        ));

        let mut ledger = two_port_ledger(1.0e6);
        assert_eq!(
            ledger.integrate_epoch(&[vec![(1, 1), (1, 1)]]).unwrap_err(),
            LedgerError::PortMismatch {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            ledger
                .integrate_epoch(&[vec![(1, 1)], vec![(1, 1), (1, 1)]])
                .unwrap_err(),
            LedgerError::VcMismatch {
                port: 0,
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn stressed_buffers_age_and_gated_buffers_age_less() {
        let mut ledger = two_port_ledger(1.0e9);
        // Port 0 VC 0 is stressed the whole epoch; VC 1 mostly recovers.
        let totals = vec![
            vec![(4_000, 0), (400, 3_600)],
            vec![(2_000, 2_000), (2_000, 2_000)],
        ];
        for _ in 0..4 {
            ledger.integrate_epoch(&totals).unwrap();
        }
        let dv = ledger.delta_vths();
        assert!(dv[0][0].as_volts() > 0.0);
        assert!(
            dv[0][0] > dv[0][1],
            "always-stressed VC must age more than the mostly-gated one: {:?} vs {:?}",
            dv[0][0],
            dv[0][1]
        );
        assert!(ledger.max_delta_vth_mv() >= dv[0][0].as_millivolts() - 1e-12);
        // Aged Vths are initial + delta.
        let aged = ledger.aged_vths();
        assert!((aged[0][0] - dv[0][0]).as_millivolts() - 180.0 < 1e-9);
        // Delay degradation is positive once anything aged.
        let delay = AlphaPowerModel::paper_45nm();
        assert!(ledger.worst_delay_degradation_percent(&delay) > 0.0);
    }

    #[test]
    fn aging_is_monotone_over_epochs() {
        let mut ledger = two_port_ledger(1.0e9);
        let totals = vec![
            vec![(3_000, 1_000), (1_000, 3_000)],
            vec![(2_000, 2_000), (2_000, 2_000)],
        ];
        let mut last = 0.0;
        for _ in 0..6 {
            ledger.integrate_epoch(&totals).unwrap();
            let now = ledger.max_delta_vth_mv();
            assert!(
                now >= last,
                "net-stressed buffer's Vth shift went backwards: {now} < {last}"
            );
            last = now;
        }
        assert!(last > 0.0);
    }

    #[test]
    fn state_round_trip_is_bit_exact() {
        let mut ledger = two_port_ledger(1.0e8);
        ledger
            .integrate_epoch(&[
                vec![(3_000, 1_000), (1_000, 3_000)],
                vec![(2_000, 2_000), (100, 3_900)],
            ])
            .unwrap();
        let states = ledger.vc_states();
        let restored = LifetimeLedger::from_states(
            &states,
            LongTermModel::calibrated_45nm(),
            1.0e8,
        )
        .unwrap();
        assert_eq!(ledger, restored);
        // And the restored ledger continues identically.
        let mut a = ledger.clone();
        let mut b = restored;
        let totals = vec![vec![(500, 3_500), (3_500, 500)], vec![(1, 3_999), (0, 4_000)]];
        a.integrate_epoch(&totals).unwrap();
        b.integrate_epoch(&totals).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_states_rejects_corrupt_values() {
        let model = LongTermModel::calibrated_45nm();
        let good = RdState {
            delta_vth_v: 0.01,
            stress_age_s: 1.0,
            total_age_s: 2.0,
        };
        let bad = RdState {
            delta_vth_v: -0.01,
            ..good
        };
        let states = vec![vec![(Volt::from_millivolts(180.0), good), (Volt::from_millivolts(180.0), bad)]];
        assert_eq!(
            LifetimeLedger::from_states(&states, model, 1.0).unwrap_err(),
            LedgerError::InvalidState { port: 0, vc: 1 }
        );
        let nan_vth = vec![vec![(Volt::from_volts(f64::NAN), good)]];
        assert!(matches!(
            LifetimeLedger::from_states(&nan_vth, model, 1.0).unwrap_err(),
            LedgerError::InvalidState { port: 0, vc: 0 }
        ));
    }
}
