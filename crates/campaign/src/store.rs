//! Content-addressed, filesystem-backed result store.
//!
//! Every entry is one JSON file named by the FNV-1a 64 hash of its
//! canonical spec (`<hash>.json`), holding the spec itself, the wire
//! result, an insertion sequence number and a checksum:
//!
//! ```json
//! {"seq":7,"check":"<fnv64 of result string>","spec":"<canonical spec>","result":"<wire result>"}
//! ```
//!
//! The hash is only the *filing* address — `get` always verifies the
//! stored spec string against the requested one, so a hash collision (or
//! a tampered entry) degrades to a cache miss, never to serving the wrong
//! result. Likewise any unreadable, unparsable or checksum-failing entry
//! is a miss: callers recompute, the store never surfaces corruption as
//! data.
//!
//! The store carries two planes over the same envelope: the typed
//! [`ResultCache::get`]/[`ResultCache::put`] plane for [`WireResult`]s,
//! and the raw-JSON `get_json`/`put_json` plane the distributed campaign
//! subsystem uses for epoch-outcome documents. Entry writes go through a
//! per-writer temp file plus an atomic rename, so the store is safe as
//! the *shared* result plane of many concurrent worker processes.
//!
//! Eviction is deterministic and wall-clock-free: entries carry a
//! monotonic sequence number from a persisted counter, and
//! [`FsResultStore::gc`] drops the lowest `(seq, filename)` order first —
//! insertion-order FIFO without ever consulting file mtimes. Concurrent
//! writers may duplicate a sequence number; the filename tiebreak keeps
//! the GC order total and stable regardless.

use sensorwise::codec::{json_string, JsonValue};
use sensorwise::{spec_key, ResultCache, WireResult};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Why a store maintenance operation failed (lookup and insertion never
/// fail — they degrade to miss / no-op by design).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The underlying directory or file operation failed.
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "result store I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Aggregate store statistics, as reported by `nbti-noc cache stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of result entries on disk.
    pub entries: usize,
    /// Total size of those entries in bytes.
    pub bytes: u64,
}

/// What a garbage-collection pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// Entries removed (oldest first).
    pub removed: usize,
    /// Entries still present afterwards.
    pub kept: usize,
}

/// A directory of content-addressed [`WireResult`]s implementing the
/// engine-side [`ResultCache`] contract.
#[derive(Debug, Clone)]
pub struct FsResultStore {
    dir: PathBuf,
}

const SEQ_FILE: &str = "seq";

impl FsResultStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<FsResultStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| StoreError::Io(e.to_string()))?;
        Ok(FsResultStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, spec: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.json", spec_key(spec)))
    }

    /// Claims the next insertion sequence number. Failures fall back to 0
    /// (the entry then just looks oldest to the GC); caching must never
    /// abort the computation it memoizes.
    fn bump_seq(&self) -> u64 {
        let path = self.dir.join(SEQ_FILE);
        let current = fs::read_to_string(&path)
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(0);
        let tmp = self.dir.join(format!("{SEQ_FILE}.tmp"));
        let next = current.wrapping_add(1);
        if fs::write(&tmp, next.to_string()).is_ok() {
            let _ = fs::rename(&tmp, &path);
        }
        current
    }

    /// All result entries as `(seq, filename, path, bytes)`, skipping
    /// anything unreadable. An entry whose JSON is damaged sorts with
    /// `seq = 0` so the GC retires it first.
    fn entries(&self) -> Result<Vec<(u64, String, PathBuf, u64)>, StoreError> {
        let mut out = Vec::new();
        let listing = fs::read_dir(&self.dir).map_err(|e| StoreError::Io(e.to_string()))?;
        for dirent in listing.flatten() {
            let path = dirent.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if !name.ends_with(".json") {
                continue;
            }
            let bytes = dirent.metadata().map(|m| m.len()).unwrap_or(0);
            let seq = fs::read_to_string(&path)
                .ok()
                .and_then(|text| JsonValue::parse(&text).ok())
                .and_then(|v| v.get("seq").and_then(JsonValue::as_u64))
                .unwrap_or(0);
            out.push((seq, name.to_string(), path, bytes));
        }
        Ok(out)
    }

    /// Store statistics: entry count and total bytes.
    pub fn stats(&self) -> Result<StoreStats, StoreError> {
        let entries = self.entries()?;
        Ok(StoreStats {
            entries: entries.len(),
            bytes: entries.iter().map(|e| e.3).sum(),
        })
    }

    /// Evicts oldest-first until at most `keep` entries remain.
    pub fn gc(&self, keep: usize) -> Result<GcReport, StoreError> {
        let mut entries = self.entries()?;
        entries.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let excess = entries.len().saturating_sub(keep);
        let mut removed = 0;
        for (_, _, path, _) in entries.iter().take(excess) {
            match fs::remove_file(path) {
                Ok(()) => removed += 1,
                Err(e) => return Err(StoreError::Io(e.to_string())),
            }
        }
        Ok(GcReport {
            removed,
            kept: entries.len() - removed,
        })
    }
}

impl FsResultStore {
    /// Reads and verifies an entry, returning the raw stored result text.
    /// Any damage — unreadable file, bad JSON, foreign spec, checksum
    /// mismatch — is a miss.
    fn read_verified(&self, spec: &str) -> Option<String> {
        let text = fs::read_to_string(self.entry_path(spec)).ok()?;
        let entry = JsonValue::parse(&text).ok()?;
        let stored_spec = entry.get("spec")?.as_str()?;
        if stored_spec != spec {
            // Hash collision or relocated entry: a different spec filed
            // under our address is a miss, never a wrong answer.
            return None;
        }
        let result_text = entry.get("result")?.as_str()?;
        let check = entry.get("check")?.as_str()?;
        if format!("{:016x}", spec_key(result_text)) != check {
            return None;
        }
        Some(result_text.to_string())
    }

    /// Writes an entry atomically: the full envelope goes to a temp file
    /// unique to this writer (pid + process-wide counter), which is then
    /// renamed over the address. Racing writers on the same key — two
    /// remote workers finishing the same epoch, say — each write a
    /// complete entry and rename it; rename is atomic, so a reader sees
    /// one whole winner, never a splice of both.
    fn write_entry(&self, spec: &str, result_text: &str) {
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = self.bump_seq();
        let entry = format!(
            "{{\"seq\":{seq},\"check\":\"{:016x}\",\"spec\":{},\"result\":{}}}",
            spec_key(result_text),
            json_string(spec),
            json_string(result_text)
        );
        let path = self.entry_path(spec);
        let nonce = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            "{:016x}.{}.{nonce}.tmp",
            spec_key(spec),
            std::process::id()
        ));
        if fs::write(&tmp, entry).is_ok() {
            let _ = fs::rename(&tmp, &path);
        }
    }
}

impl ResultCache for FsResultStore {
    fn get(&self, spec: &str) -> Option<WireResult> {
        let result_text = self.read_verified(spec)?;
        WireResult::from_json(&result_text).ok()
    }

    fn put(&self, spec: &str, result: &WireResult) {
        self.write_entry(spec, &result.to_json());
    }

    fn get_json(&self, spec: &str) -> Option<String> {
        self.read_verified(spec)
    }

    fn put_json(&self, spec: &str, json: &str) {
        self.write_entry(spec, json);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorwise::policy::PolicyKind;
    use sensorwise::{spec_to_json, ExperimentConfig, ExperimentJob, TrafficSpec};

    fn temp_store(tag: &str) -> FsResultStore {
        let dir = std::env::temp_dir().join(format!(
            "nbti-store-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        FsResultStore::open(dir).unwrap()
    }

    fn job(seed: u64) -> ExperimentJob {
        ExperimentJob {
            cfg: ExperimentConfig::new(
                noc_sim::config::NocConfig::paper_synthetic(4, 2),
                PolicyKind::RrNoSensor,
            )
            .with_cycles(100, 800)
            .with_pv_seed(seed),
            traffic: TrafficSpec::Uniform {
                rate: 0.1,
                seed: seed ^ 0xABCD,
            },
        }
    }

    #[test]
    fn round_trips_byte_identical_results_and_misses_on_other_specs() {
        let store = temp_store("roundtrip");
        let spec = spec_to_json(&job(1)).unwrap();
        let other = spec_to_json(&job(2)).unwrap();
        assert!(store.get(&spec).is_none());
        let result = WireResult::from(&job(1).run());
        store.put(&spec, &result);
        let cached = store.get(&spec).expect("hit after put");
        assert_eq!(cached.to_json(), result.to_json());
        assert!(store.get(&other).is_none(), "different spec must miss");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupted_entries_are_misses_not_errors() {
        let store = temp_store("corrupt");
        let spec = spec_to_json(&job(3)).unwrap();
        let result = WireResult::from(&job(3).run());
        store.put(&spec, &result);
        let path = store.entry_path(&spec);

        // Flip bytes inside the entry: the spec check or the result
        // checksum must catch it, in either case a miss.
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("rr-no-sensor", "rr-no-sensog", 1);
        assert_ne!(tampered, text, "tamper target not found");
        fs::write(&path, &tampered).unwrap();
        assert!(store.get(&spec).is_none(), "tampered entry must miss");

        // Outright garbage parses to a miss too.
        fs::write(&path, "not json at all {{{").unwrap();
        assert!(store.get(&spec).is_none());

        // And a re-put repairs the entry.
        store.put(&spec, &result);
        assert_eq!(store.get(&spec).unwrap().to_json(), result.to_json());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn entry_under_our_address_with_foreign_spec_is_a_miss() {
        let store = temp_store("collision");
        let spec = spec_to_json(&job(4)).unwrap();
        let foreign = spec_to_json(&job(5)).unwrap();
        let result = WireResult::from(&job(5).run());
        // Simulate a hash collision: file the foreign spec's entry under
        // our spec's address.
        store.put(&foreign, &result);
        fs::rename(store.entry_path(&foreign), store.entry_path(&spec)).unwrap();
        assert!(
            store.get(&spec).is_none(),
            "spec verification must reject a colliding entry"
        );
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn raw_json_plane_round_trips_and_verifies_like_the_typed_one() {
        let store = temp_store("rawjson");
        let spec = "{\"campaign_epoch\":0,\"campaign\":\"demo\"}";
        assert!(store.get_json(spec).is_none());
        let doc = "{\"kind\":\"epoch_outcome\",\"drain_cycles\":17}";
        store.put_json(spec, doc);
        assert_eq!(store.get_json(spec).as_deref(), Some(doc));
        // The typed getter refuses the same entry (it is not a
        // WireResult) without erroring — planes are kept honest.
        assert!(store.get(spec).is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn racing_writers_on_one_key_converge_to_one_valid_entry() {
        let store = temp_store("race");
        let spec = spec_to_json(&job(20)).unwrap();
        let result = WireResult::from(&job(20).run());
        let expected = result.to_json();
        // Two workers finishing the same epoch push the identical result
        // concurrently, many times over to widen the race window.
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        store.put(&spec, &result);
                    }
                });
            }
        });
        let cached = store.get(&spec).expect("entry must survive the race");
        assert_eq!(cached.to_json(), expected);
        // No torn temp files left behind, and exactly one entry on disk.
        let leftovers: Vec<_> = fs::read_dir(store.dir())
            .unwrap()
            .flatten()
            .filter(|d| d.path().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        assert_eq!(store.stats().unwrap().entries, 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_entry_on_the_raw_plane_is_a_miss_then_a_recompute() {
        let store = temp_store("rawcorrupt");
        let spec = "{\"campaign_epoch\":2,\"campaign\":\"demo\"}";
        let doc = "{\"kind\":\"epoch_outcome\",\"drain_cycles\":99}";
        store.put_json(spec, doc);
        let path = store.entry_path(spec);
        // A remote worker's torn write / bit rot: flip a byte inside the
        // stored result.
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("99", "98", 1);
        assert_ne!(tampered, text);
        fs::write(&path, tampered).unwrap();
        assert!(
            store.get_json(spec).is_none(),
            "checksum must catch the tampered result"
        );
        // The caller recomputes and re-files; the plane heals.
        store.put_json(spec, doc);
        assert_eq!(store.get_json(spec).as_deref(), Some(doc));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn gc_evicts_oldest_first_and_stats_track_bytes() {
        let store = temp_store("gc");
        let specs: Vec<String> = (10..14).map(|s| spec_to_json(&job(s)).unwrap()).collect();
        let result = WireResult::from(&job(10).run());
        for spec in &specs {
            store.put(spec, &result);
        }
        let stats = store.stats().unwrap();
        assert_eq!(stats.entries, 4);
        assert!(stats.bytes > 0);

        let report = store.gc(2).unwrap();
        assert_eq!(report, GcReport { removed: 2, kept: 2 });
        // The two oldest inserts are gone, the two newest survive.
        assert!(store.get(&specs[0]).is_none());
        assert!(store.get(&specs[1]).is_none());
        assert!(store.get(&specs[2]).is_some());
        assert!(store.get(&specs[3]).is_some());
        // keep >= len is a no-op.
        assert_eq!(store.gc(10).unwrap(), GcReport { removed: 0, kept: 2 });
        let _ = fs::remove_dir_all(store.dir());
    }
}
