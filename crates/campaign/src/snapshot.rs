//! Versioned, checksummed binary campaign checkpoints.
//!
//! # Format (`NBTICAMP` v2)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"NBTICAMP"
//! 8       2     format version, u16 LE (currently 2; v1 still decodes)
//! 10      8     payload length, u64 LE
//! 18      8     FNV-1a 64 checksum of the payload, u64 LE
//! 26      n     payload
//! ```
//!
//! The payload is a flat little-endian encoding of the full campaign
//! state: the canonical spec JSON (length-prefixed UTF-8), the
//! completed-epoch count, the per-epoch `(end cycle, digest)` boundary
//! records, the drained [`NetworkSnapshot`] and the aging-ledger walker
//! states (`f64` via `to_bits`, so restore is bit-exact). Every integer is
//! fixed-width LE; every sequence is length-prefixed with a `u64`.
//!
//! Version 2 appends the distributed-campaign *dispatch ledger*: the
//! in-flight remote dispatches at checkpoint time, each a
//! `(epoch u32, attempt u32, worker string)` record. The checkpoint is the
//! coordination log of a remote campaign — a front end that dies between
//! dispatch and integration leaves its in-flight entries on disk, and the
//! resume path re-dispatches exactly those epochs (the shared result store
//! absorbs duplicates). A v1 checkpoint decodes as an empty ledger.
//!
//! Decoding is strict and total: any damage — truncation, a flipped
//! payload byte, an unknown version, trailing garbage, inconsistent
//! counts, non-finite walker state — surfaces as a typed
//! [`SnapshotError`]. A corrupted checkpoint can never panic and can
//! never silently resume wrong state.
//!
//! Writes are atomic (temp file + rename in the target directory), so a
//! kill mid-checkpoint leaves the previous checkpoint intact.

use crate::engine::{Campaign, CampaignSpec, DispatchEntry};
use nbti_model::rd::RdState;
use nbti_model::Volt;
use noc_sim::snapshot::{NetworkSnapshot, PortState};
use noc_sim::stats::{NetStats, LATENCY_BUCKETS};
use noc_telemetry::WorkCounters;
use std::fmt;
use std::fs;
use std::path::Path;

/// The checkpoint file magic.
pub const MAGIC: [u8; 8] = *b"NBTICAMP";

/// The checkpoint format version this build writes.
pub const FORMAT_VERSION: u16 = 2;

/// The oldest checkpoint format version this build still reads.
pub const MIN_READ_VERSION: u16 = 1;

const HEADER_LEN: usize = 8 + 2 + 8 + 8;

/// Why a checkpoint could not be written or read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The underlying file operation failed.
    Io(String),
    /// The file ends before the encoded structure does.
    Truncated,
    /// The file does not start with the `NBTICAMP` magic.
    BadMagic,
    /// The file's format version is not supported by this build.
    BadVersion {
        /// The version found in the file.
        found: u16,
        /// The version this build writes and reads.
        supported: u16,
    },
    /// The payload does not hash to the stored checksum.
    ChecksumMismatch {
        /// The checksum stored in the header.
        stored: u64,
        /// The checksum computed over the payload.
        computed: u64,
    },
    /// The payload decoded but its contents are inconsistent.
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(msg) => write!(f, "checkpoint I/O failed: {msg}"),
            SnapshotError::Truncated => write!(f, "checkpoint is truncated"),
            SnapshotError::BadMagic => write!(f, "not a campaign checkpoint (bad magic)"),
            SnapshotError::BadVersion { found, supported } => write!(
                f,
                "unsupported checkpoint version {found} (this build supports {supported})"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            SnapshotError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64 over raw bytes — same constants as the telemetry event
/// digest and the store's content addresses.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Payload writer/reader
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_len(out: &mut Vec<u8>, len: usize) {
    put_u64(out, len as u64);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(self.bytes(4)?);
        Ok(u32::from_le_bytes(raw))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.bytes(8)?);
        Ok(u64::from_le_bytes(raw))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A sequence length, sanity-bounded so a corrupted length cannot
    /// trigger an absurd allocation before the data runs out.
    fn len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n > remaining {
            return Err(SnapshotError::Truncated);
        }
        Ok(n as usize)
    }

    fn finish(self) -> Result<(), SnapshotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapshotError::Malformed(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Component encoders/decoders
// ---------------------------------------------------------------------------

fn put_net(out: &mut Vec<u8>, net: &NetworkSnapshot) {
    put_u64(out, net.cycle);
    put_u64(out, net.next_packet);
    put_u64(out, net.flits_sent_total);
    put_u64(out, net.flits_ejected_total);
    let s = &net.stats;
    put_u64(out, s.packets_injected);
    put_u64(out, s.packets_ejected);
    put_u64(out, s.flits_sent);
    put_u64(out, s.flits_ejected);
    put_u64(out, s.latency_sum);
    put_u64(out, s.latency_max);
    for &bucket in &s.latency_histogram {
        put_u64(out, bucket);
    }
    put_u64(out, s.invariant_checks);
    put_u64(out, s.invariant_violations);
    let w = &net.work;
    put_u64(out, w.bw_writes);
    put_u64(out, w.rc_computes);
    put_u64(out, w.va_grants);
    put_u64(out, w.sa_grants);
    put_u64(out, w.gate_commands);
    put_u64(out, w.policy_evaluations);
    put_u64(out, w.sensor_reads);
    put_len(out, net.ports.len());
    for port in &net.ports {
        put_u32(out, port.powered_mask);
        put_u32(out, port.allocatable_mask);
        put_len(out, port.usable_at.len());
        for &cycle in &port.usable_at {
            put_u64(out, cycle);
        }
        put_u64(out, port.gate_transitions);
        put_u64(out, port.flits_received);
    }
    put_len(out, net.arbiters.len());
    for &arb in &net.arbiters {
        put_u32(out, arb);
    }
}

fn read_net(r: &mut Reader<'_>) -> Result<NetworkSnapshot, SnapshotError> {
    let cycle = r.u64()?;
    let next_packet = r.u64()?;
    let flits_sent_total = r.u64()?;
    let flits_ejected_total = r.u64()?;
    let packets_injected = r.u64()?;
    let packets_ejected = r.u64()?;
    let flits_sent = r.u64()?;
    let flits_ejected = r.u64()?;
    let latency_sum = r.u64()?;
    let latency_max = r.u64()?;
    let mut latency_histogram = [0u64; LATENCY_BUCKETS];
    for bucket in &mut latency_histogram {
        *bucket = r.u64()?;
    }
    let invariant_checks = r.u64()?;
    let invariant_violations = r.u64()?;
    let stats = NetStats {
        packets_injected,
        packets_ejected,
        flits_sent,
        flits_ejected,
        latency_sum,
        latency_max,
        latency_histogram,
        invariant_checks,
        invariant_violations,
    };
    let work = WorkCounters {
        bw_writes: r.u64()?,
        rc_computes: r.u64()?,
        va_grants: r.u64()?,
        sa_grants: r.u64()?,
        gate_commands: r.u64()?,
        policy_evaluations: r.u64()?,
        sensor_reads: r.u64()?,
    };
    let num_ports = r.len()?;
    let mut ports = Vec::with_capacity(num_ports);
    for _ in 0..num_ports {
        let powered_mask = r.u32()?;
        let allocatable_mask = r.u32()?;
        let num_vcs = r.len()?;
        let mut usable_at = Vec::with_capacity(num_vcs);
        for _ in 0..num_vcs {
            usable_at.push(r.u64()?);
        }
        ports.push(PortState {
            powered_mask,
            allocatable_mask,
            usable_at,
            gate_transitions: r.u64()?,
            flits_received: r.u64()?,
        });
    }
    let num_arbiters = r.len()?;
    let mut arbiters = Vec::with_capacity(num_arbiters);
    for _ in 0..num_arbiters {
        arbiters.push(r.u32()?);
    }
    Ok(NetworkSnapshot {
        cycle,
        next_packet,
        flits_sent_total,
        flits_ejected_total,
        stats,
        work,
        ports,
        arbiters,
    })
}

fn put_ledger(out: &mut Vec<u8>, rows: &[Vec<(Volt, RdState)>]) {
    put_len(out, rows.len());
    for row in rows {
        put_len(out, row.len());
        for &(initial, state) in row {
            put_f64(out, initial.as_volts());
            put_f64(out, state.delta_vth_v);
            put_f64(out, state.stress_age_s);
            put_f64(out, state.total_age_s);
        }
    }
}

fn read_ledger(r: &mut Reader<'_>) -> Result<Vec<Vec<(Volt, RdState)>>, SnapshotError> {
    let num_ports = r.len()?;
    let mut rows = Vec::with_capacity(num_ports);
    for _ in 0..num_ports {
        let num_vcs = r.len()?;
        let mut row = Vec::with_capacity(num_vcs);
        for _ in 0..num_vcs {
            let initial = Volt::from_volts(r.f64()?);
            let state = RdState {
                delta_vth_v: r.f64()?,
                stress_age_s: r.f64()?,
                total_age_s: r.f64()?,
            };
            row.push((initial, state));
        }
        rows.push(row);
    }
    Ok(rows)
}

fn put_dispatch(out: &mut Vec<u8>, entries: &[DispatchEntry]) {
    put_len(out, entries.len());
    for entry in entries {
        put_u32(out, entry.epoch);
        put_u32(out, entry.attempt);
        put_len(out, entry.worker.len());
        out.extend_from_slice(entry.worker.as_bytes());
    }
}

fn read_dispatch(r: &mut Reader<'_>) -> Result<Vec<DispatchEntry>, SnapshotError> {
    let count = r.len()?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let epoch = r.u32()?;
        let attempt = r.u32()?;
        let worker_len = r.len()?;
        let worker = std::str::from_utf8(r.bytes(worker_len)?)
            .map_err(|e| SnapshotError::Malformed(format!("worker address is not UTF-8: {e}")))?
            .to_string();
        entries.push(DispatchEntry {
            epoch,
            worker,
            attempt,
        });
    }
    Ok(entries)
}

// ---------------------------------------------------------------------------
// Campaign encode/decode
// ---------------------------------------------------------------------------

impl Campaign {
    /// Encodes the full campaign state into the `NBTICAMP` v2 byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_len(&mut payload, self.spec_json.len());
        payload.extend_from_slice(self.spec_json.as_bytes());
        put_u32(&mut payload, self.completed);
        put_len(&mut payload, self.epoch_ends.len());
        for &(cycle, digest) in &self.epoch_ends {
            put_u64(&mut payload, cycle);
            put_u64(&mut payload, digest);
        }
        match &self.net {
            Some(net) => {
                payload.push(1);
                put_net(&mut payload, net);
            }
            None => payload.push(0),
        }
        match &self.ledger {
            Some(ledger) => {
                payload.push(1);
                put_ledger(&mut payload, &ledger.vc_states());
            }
            None => payload.push(0),
        }
        put_dispatch(&mut payload, &self.dispatch);
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        put_u16(&mut out, FORMAT_VERSION);
        put_len(&mut out, payload.len());
        put_u64(&mut out, fnv64(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a checkpoint, verifying magic, version, length and
    /// checksum before touching the payload, and cross-checking the
    /// decoded parts for internal consistency.
    pub fn decode(bytes: &[u8]) -> Result<Campaign, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut hdr = Reader::new(&bytes[8..HEADER_LEN]);
        let mut version_raw = [0u8; 2];
        version_raw.copy_from_slice(hdr.bytes(2)?);
        let version = u16::from_le_bytes(version_raw);
        if !(MIN_READ_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(SnapshotError::BadVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let payload_len = hdr.u64()?;
        let stored = hdr.u64()?;
        let body = &bytes[HEADER_LEN..];
        if (body.len() as u64) < payload_len {
            return Err(SnapshotError::Truncated);
        }
        if (body.len() as u64) > payload_len {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes after the payload",
                body.len() as u64 - payload_len
            )));
        }
        let computed = fnv64(body);
        if computed != stored {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        let mut r = Reader::new(body);
        let spec_len = r.len()?;
        let spec_json = std::str::from_utf8(r.bytes(spec_len)?)
            .map_err(|e| SnapshotError::Malformed(format!("spec JSON is not UTF-8: {e}")))?
            .to_string();
        let spec = CampaignSpec::from_json(&spec_json)
            .map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        let completed = r.u32()?;
        let num_ends = r.len()?;
        let mut epoch_ends = Vec::with_capacity(num_ends);
        for _ in 0..num_ends {
            let cycle = r.u64()?;
            let digest = r.u64()?;
            epoch_ends.push((cycle, digest));
        }
        let net = match r.u8()? {
            0 => None,
            1 => Some(read_net(&mut r)?),
            flag => {
                return Err(SnapshotError::Malformed(format!(
                    "invalid network-presence flag {flag}"
                )))
            }
        };
        let states = match r.u8()? {
            0 => None,
            1 => Some(read_ledger(&mut r)?),
            flag => {
                return Err(SnapshotError::Malformed(format!(
                    "invalid ledger-presence flag {flag}"
                )))
            }
        };
        // v1 checkpoints predate the distributed plane: no dispatch section.
        let dispatch = if version >= 2 {
            read_dispatch(&mut r)?
        } else {
            Vec::new()
        };
        r.finish()?;
        let mut campaign = Campaign::from_parts(spec, completed, epoch_ends, net, states)?;
        for entry in &dispatch {
            if entry.epoch != campaign.completed {
                return Err(SnapshotError::Malformed(format!(
                    "dispatch ledger names epoch {} but the next epoch is {}",
                    entry.epoch, campaign.completed
                )));
            }
        }
        campaign.dispatch = dispatch;
        if campaign.spec_json != spec_json {
            return Err(SnapshotError::Malformed(
                "stored spec JSON is not canonical".to_string(),
            ));
        }
        Ok(campaign)
    }

    /// Atomically writes the checkpoint: encode to a temp file next to
    /// `path`, then rename over it.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        let bytes = self.encode();
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, &bytes).map_err(|e| SnapshotError::Io(e.to_string()))?;
        fs::rename(&tmp, path).map_err(|e| SnapshotError::Io(e.to_string()))
    }

    /// Reads and decodes a checkpoint file.
    pub fn load(path: &Path) -> Result<Campaign, SnapshotError> {
        let bytes = fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Campaign::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorwise::policy::PolicyKind;
    use sensorwise::{ExperimentConfig, ExperimentJob, TrafficSpec};

    fn small_spec(epochs: u32, seed: u64) -> CampaignSpec {
        CampaignSpec {
            base: ExperimentJob {
                cfg: ExperimentConfig::new(
                    noc_sim::config::NocConfig::paper_synthetic(4, 2),
                    PolicyKind::SensorWise,
                )
                .with_cycles(200, 1_500)
                .with_pv_seed(seed),
                traffic: TrafficSpec::Uniform {
                    rate: 0.12,
                    seed: seed ^ 0xABCD,
                },
            },
            epochs,
            age_acceleration: 1.0e9,
            drain_limit: 5_000,
        }
    }

    #[test]
    fn fresh_campaign_round_trips() {
        let campaign = Campaign::new(small_spec(3, 7)).unwrap();
        let bytes = campaign.encode();
        let back = Campaign::decode(&bytes).unwrap();
        assert_eq!(back.spec_json(), campaign.spec_json());
        assert_eq!(back.completed(), 0);
        assert_eq!(back.epoch_ends(), &[] as &[(u64, u64)]);
        assert!(back.ledger().is_none());
        // Re-encode is byte-identical: the format is canonical.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn mid_campaign_round_trip_is_bit_exact() {
        let mut campaign = Campaign::new(small_spec(3, 11)).unwrap();
        campaign.run_next_epoch(None).unwrap();
        campaign.run_next_epoch(None).unwrap();
        let bytes = campaign.encode();
        let back = Campaign::decode(&bytes).unwrap();
        assert_eq!(back.completed(), 2);
        assert_eq!(back.epoch_ends(), campaign.epoch_ends());
        assert_eq!(back.chained_digest(), campaign.chained_digest());
        assert_eq!(
            back.ledger().unwrap().vc_states(),
            campaign.ledger().unwrap().vc_states()
        );
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn truncation_at_any_point_is_a_typed_error() {
        let mut campaign = Campaign::new(small_spec(2, 3)).unwrap();
        campaign.run_next_epoch(None).unwrap();
        let bytes = campaign.encode();
        for cut in [0, 4, 7, 8, 9, 25, 26, 40, bytes.len() / 2, bytes.len() - 1] {
            let err = Campaign::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::BadMagic),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_mismatch() {
        let campaign = Campaign::new(small_spec(2, 3)).unwrap();
        let mut bytes = campaign.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            Campaign::decode(&bytes).unwrap_err(),
            SnapshotError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn wrong_version_and_magic_are_rejected_up_front() {
        let campaign = Campaign::new(small_spec(2, 3)).unwrap();
        let good = campaign.encode();

        let mut wrong_version = good.clone();
        wrong_version[8] = 0xFE;
        wrong_version[9] = 0xFF;
        assert_eq!(
            Campaign::decode(&wrong_version).unwrap_err(),
            SnapshotError::BadVersion {
                found: u16::from_le_bytes([0xFE, 0xFF]),
                supported: FORMAT_VERSION
            }
        );

        let mut wrong_magic = good.clone();
        wrong_magic[0] = b'X';
        assert_eq!(
            Campaign::decode(&wrong_magic).unwrap_err(),
            SnapshotError::BadMagic
        );

        let mut trailing = good;
        trailing.push(0);
        assert!(matches!(
            Campaign::decode(&trailing).unwrap_err(),
            SnapshotError::Malformed(_)
        ));
    }

    #[test]
    fn dispatch_ledger_round_trips() {
        let mut campaign = Campaign::new(small_spec(3, 13)).unwrap();
        campaign.run_next_epoch(None).unwrap();
        campaign.push_dispatch(DispatchEntry {
            epoch: 1,
            worker: "127.0.0.1:4001".to_string(),
            attempt: 0,
        });
        campaign.push_dispatch(DispatchEntry {
            epoch: 1,
            worker: "127.0.0.1:4002".to_string(),
            attempt: 1,
        });
        let bytes = campaign.encode();
        let back = Campaign::decode(&bytes).unwrap();
        assert_eq!(back.dispatch_ledger(), campaign.dispatch_ledger());
        assert_eq!(back.encode(), bytes);
        // A ledger naming a different epoch than the next one is damage.
        let mut wrong = Campaign::new(small_spec(3, 13)).unwrap();
        wrong.push_dispatch(DispatchEntry {
            epoch: 2,
            worker: "w".to_string(),
            attempt: 0,
        });
        assert!(matches!(
            Campaign::decode(&wrong.encode()).unwrap_err(),
            SnapshotError::Malformed(_)
        ));
    }

    #[test]
    fn v1_checkpoints_still_decode_with_an_empty_dispatch_ledger() {
        let mut campaign = Campaign::new(small_spec(2, 9)).unwrap();
        campaign.run_next_epoch(None).unwrap();
        let v2 = campaign.encode();
        // Rebuild the same checkpoint as v1: drop the trailing empty
        // dispatch section (a lone u64 zero) and rewrite the header.
        let payload = &v2[HEADER_LEN..v2.len() - 8];
        let mut v1 = Vec::with_capacity(HEADER_LEN + payload.len());
        v1.extend_from_slice(&MAGIC);
        put_u16(&mut v1, 1);
        put_len(&mut v1, payload.len());
        put_u64(&mut v1, fnv64(payload));
        v1.extend_from_slice(payload);
        let back = Campaign::decode(&v1).unwrap();
        assert_eq!(back.completed(), campaign.completed());
        assert_eq!(back.epoch_ends(), campaign.epoch_ends());
        assert_eq!(back.chained_digest(), campaign.chained_digest());
        assert!(back.dispatch_ledger().is_empty());
        // Saving it again upgrades to the current version.
        assert_eq!(back.encode(), v2);
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let dir = std::env::temp_dir().join(format!(
            "nbticamp-test-{}-{:x}",
            std::process::id(),
            fnv64(b"save_and_load")
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.ckpt");
        let mut campaign = Campaign::new(small_spec(2, 5)).unwrap();
        campaign.run_next_epoch(None).unwrap();
        campaign.save(&path).unwrap();
        let back = Campaign::load(&path).unwrap();
        assert_eq!(back.encode(), campaign.encode());
        // Missing file is Io, not a panic.
        assert!(matches!(
            Campaign::load(&dir.join("absent.ckpt")).unwrap_err(),
            SnapshotError::Io(_)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
