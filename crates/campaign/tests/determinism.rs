//! Campaign acceptance tests: checkpoint/resume determinism across the
//! policy matrix, and the lifetime aging-feedback loop.

use noc_campaign::{Campaign, CampaignSpec};
use sensorwise::policy::PolicyKind;
use sensorwise::{ExperimentConfig, ExperimentJob, TrafficSpec};

const POLICY_MATRIX: [PolicyKind; 4] = [
    PolicyKind::Baseline,
    PolicyKind::RrNoSensor,
    PolicyKind::SensorWiseNoTraffic,
    PolicyKind::SensorWise,
];

fn spec(policy: PolicyKind, epochs: u32) -> CampaignSpec {
    CampaignSpec {
        base: ExperimentJob {
            cfg: ExperimentConfig::new(
                noc_sim::config::NocConfig::paper_synthetic(4, 2),
                policy,
            )
            .with_cycles(300, 2_000)
            .with_pv_seed(7),
            traffic: TrafficSpec::Uniform {
                rate: 0.15,
                seed: 0xC0FFEE,
            },
        },
        epochs,
        age_acceleration: 1.0e9,
        drain_limit: 10_000,
    }
}

fn tmp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("nbticamp-{}-{tag}.ckpt", std::process::id()))
}

/// For every policy in the matrix: a campaign killed at an epoch boundary
/// and resumed from its checkpoint finishes with bit-identical epoch
/// digests, chained digest, per-buffer ledger state and network state.
#[test]
fn resume_is_bit_identical_for_every_policy() {
    for policy in POLICY_MATRIX {
        let spec = spec(policy, 4);

        let mut uninterrupted = Campaign::new(spec.clone()).unwrap();
        let straight = uninterrupted.run_to_completion(None, None).unwrap();
        assert_eq!(straight.len(), 4);

        let path = tmp_path(&format!("{policy:?}"));
        let mut first_half = Campaign::new(spec).unwrap();
        first_half.run_next_epoch(None).unwrap();
        first_half.run_next_epoch(None).unwrap();
        first_half.save(&path).unwrap();
        drop(first_half); // the "kill": only the checkpoint survives

        let mut resumed = Campaign::load(&path).unwrap();
        assert_eq!(resumed.completed(), 2);
        let rest = resumed.run_to_completion(None, None).unwrap();
        assert_eq!(rest.len(), 2);

        // Epoch boundaries: cycle + per-epoch digest, in order.
        assert_eq!(
            resumed.epoch_ends(),
            uninterrupted.epoch_ends(),
            "policy {policy:?}: epoch boundaries diverged after resume"
        );
        // The chained determinism witness.
        assert_eq!(
            resumed.chained_digest(),
            uninterrupted.chained_digest(),
            "policy {policy:?}: chained digest diverged after resume"
        );
        // Per-buffer ΔVth walker state, bit for bit.
        assert_eq!(
            resumed.ledger().unwrap().vc_states(),
            uninterrupted.ledger().unwrap().vc_states(),
            "policy {policy:?}: ledger state diverged after resume"
        );
        // And the entire encoded state (network snapshot included).
        assert_eq!(
            resumed.encode(),
            uninterrupted.encode(),
            "policy {policy:?}: encoded campaign state diverged after resume"
        );
        // Resumed epochs reported the same digests the straight run saw.
        assert_eq!(rest[0].digest, straight[2].digest);
        assert_eq!(rest[1].digest, straight[3].digest);
        assert_eq!(rest[1].chained_digest, straight[3].chained_digest);

        let _ = std::fs::remove_file(&path);
    }
}

/// Epochs genuinely chain: simulated time advances monotonically across
/// boundaries, every epoch drains cleanly, and no invariants fire.
#[test]
fn epochs_advance_cleanly() {
    let mut campaign = Campaign::new(spec(PolicyKind::SensorWise, 3)).unwrap();
    let reports = campaign.run_to_completion(None, None).unwrap();
    let mut last_cycle = 0;
    for report in &reports {
        assert!(
            report.end_cycle > last_cycle,
            "epoch {} ended at {} after {}",
            report.index,
            report.end_cycle,
            last_cycle
        );
        last_cycle = report.end_cycle;
        assert_eq!(report.result.invariant_violations, 0);
        assert!(report.result.packets_injected > 0, "epoch must carry traffic");
    }
    assert_eq!(campaign.current_cycle(), Some(last_cycle));
}

/// The Table II metric over a campaign: mean ΔVth of each port's
/// *initially most-degraded* VC buffer (the buffer the paper's policies
/// exist to protect).
fn mean_md_delta_mv(campaign: &Campaign) -> f64 {
    let ledger = campaign.ledger().expect("campaign ran");
    let deltas = ledger.delta_vths();
    let aged = ledger.aged_vths();
    let mut sum = 0.0;
    for (aged_row, delta_row) in aged.iter().zip(&deltas) {
        // Initial Vth = aged − accumulated shift; the max identifies the
        // buffer that started most degraded (same PV seed ⇒ same buffer
        // under every policy).
        let md = aged_row
            .iter()
            .zip(delta_row)
            .map(|(a, d)| *a - *d)
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite Vth"))
            .map(|(i, _)| i)
            .expect("ports have VCs");
        sum += delta_row[md].as_millivolts();
    }
    sum / aged.len() as f64
}

/// The aging feedback loop is live: the unaware baseline's ΔVth grows
/// monotonically epoch over epoch while gating policies hold every epoch
/// strictly below it, per-buffer trajectories diverge under gating, and
/// the protected (initially most-degraded) buffers order as in the
/// paper's Table II — baseline worst, rr-no-sensor better, sensor-wise
/// best.
#[test]
fn aging_trajectories_diverge_and_order_by_policy() {
    let epochs = 4;
    let mut campaigns = Vec::new();
    let mut report_sets = Vec::new();
    for policy in [PolicyKind::Baseline, PolicyKind::RrNoSensor, PolicyKind::SensorWise] {
        let mut campaign = Campaign::new(spec(policy, epochs)).unwrap();
        let reports = campaign.run_to_completion(None, None).unwrap();
        assert!(
            reports.last().unwrap().max_delta_vth_mv > 0.0,
            "policy {policy:?}: no aging after {epochs} epochs"
        );

        // Per-buffer divergence: the baseline stresses every powered
        // buffer alike (one shared trajectory); gating policies rotate
        // recovery, so their buffers' trajectories split.
        let deltas: Vec<f64> = campaign
            .ledger()
            .unwrap()
            .delta_vths()
            .iter()
            .flatten()
            .map(|v| v.as_millivolts())
            .collect();
        let min = deltas.iter().copied().fold(f64::INFINITY, f64::min);
        let max = deltas.iter().copied().fold(0.0, f64::max);
        if policy == PolicyKind::Baseline {
            assert!(
                max - min < 1e-9,
                "baseline buffers should age in lockstep ({min}..{max} mV)"
            );
        } else {
            assert!(
                max > min,
                "policy {policy:?}: all buffers aged identically ({max} mV)"
            );
        }
        campaigns.push(campaign);
        report_sets.push(reports);
    }

    // The unprotected baseline only ever accumulates shift: strictly
    // monotone epoch over epoch.
    let baseline_traj: Vec<f64> = report_sets[0].iter().map(|r| r.max_delta_vth_mv).collect();
    for pair in baseline_traj.windows(2) {
        assert!(
            pair[1] > pair[0],
            "baseline ΔVth must grow every epoch: {baseline_traj:?}"
        );
    }
    // Gating policies hold every epoch strictly below the baseline's.
    for (reports, name) in report_sets[1..].iter().zip(["rr", "sensor-wise"]) {
        for (gated, unaware) in reports.iter().zip(&report_sets[0]) {
            assert!(
                gated.max_delta_vth_mv < unaware.max_delta_vth_mv,
                "{name} epoch {} not below baseline: {} vs {}",
                gated.index,
                gated.max_delta_vth_mv,
                unaware.max_delta_vth_mv
            );
        }
    }

    // Table II ordering on the protected buffers, strict at every step.
    let baseline = mean_md_delta_mv(&campaigns[0]);
    let rr = mean_md_delta_mv(&campaigns[1]);
    let sw = mean_md_delta_mv(&campaigns[2]);
    assert!(
        baseline > rr && rr > sw,
        "Table II ordering violated on most-degraded buffers: \
         baseline {baseline} mV, rr {rr} mV, sensor-wise {sw} mV"
    );
}

/// The sensor feedback changes behaviour: with aged Vths, later epochs
/// elect different most-degraded VCs than a no-feedback rerun of epoch 0
/// would, i.e. epoch digests are not all equal.
#[test]
fn epochs_are_distinct_because_state_feeds_forward() {
    let mut campaign = Campaign::new(spec(PolicyKind::SensorWise, 3)).unwrap();
    let reports = campaign.run_to_completion(None, None).unwrap();
    let digests: Vec<u64> = reports.iter().map(|r| r.digest).collect();
    assert_ne!(digests[0], digests[1]);
    assert_ne!(digests[1], digests[2]);
}
