//! Property tests for the `NBTICAMP` checkpoint codec: round-trips are
//! bit-exact across the spec space, and *no* corruption — truncation,
//! byte flips, bad headers — can panic the decoder or slip through as a
//! silently-wrong resume.

use noc_campaign::{Campaign, CampaignSpec, SnapshotError};
use proptest::prelude::*;
use sensorwise::policy::PolicyKind;
use sensorwise::{ExperimentConfig, ExperimentJob, TrafficSpec};

fn spec(policy_pick: u8, epochs: u32, seed: u64, rate_milli: u32, accel_exp: u32) -> CampaignSpec {
    let policy = match policy_pick % 4 {
        0 => PolicyKind::Baseline,
        1 => PolicyKind::RrNoSensor,
        2 => PolicyKind::SensorWiseNoTraffic,
        _ => PolicyKind::SensorWise,
    };
    CampaignSpec {
        base: ExperimentJob {
            cfg: ExperimentConfig::new(
                noc_sim::config::NocConfig::paper_synthetic(4, 2),
                policy,
            )
            .with_cycles(100, 600)
            .with_pv_seed(seed),
            traffic: TrafficSpec::Uniform {
                rate: 0.05 + f64::from(rate_milli % 200) / 1_000.0,
                seed: seed.rotate_left(17) ^ 0xABCD,
            },
        },
        epochs,
        age_acceleration: 10f64.powi(accel_exp as i32 % 10 + 1),
        drain_limit: 10_000,
    }
}

proptest! {
    /// Fresh campaigns round-trip bit-exactly for any spec in the space:
    /// decode(encode(c)) re-encodes to the identical bytes.
    #[test]
    fn fresh_round_trip_is_canonical(
        policy_pick in any::<u8>(),
        epochs in 1u32..6,
        seed in any::<u64>(),
        rate_milli in any::<u32>(),
        accel_exp in any::<u32>(),
    ) {
        let campaign = Campaign::new(spec(policy_pick, epochs, seed, rate_milli, accel_exp))
            .expect("spec is valid by construction");
        let bytes = campaign.encode();
        let back = Campaign::decode(&bytes).expect("own encoding must decode");
        prop_assert_eq!(back.encode(), bytes);
        prop_assert_eq!(back.spec_json(), campaign.spec_json());
    }

    /// Every strict prefix of a valid checkpoint decodes to a typed
    /// error — never a panic, never an `Ok`.
    #[test]
    fn truncation_never_panics_or_succeeds(cut_permille in 0u32..1000) {
        let campaign = Campaign::new(spec(3, 2, 42, 150, 6)).expect("valid spec");
        let bytes = campaign.encode();
        let cut = (bytes.len() * cut_permille as usize) / 1000;
        prop_assume!(cut < bytes.len());
        let err = Campaign::decode(&bytes[..cut]).expect_err("prefix must not decode");
        prop_assert!(matches!(
            err,
            SnapshotError::Truncated | SnapshotError::BadMagic | SnapshotError::Malformed(_)
        ), "unexpected error for cut {}: {:?}", cut, err);
    }

    /// Flipping any single byte of a valid checkpoint is always caught
    /// with a typed error: header flips hit the magic/version/length
    /// checks, payload flips hit the checksum.
    #[test]
    fn single_byte_flips_are_always_detected(pos_seed in any::<u64>(), mask in 1u8..=255) {
        let campaign = Campaign::new(spec(1, 3, 7, 120, 8)).expect("valid spec");
        let mut bytes = campaign.encode();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= mask;
        let decoded = Campaign::decode(&bytes);
        match decoded {
            Err(_) => {} // any typed error is a correct rejection
            Ok(_) => {
                // The only byte whose flip may legally decode is inside
                // the checksum+payload pair matching by construction —
                // impossible for a single flip (FNV-1a differs in at
                // least one bit), so reaching Ok is a codec failure.
                prop_assert!(false, "flip at {} (mask {:#04x}) decoded successfully", pos, mask);
            }
        }
    }
}
