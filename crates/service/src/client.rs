//! A small blocking client for the job API.
//!
//! Used by `nbti-noc submit`, the integration tests, and the throughput
//! bench. Every call opens one connection (the server closes after each
//! response) and reports its wall-clock latency in milliseconds so
//! callers can build request-latency distributions without touching the
//! clock themselves.

use crate::clock;
use crate::http::http_request;
use sensorwise::codec::{JsonValue, WireResult};
use sensorwise::spec_key;
use std::thread;
use std::time::Duration;

/// Deterministic backoff for a `429` retry, in milliseconds.
///
/// Classic randomized exponential backoff decorrelates contending
/// clients by sampling the wall clock or a global RNG — both of which
/// would make a retried submission depend on *when* it ran. Here the
/// jitter is derived from the submission itself: `seed` is the spec's
/// content key, mixed with the attempt number through SplitMix64. Two
/// clients pushing different specs still spread out; the same spec
/// retried in a replayed run waits exactly as long as it did the first
/// time.
///
/// The wait grows `20ms << attempt` (capped at attempt 4) plus up to
/// half that again in jitter, and never exceeds the server's
/// `Retry-After` hint (clamped to 1..=5 s) nor 400 ms — the hint is an
/// upper bound and queues drain in milliseconds.
#[must_use]
pub fn deterministic_backoff_ms(seed: u64, attempt: u32, retry_after_secs: u64) -> u64 {
    // SplitMix64 finalizer over the seed/attempt pair.
    let mut z = seed ^ (u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let base = 20u64 << attempt.min(4);
    let jitter = z % (base / 2 + 1);
    let cap = (retry_after_secs.clamp(1, 5) * 1000).min(400);
    (base + jitter).min(cap)
}

/// Outcome of one submission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submitted {
    /// `202`: the job is queued under this id.
    Accepted {
        /// The server-assigned job id.
        id: u64,
    },
    /// `429`: backpressure; retry after the hinted delay.
    Busy {
        /// The server's `Retry-After` hint, seconds.
        retry_after_secs: u64,
    },
    /// Any other status (bad spec, shutting down, ...).
    Refused {
        /// The HTTP status code.
        status: u16,
        /// The server's error body.
        error: String,
    },
}

/// A job's status as reported by `GET /jobs/{id}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// The job id.
    pub id: u64,
    /// The wire state name (`queued`, `running`, `done`, ...).
    pub status: String,
    /// The event-stream digest once the job is done and was traced.
    pub trace_digest: Option<u64>,
    /// Failure detail for failed jobs.
    pub error: Option<String>,
}

impl JobStatus {
    /// Whether the job can make no further progress.
    pub fn is_terminal(&self) -> bool {
        !matches!(self.status.as_str(), "queued" | "running")
    }
}

/// The blocking API client.
#[derive(Debug, Clone)]
pub struct ServiceClient {
    addr: String,
}

impl ServiceClient {
    /// A client for the server at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> ServiceClient {
        ServiceClient { addr: addr.into() }
    }

    /// The server address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn timed(
        &self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(crate::http::ClientResponse, u64), String> {
        let start = clock::now();
        let response = http_request(&self.addr, method, path, body)?;
        Ok((response, clock::millis_since(start)))
    }

    /// Submits one spec. Returns the outcome and the request latency in
    /// milliseconds.
    ///
    /// # Errors
    ///
    /// Transport failures only; HTTP-level refusals are [`Submitted`]
    /// variants.
    pub fn submit(&self, spec_json: &str) -> Result<(Submitted, u64), String> {
        let (response, latency_ms) = self.timed("POST", "/jobs", spec_json)?;
        let outcome = match response.status {
            202 => {
                let id = JsonValue::parse(&response.body)
                    .ok()
                    .as_ref()
                    .and_then(|v| v.get("id"))
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("202 without an id: {}", response.body))?;
                Submitted::Accepted { id }
            }
            429 => Submitted::Busy {
                retry_after_secs: response.retry_after_secs.unwrap_or(1),
            },
            status => Submitted::Refused {
                status,
                error: response.body,
            },
        };
        Ok((outcome, latency_ms))
    }

    /// Submits with bounded backpressure retries. Returns the job id, the
    /// number of `429`s absorbed, and the latencies of every attempt.
    ///
    /// # Errors
    ///
    /// Transport failures, non-busy refusals, or `max_retries` exhausted.
    pub fn submit_with_retry(
        &self,
        spec_json: &str,
        max_retries: u32,
    ) -> Result<(u64, u32, Vec<u64>), String> {
        let mut latencies = Vec::new();
        let mut busy = 0u32;
        let seed = spec_key(spec_json);
        loop {
            let (outcome, latency_ms) = self.submit(spec_json)?;
            latencies.push(latency_ms);
            match outcome {
                Submitted::Accepted { id } => return Ok((id, busy, latencies)),
                Submitted::Busy { retry_after_secs } => {
                    busy += 1;
                    if busy > max_retries {
                        return Err(format!("queue still full after {max_retries} retries"));
                    }
                    let wait = deterministic_backoff_ms(seed, busy - 1, retry_after_secs);
                    thread::sleep(Duration::from_millis(wait));
                }
                Submitted::Refused { status, error } => {
                    return Err(format!("submission refused ({status}): {error}"));
                }
            }
        }
    }

    /// Submits many specs in one request (`POST /jobs/batch`).
    ///
    /// The server makes a single queue-reservation pass over the array,
    /// so items admitted together were admitted against the same
    /// snapshot of free capacity. Returns one [`Submitted`] per input,
    /// in order: `202` rows map to [`Submitted::Accepted`] (cached hits
    /// included — they are already `done`), `429` rows to
    /// [`Submitted::Busy`], anything else to [`Submitted::Refused`].
    ///
    /// # Errors
    ///
    /// Transport failures, a non-`200` envelope, or a malformed body.
    pub fn submit_batch(&self, specs: &[String]) -> Result<Vec<Submitted>, String> {
        let mut body = String::from("{\"jobs\":[");
        for (i, spec) in specs.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(spec);
        }
        body.push_str("]}");
        let (response, _) = self.timed("POST", "/jobs/batch", &body)?;
        if response.status != 200 {
            return Err(format!(
                "batch: HTTP {}: {}",
                response.status, response.body
            ));
        }
        let v = JsonValue::parse(&response.body).map_err(|e| e.to_string())?;
        let items = v
            .get("items")
            .and_then(JsonValue::as_arr)
            .ok_or("batch response without items")?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let code = item
                .get("code")
                .and_then(JsonValue::as_u64)
                .ok_or("batch item without a code")?;
            out.push(match code {
                202 => {
                    let id = item
                        .get("id")
                        .and_then(JsonValue::as_u64)
                        .ok_or("202 batch item without an id")?;
                    Submitted::Accepted { id }
                }
                429 => Submitted::Busy {
                    retry_after_secs: item
                        .get("retry_after")
                        .and_then(JsonValue::as_u64)
                        .unwrap_or(1),
                },
                status => Submitted::Refused {
                    status: u16::try_from(status).unwrap_or(500),
                    error: item
                        .get("error")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("")
                        .to_string(),
                },
            });
        }
        Ok(out)
    }

    /// Fetches a job's status.
    ///
    /// # Errors
    ///
    /// Transport failures, unknown ids, or unparseable bodies.
    pub fn status(&self, id: u64) -> Result<JobStatus, String> {
        let (response, _) = self.timed("GET", &format!("/jobs/{id}"), "")?;
        if response.status != 200 {
            return Err(format!("status {id}: HTTP {}: {}", response.status, response.body));
        }
        let v = JsonValue::parse(&response.body).map_err(|e| e.to_string())?;
        let status = v
            .get("status")
            .and_then(JsonValue::as_str)
            .ok_or("status response without a status field")?
            .to_string();
        let trace_digest = match v.get("trace_digest").and_then(JsonValue::as_str) {
            Some(hex) => Some(
                u64::from_str_radix(hex, 16).map_err(|_| format!("bad digest hex `{hex}`"))?,
            ),
            None => None,
        };
        let error = v
            .get("error")
            .and_then(JsonValue::as_str)
            .map(str::to_string);
        Ok(JobStatus {
            id,
            status,
            trace_digest,
            error,
        })
    }

    /// Fetches a finished job's result; `Ok(None)` while it is still
    /// queued or running.
    ///
    /// # Errors
    ///
    /// Transport failures, unknown ids, or undecodable results.
    pub fn result(&self, id: u64) -> Result<Option<WireResult>, String> {
        let (response, _) = self.timed("GET", &format!("/jobs/{id}/result"), "")?;
        match response.status {
            200 => WireResult::from_json(&response.body)
                .map(Some)
                .map_err(|e| e.to_string()),
            409 => Ok(None),
            status => Err(format!("result {id}: HTTP {status}: {}", response.body)),
        }
    }

    /// Fetches a finished job's result body verbatim; `Ok(None)` while
    /// it is still queued or running.
    ///
    /// Epoch jobs serve a `WireEpochOutcome` document rather than a
    /// `WireResult`, so remote campaign callers need the raw text to
    /// decode themselves.
    ///
    /// # Errors
    ///
    /// Transport failures or unknown ids.
    pub fn result_json(&self, id: u64) -> Result<Option<String>, String> {
        let (response, _) = self.timed("GET", &format!("/jobs/{id}/result"), "")?;
        match response.status {
            200 => Ok(Some(response.body)),
            409 => Ok(None),
            status => Err(format!("result {id}: HTTP {status}: {}", response.body)),
        }
    }

    /// Polls until the job reaches a terminal state, then returns its
    /// result. Bounded: gives up after `max_polls` probes of `poll_ms`.
    ///
    /// # Errors
    ///
    /// Transport failures, non-`done` terminal states, or poll exhaustion.
    pub fn wait_result(&self, id: u64, poll_ms: u64, max_polls: u32) -> Result<WireResult, String> {
        for _ in 0..max_polls {
            let status = self.status(id)?;
            if status.is_terminal() {
                if status.status != "done" {
                    return Err(format!(
                        "job {id} ended {}{}",
                        status.status,
                        status
                            .error
                            .map(|e| format!(": {e}"))
                            .unwrap_or_default()
                    ));
                }
                return self
                    .result(id)?
                    .ok_or_else(|| format!("job {id} done but no result served"));
            }
            thread::sleep(Duration::from_millis(poll_ms.max(1)));
        }
        Err(format!("job {id} still not terminal after {max_polls} polls"))
    }

    /// Requests job cancellation; returns the post-request state.
    ///
    /// # Errors
    ///
    /// Transport failures or unknown ids.
    pub fn cancel(&self, id: u64) -> Result<String, String> {
        let (response, _) = self.timed("DELETE", &format!("/jobs/{id}"), "")?;
        if response.status != 200 {
            return Err(format!("cancel {id}: HTTP {}: {}", response.status, response.body));
        }
        JsonValue::parse(&response.body)
            .ok()
            .as_ref()
            .and_then(|v| v.get("status"))
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("cancel response unparseable: {}", response.body))
    }

    /// Fetches the `/stats` snapshot as parsed JSON.
    ///
    /// # Errors
    ///
    /// Transport or parse failures.
    pub fn stats(&self) -> Result<JsonValue, String> {
        let (response, _) = self.timed("GET", "/stats", "")?;
        if response.status != 200 {
            return Err(format!("stats: HTTP {}", response.status));
        }
        JsonValue::parse(&response.body).map_err(|e| e.to_string())
    }

    /// Asks the server to shut down (drain, or abort when `force`).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected status.
    pub fn shutdown(&self, force: bool) -> Result<(), String> {
        let body = if force { "{\"force\":true}" } else { "" };
        let (response, _) = self.timed("POST", "/shutdown", body)?;
        if response.status != 200 {
            return Err(format!("shutdown: HTTP {}: {}", response.status, response.body));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::deterministic_backoff_ms;

    #[test]
    fn backoff_is_a_pure_function_of_its_inputs() {
        for attempt in 0..8 {
            let a = deterministic_backoff_ms(0xDEAD_BEEF, attempt, 1);
            let b = deterministic_backoff_ms(0xDEAD_BEEF, attempt, 1);
            assert_eq!(a, b, "attempt {attempt} must replay identically");
        }
        // Different specs decorrelate: at least one attempt differs.
        let diverged = (0..8).any(|attempt| {
            deterministic_backoff_ms(1, attempt, 5) != deterministic_backoff_ms(2, attempt, 5)
        });
        assert!(diverged, "distinct seeds should yield distinct schedules");
    }

    #[test]
    fn backoff_honors_retry_after_and_the_global_cap() {
        for seed in [0u64, 1, u64::MAX, 0x1234_5678_9ABC_DEF0] {
            for attempt in 0..10 {
                for hint in [0u64, 1, 2, 5, 60] {
                    let wait = deterministic_backoff_ms(seed, attempt, hint);
                    let cap = (hint.clamp(1, 5) * 1000).min(400);
                    assert!(wait <= cap, "wait {wait} exceeds cap {cap}");
                    assert!(wait >= 1, "a busy retry always waits a little");
                }
            }
        }
    }

    #[test]
    fn backoff_grows_with_attempts_until_the_cap() {
        // Base doubles per attempt (before jitter), saturating at 320ms;
        // the floor of the wait therefore rises until the cap bites.
        let floor = |attempt: u32| 20u64 << attempt.min(4);
        for attempt in 0..6 {
            let wait = deterministic_backoff_ms(42, attempt, 5);
            assert!(
                wait >= floor(attempt).min(400),
                "attempt {attempt}: wait {wait} under floor"
            );
        }
    }
}
