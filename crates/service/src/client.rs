//! A small blocking client for the job API.
//!
//! Used by `nbti-noc submit`, the integration tests, and the throughput
//! bench. Every call opens one connection (the server closes after each
//! response) and reports its wall-clock latency in milliseconds so
//! callers can build request-latency distributions without touching the
//! clock themselves.

use crate::clock;
use crate::http::http_request;
use sensorwise::codec::{JsonValue, WireResult};
use std::thread;
use std::time::Duration;

/// Outcome of one submission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submitted {
    /// `202`: the job is queued under this id.
    Accepted {
        /// The server-assigned job id.
        id: u64,
    },
    /// `429`: backpressure; retry after the hinted delay.
    Busy {
        /// The server's `Retry-After` hint, seconds.
        retry_after_secs: u64,
    },
    /// Any other status (bad spec, shutting down, ...).
    Refused {
        /// The HTTP status code.
        status: u16,
        /// The server's error body.
        error: String,
    },
}

/// A job's status as reported by `GET /jobs/{id}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// The job id.
    pub id: u64,
    /// The wire state name (`queued`, `running`, `done`, ...).
    pub status: String,
    /// The event-stream digest once the job is done and was traced.
    pub trace_digest: Option<u64>,
    /// Failure detail for failed jobs.
    pub error: Option<String>,
}

impl JobStatus {
    /// Whether the job can make no further progress.
    pub fn is_terminal(&self) -> bool {
        !matches!(self.status.as_str(), "queued" | "running")
    }
}

/// The blocking API client.
#[derive(Debug, Clone)]
pub struct ServiceClient {
    addr: String,
}

impl ServiceClient {
    /// A client for the server at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> ServiceClient {
        ServiceClient { addr: addr.into() }
    }

    /// The server address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn timed(
        &self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(crate::http::ClientResponse, u64), String> {
        let start = clock::now();
        let response = http_request(&self.addr, method, path, body)?;
        Ok((response, clock::millis_since(start)))
    }

    /// Submits one spec. Returns the outcome and the request latency in
    /// milliseconds.
    ///
    /// # Errors
    ///
    /// Transport failures only; HTTP-level refusals are [`Submitted`]
    /// variants.
    pub fn submit(&self, spec_json: &str) -> Result<(Submitted, u64), String> {
        let (response, latency_ms) = self.timed("POST", "/jobs", spec_json)?;
        let outcome = match response.status {
            202 => {
                let id = JsonValue::parse(&response.body)
                    .ok()
                    .as_ref()
                    .and_then(|v| v.get("id"))
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("202 without an id: {}", response.body))?;
                Submitted::Accepted { id }
            }
            429 => Submitted::Busy {
                retry_after_secs: response.retry_after_secs.unwrap_or(1),
            },
            status => Submitted::Refused {
                status,
                error: response.body,
            },
        };
        Ok((outcome, latency_ms))
    }

    /// Submits with bounded backpressure retries. Returns the job id, the
    /// number of `429`s absorbed, and the latencies of every attempt.
    ///
    /// # Errors
    ///
    /// Transport failures, non-busy refusals, or `max_retries` exhausted.
    pub fn submit_with_retry(
        &self,
        spec_json: &str,
        max_retries: u32,
    ) -> Result<(u64, u32, Vec<u64>), String> {
        let mut latencies = Vec::new();
        let mut busy = 0u32;
        loop {
            let (outcome, latency_ms) = self.submit(spec_json)?;
            latencies.push(latency_ms);
            match outcome {
                Submitted::Accepted { id } => return Ok((id, busy, latencies)),
                Submitted::Busy { retry_after_secs } => {
                    busy += 1;
                    if busy > max_retries {
                        return Err(format!("queue still full after {max_retries} retries"));
                    }
                    // Back off well under the hinted second: the hint is
                    // an upper bound and jobs drain in milliseconds.
                    let wait = (retry_after_secs.clamp(1, 5) * 50).min(250);
                    thread::sleep(Duration::from_millis(wait));
                }
                Submitted::Refused { status, error } => {
                    return Err(format!("submission refused ({status}): {error}"));
                }
            }
        }
    }

    /// Fetches a job's status.
    ///
    /// # Errors
    ///
    /// Transport failures, unknown ids, or unparseable bodies.
    pub fn status(&self, id: u64) -> Result<JobStatus, String> {
        let (response, _) = self.timed("GET", &format!("/jobs/{id}"), "")?;
        if response.status != 200 {
            return Err(format!("status {id}: HTTP {}: {}", response.status, response.body));
        }
        let v = JsonValue::parse(&response.body).map_err(|e| e.to_string())?;
        let status = v
            .get("status")
            .and_then(JsonValue::as_str)
            .ok_or("status response without a status field")?
            .to_string();
        let trace_digest = match v.get("trace_digest").and_then(JsonValue::as_str) {
            Some(hex) => Some(
                u64::from_str_radix(hex, 16).map_err(|_| format!("bad digest hex `{hex}`"))?,
            ),
            None => None,
        };
        let error = v
            .get("error")
            .and_then(JsonValue::as_str)
            .map(str::to_string);
        Ok(JobStatus {
            id,
            status,
            trace_digest,
            error,
        })
    }

    /// Fetches a finished job's result; `Ok(None)` while it is still
    /// queued or running.
    ///
    /// # Errors
    ///
    /// Transport failures, unknown ids, or undecodable results.
    pub fn result(&self, id: u64) -> Result<Option<WireResult>, String> {
        let (response, _) = self.timed("GET", &format!("/jobs/{id}/result"), "")?;
        match response.status {
            200 => WireResult::from_json(&response.body)
                .map(Some)
                .map_err(|e| e.to_string()),
            409 => Ok(None),
            status => Err(format!("result {id}: HTTP {status}: {}", response.body)),
        }
    }

    /// Polls until the job reaches a terminal state, then returns its
    /// result. Bounded: gives up after `max_polls` probes of `poll_ms`.
    ///
    /// # Errors
    ///
    /// Transport failures, non-`done` terminal states, or poll exhaustion.
    pub fn wait_result(&self, id: u64, poll_ms: u64, max_polls: u32) -> Result<WireResult, String> {
        for _ in 0..max_polls {
            let status = self.status(id)?;
            if status.is_terminal() {
                if status.status != "done" {
                    return Err(format!(
                        "job {id} ended {}{}",
                        status.status,
                        status
                            .error
                            .map(|e| format!(": {e}"))
                            .unwrap_or_default()
                    ));
                }
                return self
                    .result(id)?
                    .ok_or_else(|| format!("job {id} done but no result served"));
            }
            thread::sleep(Duration::from_millis(poll_ms.max(1)));
        }
        Err(format!("job {id} still not terminal after {max_polls} polls"))
    }

    /// Requests job cancellation; returns the post-request state.
    ///
    /// # Errors
    ///
    /// Transport failures or unknown ids.
    pub fn cancel(&self, id: u64) -> Result<String, String> {
        let (response, _) = self.timed("DELETE", &format!("/jobs/{id}"), "")?;
        if response.status != 200 {
            return Err(format!("cancel {id}: HTTP {}: {}", response.status, response.body));
        }
        JsonValue::parse(&response.body)
            .ok()
            .as_ref()
            .and_then(|v| v.get("status"))
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("cancel response unparseable: {}", response.body))
    }

    /// Fetches the `/stats` snapshot as parsed JSON.
    ///
    /// # Errors
    ///
    /// Transport or parse failures.
    pub fn stats(&self) -> Result<JsonValue, String> {
        let (response, _) = self.timed("GET", "/stats", "")?;
        if response.status != 200 {
            return Err(format!("stats: HTTP {}", response.status));
        }
        JsonValue::parse(&response.body).map_err(|e| e.to_string())
    }

    /// Asks the server to shut down (drain, or abort when `force`).
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected status.
    pub fn shutdown(&self, force: bool) -> Result<(), String> {
        let body = if force { "{\"force\":true}" } else { "" };
        let (response, _) = self.timed("POST", "/shutdown", body)?;
        if response.status != 200 {
            return Err(format!("shutdown: HTTP {}: {}", response.status, response.body));
        }
        Ok(())
    }
}
