//! A bounded MPMC job queue with explicit backpressure.
//!
//! The submission path must never block an HTTP handler and never drop an
//! accepted job, so the queue's contract is asymmetric:
//!
//! * [`BoundedQueue::try_push`] is non-blocking — a full queue is reported
//!   immediately as [`PushError::Full`] and the server turns it into a
//!   `429` with `Retry-After`. Backpressure is a first-class response,
//!   not a wait.
//! * [`BoundedQueue::pop`] blocks — workers park on a condvar until work
//!   arrives or the queue is closed *and* drained, which is exactly the
//!   graceful-shutdown drain semantics: closing stops producers, but
//!   every item already accepted is still handed to a worker.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; retry later (backpressure).
    Full,
    /// The queue was closed (shutdown); no retries will succeed.
    Closed,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer FIFO.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-depth queue would reject
    /// every submission.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        BoundedQueue {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // A worker panicking mid-`pop` cannot corrupt a VecDeque of ids;
        // recover the guard rather than poisoning the whole server.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut s = self.lock();
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        s.items.push_back(item);
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (FIFO) or the queue is closed and
    /// empty (`None`): the worker-pool exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self
                .ready
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pushes fail from now on, and poppers drain the
    /// remaining items before observing `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_backpressure() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push(10).unwrap();
        q.close();
        assert_eq!(q.try_push(11), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_wakes_blocked_consumers_via_parallel_map() {
        // Two consumers block on an empty queue; a producer (the third
        // mapped item) feeds and closes it. parallel_map is the
        // lint-sanctioned thread pool for tests.
        let q = Arc::new(BoundedQueue::new(4));
        let roles = [0usize, 0, 1];
        let got = sensorwise::parallel_map(&roles, 3, |_, &role| {
            if role == 0 {
                let mut taken = Vec::new();
                while let Some(v) = q.pop() {
                    taken.push(v);
                }
                taken
            } else {
                for v in 0..6 {
                    while q.try_push(v) == Err(PushError::Full) {
                        std::thread::yield_now();
                    }
                }
                q.close();
                Vec::new()
            }
        });
        let mut all: Vec<i32> = got.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let _: BoundedQueue<u64> = BoundedQueue::new(0);
    }
}
