//! A minimal HTTP/1.1 implementation on `std::net`.
//!
//! Only what the job API needs: one request per connection
//! (`Connection: close`), `Content-Length` framing both ways, hard size
//! limits so a misbehaving client cannot balloon server memory. No
//! chunked encoding, no keep-alive, no TLS — the service targets trusted
//! lab networks, and every avoided feature is an avoided dependency.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Largest accepted body; experiment specs are a few hundred bytes.
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// The request target, e.g. `/jobs/3`.
    pub path: String,
    /// The decoded body (empty when none was sent).
    pub body: String,
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// Malformed request lines, over-limit heads or bodies, and I/O failures
/// are all reported as strings; the caller answers with `400` and closes.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let (head, mut carry) = read_head(stream)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or("empty request line")?
        .to_string();
    let path = parts.next().ok_or("request line has no target")?.to_string();
    if !parts.next().is_some_and(|v| v.starts_with("HTTP/1.")) {
        return Err(format!("not an HTTP/1.x request line: {request_line:?}"));
    }

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| format!("bad Content-Length: {:?}", value.trim()))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!("body of {content_length} bytes exceeds limit"));
    }

    while carry.len() < content_length {
        let mut buf = [0u8; 4096];
        let n = stream
            .read(&mut buf)
            .map_err(|e| format!("read body: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        carry.extend_from_slice(&buf[..n]);
    }
    carry.truncate(content_length);
    let body = String::from_utf8(carry).map_err(|_| "body is not UTF-8".to_string())?;
    Ok(Request { method, path, body })
}

/// Reads up to and including the blank line; returns the head text and
/// any body bytes already pulled off the socket.
fn read_head(stream: &mut TcpStream) -> Result<(String, Vec<u8>), String> {
    let mut buf = Vec::with_capacity(512);
    loop {
        let mut byte = [0u8; 256];
        let n = stream
            .read(&mut byte)
            .map_err(|e| format!("read head: {e}"))?;
        if n == 0 {
            return Err("connection closed before request head".to_string());
        }
        buf.extend_from_slice(&byte[..n]);
        if let Some(end) = find_head_end(&buf) {
            let carry = buf[end + 4..].to_vec();
            let head = String::from_utf8(buf[..end].to_vec())
                .map_err(|_| "request head is not UTF-8".to_string())?;
            return Ok((head, carry));
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(format!("request head exceeds {MAX_HEAD_BYTES} bytes"));
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a JSON response and flushes. `extra_headers` lets handlers add
/// e.g. `Retry-After`. Write failures are ignored — the client is gone,
/// and the job table, not the socket, is the source of truth.
pub fn write_json_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) {
    write_response(stream, status, "application/json", extra_headers, body);
}

/// Writes a response with an explicit content type (the `/metrics`
/// exposition is `text/plain`, everything else JSON).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(value);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.push_str(body);
    let _ = stream.write_all(out.as_bytes());
    let _ = stream.flush();
}

/// A client-side response: status code and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// The HTTP status code.
    pub status: u16,
    /// The response body.
    pub body: String,
    /// The parsed `Retry-After` header, when present.
    pub retry_after_secs: Option<u64>,
}

/// Performs one request against `addr` and reads the full response
/// (the server always closes after responding).
///
/// # Errors
///
/// Connection, I/O and response-parse failures as strings.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<ClientResponse, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("write request: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read response: {e}"))?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Result<ClientResponse, String> {
    let end = find_head_end(raw).ok_or("response has no header terminator")?;
    let head =
        String::from_utf8(raw[..end].to_vec()).map_err(|_| "response head is not UTF-8")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line: {status_line:?}"))?;
    let mut retry_after_secs = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("retry-after") {
                retry_after_secs = value.trim().parse().ok();
            }
        }
    }
    let body = String::from_utf8(raw[end + 4..].to_vec())
        .map_err(|_| "response body is not UTF-8".to_string())?;
    Ok(ClientResponse {
        status,
        body,
        retry_after_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_response() {
        let raw = b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 1\r\nContent-Length: 2\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.retry_after_secs, Some(1));
        assert_eq!(r.body, "{}");
    }

    #[test]
    fn rejects_garbage_responses() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"a\r\n\r\nbody"), Some(1));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }

    #[test]
    fn request_round_trip_over_a_real_socket() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let results = sensorwise::parallel_map(&[0usize, 1], 2, |_, &role| {
            if role == 0 {
                let (mut stream, _) = listener.accept().unwrap();
                let req = read_request(&mut stream).unwrap();
                write_json_response(&mut stream, 202, &[], "{\"ok\":true}");
                format!("{} {} {}", req.method, req.path, req.body)
            } else {
                let r = http_request(&addr, "POST", "/jobs", "{\"x\":1}").unwrap();
                format!("{} {}", r.status, r.body)
            }
        });
        assert_eq!(results[0], "POST /jobs {\"x\":1}");
        assert_eq!(results[1], "202 {\"ok\":true}");
    }
}
