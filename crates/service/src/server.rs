//! The experiment server: acceptor, worker pool, timeout supervisor.
//!
//! Thread layout (all fixed at startup — no per-request spawning):
//!
//! * **acceptor** — owns the listening socket, parses each request and
//!   answers it inline. Submission is O(parse + enqueue), so one acceptor
//!   thread keeps up with many clients; the expensive work happens on the
//!   workers.
//! * **workers** (`cfg.workers` of them) — block on the queue, claim jobs,
//!   run them through the deterministic engine, record terminal states.
//!   A panicking experiment marks its job `failed`; the worker survives.
//! * **supervisor** — the only thread that watches the wall clock for
//!   jobs: it sweeps deadlines and flips cancellation flags. The engine
//!   itself never sees real time, which is what keeps served results
//!   bit-identical to local runs.
//!
//! Shutdown: `request_shutdown(false)` stops *accepting* (new `POST
//! /jobs` → `503`) and closes the queue, but the acceptor keeps answering
//! status polls while the workers drain every accepted job;
//! `request_shutdown(true)` additionally drops queued jobs and cancels
//! running ones. [`Server::wait`] joins everything and reports what
//! happened to every accepted job.

use crate::clock;
use crate::http::{read_request, write_response, Request};
use crate::jobs::{JobCounts, JobPayload, JobState, JobTable};
use crate::metrics::{Endpoint, GaugeView, MetricsRegistry};
use crate::queue::{BoundedQueue, PushError};
use noc_telemetry::spans::{derive_id, FlightRecorder, Span, SpanKind, NO_PARENT};
use sensorwise::codec::{json_string, result_to_json, spec_from_json, spec_to_json, JsonValue};
use sensorwise::{is_epoch_request, EpochError, ResultCache, WireEpochOutcome, WireEpochRequest};
use std::fmt;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How long the acceptor sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
/// How often the supervisor sweeps deadlines.
const SUPERVISOR_POLL: Duration = Duration::from_millis(10);
/// The `Retry-After` hint (seconds) sent with `429`.
const RETRY_AFTER_SECS: &str = "1";
/// How many spans the flight recorder keeps (oldest evicted first).
const FLIGHT_RECORDER_CAPACITY: usize = 4096;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker-pool size (≥ 1).
    pub workers: usize,
    /// Queue capacity (≥ 1); submissions beyond it get `429`.
    pub queue_depth: usize,
    /// Per-job wall-clock timeout in milliseconds; `0` disables.
    pub job_timeout_ms: u64,
    /// Where the span flight recorder is dumped (JSONL, appended) on
    /// worker failure, job timeout, or shutdown; `None` disables dumps
    /// (spans are still recorded in the in-memory ring).
    pub spans_out: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            job_timeout_ms: 0,
            spans_out: None,
        }
    }
}

/// What happened to every job the server ever accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Jobs accepted with `202`.
    pub accepted: u64,
    /// Jobs that finished with a result.
    pub completed: u64,
    /// Jobs that panicked.
    pub failed: u64,
    /// Jobs cancelled by clients.
    pub cancelled: u64,
    /// Jobs aborted by the timeout supervisor.
    pub timed_out: u64,
    /// Jobs dropped by a force shutdown (always 0 on graceful drains).
    pub dropped: u64,
    /// Submissions refused with `429` (never accepted, never owed).
    pub rejected_busy: u64,
    /// Submissions answered from the result cache (a subset of
    /// `completed`: hits finish terminally at accept time).
    pub cache_hits: u64,
}

impl ShutdownReport {
    /// Whether every accepted job reached a terminal state — the drain
    /// guarantee the integration tests pin down.
    pub fn accounts_for_all(&self) -> bool {
        self.completed + self.failed + self.cancelled + self.timed_out + self.dropped
            == self.accepted
    }
}

/// A shared result cache behind the server: hits answer submissions
/// without occupying a worker, completed runs are written back.
struct CacheHandle(Arc<dyn ResultCache + Send + Sync>);

impl fmt::Debug for CacheHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CacheHandle(..)")
    }
}

#[derive(Debug)]
struct Shared {
    queue: BoundedQueue<u64>,
    table: JobTable,
    /// Optional content-addressed result cache.
    cache: Option<CacheHandle>,
    /// `false` once shutdown starts: `POST /jobs` answers `503`.
    accepting: AtomicBool,
    /// Set by `POST /shutdown` and `request_shutdown`.
    shutdown: AtomicBool,
    /// Set with `shutdown` on force: queued jobs drop, running ones abort.
    force: AtomicBool,
    /// Terminates the acceptor and supervisor loops (set by `wait` after
    /// the workers have drained, so polls keep working until the end).
    stop: AtomicBool,
    /// Counters and request-latency histograms behind `/metrics` and
    /// `/stats` (one source of truth for both).
    metrics: MetricsRegistry,
    /// Bounded ring of request/job/experiment spans.
    recorder: FlightRecorder,
    /// Span-dump target (see [`ServiceConfig::spans_out`]).
    spans_out: Option<String>,
    /// Span time origin: every `start_us` is relative to this instant.
    started: Instant,
    timeout_ms: u64,
}

impl Shared {
    /// Microseconds since the server started — the span clock.
    fn span_clock_us(&self) -> u64 {
        clock::micros_since(self.started)
    }

    /// Appends the flight recorder's contents to `spans_out`, if set.
    /// Dump errors are swallowed: span loss must never fail serving.
    fn dump_spans(&self) {
        let Some(path) = &self.spans_out else { return };
        if self.recorder.is_empty() {
            return;
        }
        let jsonl = self.recorder.to_jsonl();
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            use std::io::Write;
            let _ = f.write_all(jsonl.as_bytes());
        }
        let _ = self.recorder.drain();
    }
}

/// A running server. Dropping it without calling [`Server::wait`] leaks
/// the threads; `wait` is the supported teardown.
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    handles: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the thread pool, and returns once the server is
    /// accepting requests.
    ///
    /// # Errors
    ///
    /// Invalid configuration or a failed bind.
    pub fn start(cfg: &ServiceConfig) -> Result<Server, String> {
        Server::start_with_cache(cfg, None)
    }

    /// Like [`Server::start`], but with a content-addressed result cache:
    /// a submission whose canonical spec is already cached is answered
    /// terminally at accept time — no queue slot, no worker — and every
    /// computed result is written back for the next submitter.
    ///
    /// # Errors
    ///
    /// Invalid configuration or a failed bind.
    pub fn start_with_cache(
        cfg: &ServiceConfig,
        cache: Option<Arc<dyn ResultCache + Send + Sync>>,
    ) -> Result<Server, String> {
        if cfg.workers == 0 {
            return Err("--workers must be at least 1".to_string());
        }
        if cfg.queue_depth == 0 {
            return Err("--queue-depth must be at least 1".to_string());
        }
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;

        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_depth),
            table: JobTable::default(),
            cache: cache.map(CacheHandle),
            accepting: AtomicBool::new(true),
            shutdown: AtomicBool::new(false),
            force: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            metrics: MetricsRegistry::default(),
            recorder: FlightRecorder::new(FLIGHT_RECORDER_CAPACITY),
            spans_out: cfg.spans_out.clone(),
            started: clock::now(),
            timeout_ms: cfg.job_timeout_ms,
        });

        let mut handles = Vec::with_capacity(cfg.workers + 2);
        for worker in 0..cfg.workers {
            let s = Arc::clone(&shared);
            handles.push(
                thread::Builder::new()
                    .name(format!("noc-service-worker-{worker}"))
                    .spawn(move || worker_loop(&s))
                    .map_err(|e| format!("spawn worker: {e}"))?,
            );
        }
        let s = Arc::clone(&shared);
        handles.push(
            thread::Builder::new()
                .name("noc-service-supervisor".to_string())
                .spawn(move || supervisor_loop(&s))
                .map_err(|e| format!("spawn supervisor: {e}"))?,
        );
        let s = Arc::clone(&shared);
        handles.push(
            thread::Builder::new()
                .name("noc-service-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &s))
                .map_err(|e| format!("spawn acceptor: {e}"))?,
        );
        Ok(Server {
            shared,
            local_addr,
            handles,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Begins shutdown: stop accepting, close the queue. With `force`,
    /// also drop queued jobs and cancel running ones.
    pub fn request_shutdown(&self, force: bool) {
        initiate_shutdown(&self.shared, force);
    }

    /// Blocks until shutdown completes (someone must have requested it,
    /// over HTTP or via [`Server::request_shutdown`]) and every thread has
    /// exited; returns the final accounting.
    pub fn wait(self) -> ShutdownReport {
        // Workers exit once the queue is closed and drained. The acceptor
        // and supervisor stay up until then so clients can poll statuses
        // of draining jobs.
        let (mut acceptor_and_supervisor, workers): (Vec<_>, Vec<_>) = self
            .handles
            .into_iter()
            .partition(|h| h.thread().name().is_some_and(|n| !n.contains("worker")));
        for h in workers {
            let _ = h.join();
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        for h in acceptor_and_supervisor.drain(..) {
            let _ = h.join();
        }
        // The final accounting is also a span-dump point: whatever the
        // flight recorder still holds describes the flight that just ended.
        self.shared.dump_spans();
        let c = self.shared.table.counts();
        report_from(&self.shared, &c)
    }

    /// The live `/stats` snapshot, for in-process callers.
    pub fn counts(&self) -> JobCounts {
        self.shared.table.counts()
    }

    /// Submissions answered straight from the result cache (0 when the
    /// server runs without one).
    pub fn cache_hits(&self) -> u64 {
        self.shared.metrics.cache_hits()
    }
}

fn report_from(shared: &Shared, c: &JobCounts) -> ShutdownReport {
    ShutdownReport {
        accepted: shared.metrics.accepted(),
        completed: c.done,
        failed: c.failed,
        cancelled: c.cancelled,
        timed_out: c.timed_out,
        dropped: c.dropped,
        rejected_busy: shared.metrics.rejected_busy(),
        cache_hits: shared.metrics.cache_hits(),
    }
}

fn initiate_shutdown(shared: &Shared, force: bool) {
    shared.accepting.store(false, Ordering::SeqCst);
    if force {
        shared.force.store(true, Ordering::SeqCst);
        shared.table.abort_all();
    }
    shared.shutdown.store(true, Ordering::SeqCst);
    // Close after the force sweep so a worker cannot claim a job the
    // sweep was about to drop.
    shared.queue.close();
}

/// What a successfully executed payload hands back to the worker loop.
struct JobSuccess {
    /// The result JSON served by `GET /jobs/{id}/result`.
    json: String,
    /// The event-stream digest, when the run was traced.
    digest: Option<u64>,
    /// For experiment payloads, the typed result for the cache write-back;
    /// epoch outcomes are written back as raw JSON instead.
    wire: Option<sensorwise::WireResult>,
}

/// Runs one payload to a `Ok(Some)` success / `Ok(None)` abort /
/// `Err(msg)` typed-failure trichotomy shared by both payload kinds.
fn run_payload(
    payload: &JobPayload,
    cancel: &AtomicBool,
) -> Result<Option<JobSuccess>, String> {
    match payload {
        JobPayload::Experiment(job) => Ok(job.run_cancellable(cancel).map(|result| JobSuccess {
            json: result_to_json(&result),
            digest: result.trace_digest(),
            wire: Some(sensorwise::WireResult::from(&result)),
        })),
        JobPayload::Epoch(req) => match req.run_cancellable(cancel) {
            Ok(outcome) => {
                let wire = WireEpochOutcome::from(&outcome);
                Ok(Some(JobSuccess {
                    json: wire.to_json(),
                    digest: wire.result.trace_digest,
                    wire: None,
                }))
            }
            Err(EpochError::Cancelled) => Ok(None),
            // Drain timeouts, snapshot rejections, unsupported sensors:
            // typed failures of the epoch itself, not worker crashes.
            Err(e) => Err(e.to_string()),
        },
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(id) = shared.queue.pop() {
        // A force shutdown may have raced this pop: claim() refuses
        // anything no longer queued, so dropped/cancelled ids fall through.
        let Some((job, cancel, timed_out)) = shared.table.claim(id, shared.timeout_ms) else {
            continue;
        };
        let submitted_at = shared.table.with(id, |r| r.submitted_at);
        let exp_start_us = shared.span_clock_us();
        let t_run = clock::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| run_payload(&job, &cancel)));
        let busy_us = clock::micros_since(t_run);
        shared.metrics.add_worker_busy_us(busy_us);
        record_job_spans(shared, id, submitted_at, exp_start_us, busy_us);
        match outcome {
            Ok(Ok(Some(success))) => {
                if let Some(cache) = &shared.cache {
                    if let Some(spec) = shared.table.with(id, |r| r.spec_json.clone()) {
                        match &success.wire {
                            Some(wire) => cache.0.put(&spec, wire),
                            // Epoch outcomes: the shared result plane
                            // files the raw canonical JSON, which is how
                            // remote campaign front ends pick them up.
                            None => cache.0.put_json(&spec, &success.json),
                        }
                    }
                }
                shared
                    .table
                    .finish(id, JobState::Done, Some(success.json), success.digest, None);
            }
            Ok(Ok(None)) => {
                let state = if timed_out.load(Ordering::Relaxed) {
                    JobState::TimedOut
                } else {
                    JobState::Cancelled
                };
                shared.table.finish(id, state, None, None, None);
                if state == JobState::TimedOut {
                    shared.dump_spans();
                }
            }
            Ok(Err(msg)) => {
                shared
                    .table
                    .finish(id, JobState::Failed, None, None, Some(msg));
                shared.dump_spans();
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "experiment panicked".to_string());
                shared
                    .table
                    .finish(id, JobState::Failed, None, None, Some(msg));
                shared.dump_spans();
            }
        }
    }
}

/// Records the job span (accept → terminal) and the experiment span
/// (worker execution) for one finished job. Ids are derived from logical
/// coordinates, so the chain request → job → experiment reconnects in
/// the summarizer without any handle threading: the job's parent is the
/// submit request span, the experiment's parent is the job span.
fn record_job_spans(
    shared: &Shared,
    id: u64,
    submitted_at: Option<Instant>,
    exp_start_us: u64,
    busy_us: u64,
) {
    let submit_span = derive_id(SpanKind::Request, Endpoint::Submit.label(), NO_PARENT);
    let name = format!("job-{id}");
    let job_start_us = match submitted_at {
        Some(at) => {
            let since_start = at.saturating_duration_since(shared.started);
            u64::try_from(since_start.as_micros()).unwrap_or(u64::MAX)
        }
        None => exp_start_us,
    };
    let job_span = Span::new(
        SpanKind::Job,
        &name,
        submit_span,
        job_start_us,
        shared.span_clock_us().saturating_sub(job_start_us),
    );
    let exp_span = Span::new(SpanKind::Experiment, &name, job_span.id, exp_start_us, busy_us);
    shared.recorder.record(job_span);
    shared.recorder.record(exp_span);
}

fn supervisor_loop(shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        shared.table.expire_deadlines(clock::now());
        thread::sleep(SUPERVISOR_POLL);
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                // Bound slow clients so one stalled socket cannot wedge
                // the acceptor.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                handle_connection(&mut stream, shared);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(stream: &mut TcpStream, shared: &Shared) {
    let start_us = shared.span_clock_us();
    let t_req = clock::now();
    let request = match read_request(stream) {
        Ok(r) => r,
        Err(e) => {
            let body = format!("{{\"error\":{}}}", json_string(&e));
            write_response(stream, 400, "application/json", &[], &body);
            finish_request(shared, Endpoint::Other, start_us, t_req);
            return;
        }
    };
    let endpoint = Endpoint::classify(&request.method, &request.path);
    let (status, content_type, headers, body) = route(&request, shared);
    let header_refs: Vec<(&str, &str)> = headers
        .iter()
        .map(|(n, v)| (*n, v.as_str()))
        .collect();
    write_response(stream, status, content_type, &header_refs, &body);
    finish_request(shared, endpoint, start_us, t_req);
}

/// Request bookkeeping after the response went out: one histogram
/// observation and one request span. Neither sits on the reply path.
fn finish_request(shared: &Shared, endpoint: Endpoint, start_us: u64, t_req: Instant) {
    let us = clock::micros_since(t_req);
    shared.metrics.observe_request(endpoint, us);
    shared.recorder.record(Span::new(
        SpanKind::Request,
        endpoint.label(),
        NO_PARENT,
        start_us,
        us,
    ));
}

type Routed = (u16, &'static str, Vec<(&'static str, String)>, String);

fn route(req: &Request, shared: &Shared) -> Routed {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => submit(req, shared),
        ("POST", ["jobs", "batch"]) => submit_batch(req, shared),
        ("GET", ["jobs", id]) => with_id(id, |id| status(id, shared)),
        ("GET", ["jobs", id, "result"]) => with_id(id, |id| result(id, shared)),
        ("DELETE", ["jobs", id]) => with_id(id, |id| cancel(id, shared)),
        ("GET", ["stats"]) => stats(shared),
        ("GET", ["metrics"]) => metrics(shared),
        ("POST", ["shutdown"]) => shutdown(req, shared),
        (_, ["jobs"] | ["jobs", ..] | ["stats"] | ["metrics"] | ["shutdown"]) => plain(
            405,
            "{\"error\":\"method not allowed\"}".to_string(),
        ),
        _ => plain(404, "{\"error\":\"no such endpoint\"}".to_string()),
    }
}

fn plain(status: u16, body: String) -> Routed {
    (status, "application/json", Vec::new(), body)
}

fn with_id(raw: &str, f: impl FnOnce(u64) -> Routed) -> Routed {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => plain(400, format!("{{\"error\":{}}}", json_string("bad job id"))),
    }
}

/// Decodes a submission body into a runnable payload plus its canonical
/// spec JSON. Bodies carrying the `"kind":"epoch"` marker are campaign
/// epochs; everything else is a standalone experiment spec. Re-encoding
/// makes the stored spec canonical regardless of client formatting.
fn parse_submission(body: &str) -> Result<(JobPayload, String), String> {
    if is_epoch_request(body) {
        let req = WireEpochRequest::from_json(body).map_err(|e| e.to_string())?;
        let canonical = req.to_json().map_err(|e| e.to_string())?;
        Ok((JobPayload::Epoch(Box::new(req)), canonical))
    } else {
        let job = spec_from_json(body).map_err(|e| e.to_string())?;
        let canonical = spec_to_json(&job).map_err(|e| e.to_string())?;
        Ok((JobPayload::Experiment(Box::new(job)), canonical))
    }
}

/// Cache fast path: a memoized spec is answered terminally at accept time
/// — the job record exists (status/result polls work as usual) but no
/// queue slot or worker is ever consumed. Returns the job id on a hit, or
/// hands the payload back on a miss. A stored entry that fails to decode
/// for its payload kind is a miss, never a wrong answer.
fn answer_from_cache(
    payload: JobPayload,
    canonical: &str,
    shared: &Shared,
) -> Result<u64, JobPayload> {
    let Some(cache) = &shared.cache else {
        return Err(payload);
    };
    let hit = match &payload {
        JobPayload::Experiment(_) => cache
            .0
            .get(canonical)
            .map(|wire| (wire.trace_digest, wire.to_json())),
        JobPayload::Epoch(_) => cache.0.get_json(canonical).and_then(|json| {
            WireEpochOutcome::from_json(&json)
                .ok()
                .map(|o| (o.result.trace_digest, json))
        }),
    };
    match hit {
        Some((digest, json)) => {
            let id = shared.table.insert(payload, canonical.to_string());
            shared.metrics.inc_accepted();
            shared.metrics.inc_cache_hit();
            shared.table.finish(id, JobState::Done, Some(json), digest, None);
            Ok(id)
        }
        None => {
            shared.metrics.inc_cache_miss();
            Err(payload)
        }
    }
}

/// Outcome of trying to enqueue one parsed, cache-missed submission.
enum Enqueued {
    /// Accepted; the id is queued for a worker.
    Queued(u64),
    /// The queue is full: `429`.
    Busy,
    /// The queue closed under the submission: `503`.
    Closed,
}

fn enqueue_one(payload: JobPayload, canonical: String, shared: &Shared) -> Enqueued {
    let id = shared.table.insert(payload, canonical);
    match shared.queue.try_push(id) {
        Ok(()) => {
            shared.metrics.inc_accepted();
            Enqueued::Queued(id)
        }
        Err(PushError::Full) => {
            shared.table.forget(id);
            shared.metrics.inc_rejected_busy();
            Enqueued::Busy
        }
        Err(PushError::Closed) => {
            shared.table.forget(id);
            Enqueued::Closed
        }
    }
}

fn submit(req: &Request, shared: &Shared) -> Routed {
    if !shared.accepting.load(Ordering::SeqCst) {
        return plain(503, "{\"error\":\"server is shutting down\"}".to_string());
    }
    let (payload, canonical) = match parse_submission(&req.body) {
        Ok(parsed) => parsed,
        Err(e) => return plain(400, format!("{{\"error\":{}}}", json_string(&e))),
    };
    let payload = match answer_from_cache(payload, &canonical, shared) {
        Ok(id) => {
            return plain(
                202,
                format!("{{\"id\":{id},\"status\":\"done\",\"cached\":true}}"),
            )
        }
        Err(payload) => payload,
    };
    match enqueue_one(payload, canonical, shared) {
        Enqueued::Queued(id) => plain(202, format!("{{\"id\":{id},\"status\":\"queued\"}}")),
        Enqueued::Busy => (
            429,
            "application/json",
            vec![("Retry-After", RETRY_AFTER_SECS.to_string())],
            "{\"error\":\"queue full, retry later\"}".to_string(),
        ),
        Enqueued::Closed => plain(503, "{\"error\":\"server is shutting down\"}".to_string()),
    }
}

/// Serializes a parsed [`JsonValue`] back to compact JSON text, preserving
/// number raw text and insertion order (used to hand batch items to the
/// same decode path single submissions take).
fn render_json(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(raw) => raw.clone(),
        JsonValue::Str(s) => json_string(s),
        JsonValue::Arr(items) => {
            let mut out = String::from("[");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&render_json(item));
            }
            out.push(']');
            out
        }
        JsonValue::Obj(pairs) => {
            let mut out = String::from("{");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(k));
                out.push(':');
                out.push_str(&render_json(val));
            }
            out.push('}');
            out
        }
    }
}

/// `POST /jobs/batch`: an array of specs accepted in one request. The body
/// is `{"jobs":[...]}` where each item is either a spec object or a string
/// containing spec JSON (epoch requests welcome in both forms). Queue
/// capacity is reserved in **one pass**: the free slots are snapshotted
/// once, cache hits consume none, and items beyond the snapshot are
/// answered busy per-item without racing the queue. The response is `200`
/// with per-item `202`/`429` codes mirroring what individual submissions
/// would have received.
fn submit_batch(req: &Request, shared: &Shared) -> Routed {
    if !shared.accepting.load(Ordering::SeqCst) {
        return plain(503, "{\"error\":\"server is shutting down\"}".to_string());
    }
    let root = match JsonValue::parse(&req.body) {
        Ok(v) => v,
        Err(e) => return plain(400, format!("{{\"error\":{}}}", json_string(&e.to_string()))),
    };
    let Some(items) = root.get("jobs").and_then(JsonValue::as_arr) else {
        return plain(
            400,
            "{\"error\":\"batch body must be {\\\"jobs\\\":[...]}\"}".to_string(),
        );
    };
    // The one reservation pass: snapshot free capacity now; every queued
    // acceptance below spends from this budget.
    let mut slots = shared
        .queue
        .capacity()
        .saturating_sub(shared.queue.len());
    let (mut accepted, mut cached, mut busy, mut errors) = (0u64, 0u64, 0u64, 0u64);
    let mut rows = Vec::with_capacity(items.len());
    for item in items {
        let spec_text = match item {
            JsonValue::Str(s) => s.clone(),
            other => render_json(other),
        };
        let (payload, canonical) = match parse_submission(&spec_text) {
            Ok(parsed) => parsed,
            Err(e) => {
                errors += 1;
                rows.push(format!("{{\"code\":400,\"error\":{}}}", json_string(&e)));
                continue;
            }
        };
        let payload = match answer_from_cache(payload, &canonical, shared) {
            Ok(id) => {
                cached += 1;
                rows.push(format!(
                    "{{\"code\":202,\"id\":{id},\"status\":\"done\",\"cached\":true}}"
                ));
                continue;
            }
            Err(payload) => payload,
        };
        if slots == 0 {
            busy += 1;
            shared.metrics.inc_rejected_busy();
            rows.push("{\"code\":429,\"status\":\"busy\",\"retry_after\":1}".to_string());
            continue;
        }
        match enqueue_one(payload, canonical, shared) {
            Enqueued::Queued(id) => {
                slots -= 1;
                accepted += 1;
                rows.push(format!("{{\"code\":202,\"id\":{id},\"status\":\"queued\"}}"));
            }
            Enqueued::Busy => {
                // The snapshot raced another submitter; same answer a
                // single submission would get.
                slots = 0;
                busy += 1;
                rows.push("{\"code\":429,\"status\":\"busy\",\"retry_after\":1}".to_string());
            }
            Enqueued::Closed => {
                rows.push("{\"code\":503,\"status\":\"shutting_down\"}".to_string());
            }
        }
    }
    let body = format!(
        "{{\"accepted\":{accepted},\"cached\":{cached},\"busy\":{busy},\"errors\":{errors},\
         \"items\":[{}]}}",
        rows.join(",")
    );
    plain(200, body)
}

fn status(id: u64, shared: &Shared) -> Routed {
    match shared.table.status_json(id) {
        Some(body) => plain(200, body),
        None => plain(404, "{\"error\":\"no such job\"}".to_string()),
    }
}

fn result(id: u64, shared: &Shared) -> Routed {
    match shared.table.result_json(id) {
        None => plain(404, "{\"error\":\"no such job\"}".to_string()),
        Some(Some(body)) => plain(200, body),
        Some(None) => {
            let state = shared
                .table
                .with(id, |r| r.state.as_str())
                .unwrap_or("unknown");
            plain(
                409,
                format!("{{\"error\":\"job has no result\",\"status\":{}}}", json_string(state)),
            )
        }
    }
}

fn cancel(id: u64, shared: &Shared) -> Routed {
    match shared.table.cancel(id) {
        Some(state) => plain(
            200,
            format!("{{\"id\":{id},\"status\":{}}}", json_string(state.as_str())),
        ),
        None => plain(404, "{\"error\":\"no such job\"}".to_string()),
    }
}

/// Samples the gauges both `/stats` and `/metrics` render from.
fn gauge_view(shared: &Shared) -> GaugeView {
    GaugeView {
        accepting: shared.accepting.load(Ordering::SeqCst),
        queue_len: shared.queue.len(),
        queue_capacity: shared.queue.capacity(),
        jobs: shared.table.counts(),
    }
}

fn stats(shared: &Shared) -> Routed {
    let g = gauge_view(shared);
    let c = g.jobs;
    let body = format!(
        "{{\"accepting\":{},\"queue_len\":{},\"queue_depth\":{},\"accepted\":{},\"rejected_busy\":{},\
         \"cache_hits\":{},\
         \"queued\":{},\"running\":{},\"done\":{},\"failed\":{},\"cancelled\":{},\"timed_out\":{},\"dropped\":{}}}",
        g.accepting,
        g.queue_len,
        g.queue_capacity,
        shared.metrics.accepted(),
        shared.metrics.rejected_busy(),
        shared.metrics.cache_hits(),
        c.queued,
        c.running,
        c.done,
        c.failed,
        c.cancelled,
        c.timed_out,
        c.dropped,
    );
    plain(200, body)
}

fn metrics(shared: &Shared) -> Routed {
    let body = shared.metrics.render(&gauge_view(shared));
    (
        200,
        "text/plain; version=0.0.4; charset=utf-8",
        Vec::new(),
        body,
    )
}

fn shutdown(req: &Request, shared: &Shared) -> Routed {
    let force = !req.body.trim().is_empty()
        && JsonValue::parse(&req.body)
            .ok()
            .as_ref()
            .and_then(|v| v.get("force"))
            .and_then(JsonValue::as_bool)
            .unwrap_or(false);
    initiate_shutdown(shared, force);
    let mode = if force { "aborting" } else { "draining" };
    plain(200, format!("{{\"status\":{}}}", json_string(mode)))
}
