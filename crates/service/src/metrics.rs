//! The lock-light metrics registry behind `GET /metrics` and `/stats`.
//!
//! Every counter and histogram bucket is a plain [`AtomicU64`]: recording
//! on the hot serving paths is a handful of relaxed atomic adds, and a
//! scrape only *reads* — it can never block submission, which the
//! concurrent-scrape integration test pins down. The one non-atomic
//! input, the jobs-by-state breakdown, is sampled from the job table at
//! render time and passed in as a [`GaugeView`].
//!
//! The exposition is the Prometheus text format, version 0.0.4: `# HELP`
//! / `# TYPE` comment lines, `_total` counters, and histograms with
//! cumulative `le` buckets whose `+Inf` bucket always equals `_count`.

use crate::jobs::JobCounts;
use std::sync::atomic::{AtomicU64, Ordering};

/// Request-latency histogram buckets: powers of two in µs. The last
/// finite bound is 2^28 µs ≈ 268 s, far beyond any sane request; longer
/// requests land only in `+Inf`.
const LATENCY_BUCKETS: usize = 28;

/// A fixed-bucket log2 latency histogram whose every field is atomic, so
/// observation and scraping are both lock-free.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: [const { AtomicU64::new(0) }; LATENCY_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Records one observation (µs).
    pub fn observe(&self, value_us: u64) {
        let idx = (63 - (value_us | 1).leading_zeros()) as usize;
        if idx < LATENCY_BUCKETS {
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        }
        // Values past the last finite bound appear only in `+Inf`
        // (count minus the finite buckets).
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value_us, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values, µs.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Appends the cumulative `_bucket`/`_sum`/`_count` sample lines for
    /// one labelled series.
    fn render_into(&self, out: &mut String, name: &str, label: &str) {
        use std::fmt::Write;
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            let le = 1u64 << (i + 1);
            let _ = writeln!(out, "{name}_bucket{{{label},le=\"{le}\"}} {cumulative}");
        }
        // `+Inf` must equal `_count` even while observations race the
        // scrape: read count once and reuse it for both lines.
        let count = self.count();
        let _ = writeln!(out, "{name}_bucket{{{label},le=\"+Inf\"}} {count}");
        let _ = writeln!(out, "{name}_sum{{{label}}} {}", self.sum());
        let _ = writeln!(out, "{name}_count{{{label}}} {count}");
    }
}

/// The endpoint classes the per-endpoint request histograms distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /jobs`
    Submit,
    /// `POST /jobs/batch`
    Batch,
    /// `GET /jobs/{id}`
    Status,
    /// `GET /jobs/{id}/result`
    Result,
    /// `DELETE /jobs/{id}`
    Cancel,
    /// `GET /stats`
    Stats,
    /// `GET /metrics`
    Metrics,
    /// `POST /shutdown`
    Shutdown,
    /// Anything else (404s, bad methods, unparsable requests).
    Other,
}

impl Endpoint {
    /// Number of endpoint classes.
    pub const COUNT: usize = 9;

    /// The `endpoint` label value.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Submit => "submit",
            Endpoint::Batch => "batch",
            Endpoint::Status => "status",
            Endpoint::Result => "result",
            Endpoint::Cancel => "cancel",
            Endpoint::Stats => "stats",
            Endpoint::Metrics => "metrics",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    /// Every class, in exposition order.
    pub const ALL: [Endpoint; Endpoint::COUNT] = [
        Endpoint::Submit,
        Endpoint::Batch,
        Endpoint::Status,
        Endpoint::Result,
        Endpoint::Cancel,
        Endpoint::Stats,
        Endpoint::Metrics,
        Endpoint::Shutdown,
        Endpoint::Other,
    ];

    /// Classifies a request by method and path.
    pub fn classify(method: &str, path: &str) -> Endpoint {
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        match (method, segments.as_slice()) {
            ("POST", ["jobs"]) => Endpoint::Submit,
            ("POST", ["jobs", "batch"]) => Endpoint::Batch,
            ("GET", ["jobs", _]) => Endpoint::Status,
            ("GET", ["jobs", _, "result"]) => Endpoint::Result,
            ("DELETE", ["jobs", _]) => Endpoint::Cancel,
            ("GET", ["stats"]) => Endpoint::Stats,
            ("GET", ["metrics"]) => Endpoint::Metrics,
            ("POST", ["shutdown"]) => Endpoint::Shutdown,
            _ => Endpoint::Other,
        }
    }
}

/// Point-in-time gauge values sampled by the caller at render time (the
/// registry owns only monotone counters and histograms).
#[derive(Debug, Clone, Copy)]
pub struct GaugeView {
    /// Whether `POST /jobs` is currently accepted.
    pub accepting: bool,
    /// Jobs waiting in the bounded queue.
    pub queue_len: usize,
    /// The queue's capacity.
    pub queue_capacity: usize,
    /// Jobs by lifecycle state.
    pub jobs: JobCounts,
}

/// All counters and histograms the service records; shared by `/metrics`
/// and `/stats` so the two views can never disagree about what happened.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    accepted: AtomicU64,
    rejected_busy: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    worker_busy_us: AtomicU64,
    request_latency: [AtomicHistogram; Endpoint::COUNT],
}

impl MetricsRegistry {
    /// One more job accepted with `202`.
    pub fn inc_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// One more submission refused with `429`.
    pub fn inc_rejected_busy(&self) {
        self.rejected_busy.fetch_add(1, Ordering::Relaxed);
    }

    /// One more submission answered straight from the result cache.
    pub fn inc_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// One more submission that consulted the cache and missed.
    pub fn inc_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds wall time a worker spent executing a job.
    pub fn add_worker_busy_us(&self, us: u64) {
        self.worker_busy_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Records one request's wall-clock latency.
    pub fn observe_request(&self, endpoint: Endpoint, us: u64) {
        self.request_latency[endpoint as usize].observe(us);
    }

    /// Jobs accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Submissions refused with `429` so far.
    pub fn rejected_busy(&self) -> u64 {
        self.rejected_busy.load(Ordering::Relaxed)
    }

    /// Cache-answered submissions so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Cache lookups that missed so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Total wall time workers spent executing jobs, µs.
    pub fn worker_busy_us(&self) -> u64 {
        self.worker_busy_us.load(Ordering::Relaxed)
    }

    /// The per-endpoint latency histogram (scrape-side reads for tests).
    pub fn request_latency(&self, endpoint: Endpoint) -> &AtomicHistogram {
        &self.request_latency[endpoint as usize]
    }

    /// Renders the whole registry plus the sampled gauges as Prometheus
    /// text exposition.
    pub fn render(&self, gauges: &GaugeView) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(4096);
        let gauge = |out: &mut String, name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };

        gauge(
            &mut out,
            "noc_accepting",
            "Whether POST /jobs is currently accepted (1) or draining (0).",
            u64::from(gauges.accepting),
        );
        gauge(
            &mut out,
            "noc_queue_len",
            "Jobs waiting in the bounded queue.",
            gauges.queue_len as u64,
        );
        gauge(
            &mut out,
            "noc_queue_capacity",
            "Capacity of the bounded queue.",
            gauges.queue_capacity as u64,
        );

        let _ = writeln!(out, "# HELP noc_jobs Jobs by lifecycle state.");
        let _ = writeln!(out, "# TYPE noc_jobs gauge");
        let c = gauges.jobs;
        for (state, value) in [
            ("queued", c.queued),
            ("running", c.running),
            ("done", c.done),
            ("failed", c.failed),
            ("cancelled", c.cancelled),
            ("timed_out", c.timed_out),
            ("dropped", c.dropped),
        ] {
            let _ = writeln!(out, "noc_jobs{{state=\"{state}\"}} {value}");
        }

        counter(
            &mut out,
            "noc_accepted_total",
            "Jobs accepted with 202.",
            self.accepted(),
        );
        counter(
            &mut out,
            "noc_rejected_busy_total",
            "Submissions refused with 429 (queue full).",
            self.rejected_busy(),
        );
        counter(
            &mut out,
            "noc_cache_hits_total",
            "Submissions answered straight from the result cache.",
            self.cache_hits(),
        );
        counter(
            &mut out,
            "noc_cache_misses_total",
            "Cache lookups that missed.",
            self.cache_misses(),
        );
        counter(
            &mut out,
            "noc_worker_busy_us_total",
            "Wall time workers spent executing jobs, in microseconds.",
            self.worker_busy_us(),
        );

        let _ = writeln!(
            out,
            "# HELP noc_request_duration_us Request wall-clock latency by endpoint, in microseconds."
        );
        let _ = writeln!(out, "# TYPE noc_request_duration_us histogram");
        for endpoint in Endpoint::ALL {
            let label = format!("endpoint=\"{}\"", endpoint.label());
            self.request_latency[endpoint as usize].render_into(
                &mut out,
                "noc_request_duration_us",
                &label,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> GaugeView {
        GaugeView {
            accepting: true,
            queue_len: 2,
            queue_capacity: 16,
            jobs: JobCounts {
                queued: 2,
                running: 1,
                done: 7,
                ..JobCounts::default()
            },
        }
    }

    #[test]
    fn endpoint_classification_matches_the_router() {
        assert_eq!(Endpoint::classify("POST", "/jobs"), Endpoint::Submit);
        assert_eq!(Endpoint::classify("GET", "/jobs/12"), Endpoint::Status);
        assert_eq!(Endpoint::classify("GET", "/jobs/12/result"), Endpoint::Result);
        assert_eq!(Endpoint::classify("DELETE", "/jobs/12"), Endpoint::Cancel);
        assert_eq!(Endpoint::classify("GET", "/stats"), Endpoint::Stats);
        assert_eq!(Endpoint::classify("GET", "/metrics"), Endpoint::Metrics);
        assert_eq!(Endpoint::classify("POST", "/shutdown"), Endpoint::Shutdown);
        assert_eq!(Endpoint::classify("GET", "/nope"), Endpoint::Other);
        assert_eq!(Endpoint::classify("PUT", "/jobs"), Endpoint::Other);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_inf_equals_count() {
        let h = AtomicHistogram::default();
        for us in [1, 3, 3, 100, 5_000_000_000] {
            h.observe(us);
        }
        assert_eq!(h.count(), 5);
        let mut out = String::new();
        h.render_into(&mut out, "m", "endpoint=\"x\"");
        let mut last = 0u64;
        let mut inf = None;
        for line in out.lines() {
            if let Some(rest) = line.strip_prefix("m_bucket{endpoint=\"x\",le=\"") {
                let (le, val) = rest.split_once("\"} ").unwrap();
                let v: u64 = val.parse().unwrap();
                assert!(v >= last, "cumulative buckets must be monotone: {line}");
                last = v;
                if le == "+Inf" {
                    inf = Some(v);
                }
            }
        }
        assert_eq!(inf, Some(5), "+Inf bucket equals _count");
        // The 5000-second outlier is beyond every finite bound.
        assert!(out.contains("le=\"268435456\"} 4"), "{out}");
        assert!(out.contains("m_count{endpoint=\"x\"} 5"), "{out}");
    }

    #[test]
    fn render_emits_help_type_and_all_series() {
        let reg = MetricsRegistry::default();
        reg.inc_accepted();
        reg.inc_cache_miss();
        reg.observe_request(Endpoint::Submit, 250);
        let text = reg.render(&view());
        for needle in [
            "# HELP noc_accepting",
            "# TYPE noc_accepting gauge",
            "noc_accepting 1",
            "noc_queue_len 2",
            "noc_queue_capacity 16",
            "noc_jobs{state=\"done\"} 7",
            "# TYPE noc_accepted_total counter",
            "noc_accepted_total 1",
            "noc_cache_misses_total 1",
            "# TYPE noc_request_duration_us histogram",
            "noc_request_duration_us_count{endpoint=\"submit\"} 1",
            "noc_request_duration_us_bucket{endpoint=\"submit\",le=\"+Inf\"} 1",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        // Every endpoint class appears even when empty.
        for e in Endpoint::ALL {
            let needle = format!("endpoint=\"{}\"", e.label());
            assert!(text.contains(&needle), "missing {needle}");
        }
    }
}
