//! The service's wall-clock boundary.
//!
//! The deterministic core must never read real time (the `no-wall-clock`
//! lint enforces it), but a server has obligations the simulation clock
//! cannot express: job timeouts, `Retry-After` hints, request-latency
//! accounting. Every real-time read in the serving layer goes through
//! this module so the boundary stays auditable — the engine itself only
//! ever sees an `AtomicBool` cancellation flag, set from here.

use std::time::{Duration, Instant};

/// The current instant.
pub fn now() -> Instant {
    // Results never depend on this read: timeouts only ever discard a run.
    // The analyzer allowlists this file as a sanctioned clock boundary.
    Instant::now()
}

/// Milliseconds elapsed since `start`, saturating.
pub fn millis_since(start: Instant) -> u64 {
    now().saturating_duration_since(start).as_millis() as u64
}

/// Microseconds elapsed since `start`, saturating — the resolution the
/// request-latency histograms and spans record at.
pub fn micros_since(start: Instant) -> u64 {
    u64::try_from(now().saturating_duration_since(start).as_micros()).unwrap_or(u64::MAX)
}

/// A deadline `timeout_ms` from now; `None` when `timeout_ms` is zero
/// (no timeout).
pub fn deadline_after(timeout_ms: u64) -> Option<Instant> {
    (timeout_ms > 0).then(|| now() + Duration::from_millis(timeout_ms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlines_and_elapsed() {
        assert!(deadline_after(0).is_none());
        let d = deadline_after(10_000).expect("nonzero timeout has a deadline");
        assert!(d > now());
        let m = millis_since(now());
        assert!(m < 1_000, "fresh instant elapsed {m} ms");
    }
}
