//! # noc-service — serving deterministic experiments over HTTP
//!
//! A dependency-free subsystem (only `std::net`) that turns the
//! `sensorwise` engine into a job service:
//!
//! * [`server`] — the HTTP/1.1 API: submit specs (`POST /jobs`), poll
//!   (`GET /jobs/{id}`), fetch results (`GET /jobs/{id}/result`), cancel
//!   (`DELETE /jobs/{id}`), observe (`GET /stats` as JSON, `GET /metrics`
//!   as Prometheus text exposition), and shut down (`POST /shutdown`),
//! * [`metrics`] — the lock-light [`MetricsRegistry`] both observation
//!   endpoints render from: atomic counters, per-endpoint request-latency
//!   histograms, worker busy time,
//! * [`queue`] — the bounded MPMC job queue; a full queue is surfaced to
//!   clients as `429` + `Retry-After`, never a blocked handler,
//! * [`jobs`] — the job table and lifecycle state machine; every accepted
//!   job ends in exactly one terminal state the shutdown report accounts
//!   for,
//! * [`http`] — minimal HTTP framing (`Content-Length`, one request per
//!   connection) shared by server and client,
//! * [`client`] — a blocking client with per-request latency accounting,
//! * [`clock`] — the serving layer's single wall-clock boundary.
//!
//! ## The determinism contract over the wire
//!
//! The server adds *scheduling* (queueing, worker assignment, timeouts)
//! but no *behaviour*: a job's result — including its event-stream
//! `trace_digest` — is bit-identical to running the same spec in-process
//! or through `nbti-noc run`, for any `--workers` and any interleaving of
//! submissions. Wall-clock time can only ever discard a run (timeout or
//! cancellation), never alter one.

#![deny(missing_debug_implementations)]
#![warn(
    clippy::semicolon_if_nothing_returned,
    clippy::explicit_iter_loop,
    clippy::redundant_closure_for_method_calls,
    clippy::manual_let_else
)]

pub mod client;
pub mod clock;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod queue;
pub mod server;

pub use client::{deterministic_backoff_ms, JobStatus, ServiceClient, Submitted};
pub use jobs::{JobCounts, JobId, JobState};
pub use metrics::{Endpoint, GaugeView, MetricsRegistry};
pub use queue::{BoundedQueue, PushError};
pub use server::{Server, ServiceConfig, ShutdownReport};
