//! The job table: every accepted experiment, from submission to terminal
//! state.
//!
//! State machine (terminal states in caps):
//!
//! ```text
//! queued ──▶ running ──▶ DONE
//!   │           ├──────▶ FAILED      (job panicked; worker survives)
//!   │           ├──────▶ TIMED_OUT   (supervisor hit the deadline)
//!   │           └──────▶ CANCELLED   (DELETE while running)
//!   ├──────────────────▶ CANCELLED   (DELETE while queued)
//!   └──────────────────▶ DROPPED     (force shutdown before execution)
//! ```
//!
//! An accepted job (`202`) reaches a terminal state in every code path —
//! graceful shutdown drains `queued`/`running` to completion, and only a
//! *force* shutdown may produce `DROPPED`, which the shutdown report
//! counts explicitly.

use crate::clock;
use sensorwise::codec::json_string;
use sensorwise::{ExperimentJob, WireEpochRequest};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// A job identifier, unique within one server instance.
pub type JobId = u64;

/// Lifecycle state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting in the queue.
    Queued,
    /// Claimed by a worker; the experiment is executing.
    Running,
    /// Completed; the result JSON is available.
    Done,
    /// The experiment panicked; `error` holds the message.
    Failed,
    /// Cancelled by `DELETE /jobs/{id}`.
    Cancelled,
    /// Aborted by the per-job wall-clock timeout.
    TimedOut,
    /// Discarded before execution by a force shutdown.
    Dropped,
}

impl JobState {
    /// Whether the state is terminal (no further transitions).
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }

    /// The wire name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed_out",
            JobState::Dropped => "dropped",
        }
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What an accepted job runs: the serving layer executes standalone
/// experiments and — for the distributed campaign plane — single campaign
/// epochs shipped as [`WireEpochRequest`]s. Both are fully described by
/// their canonical spec JSON, so the cache and accounting paths are
/// identical.
#[derive(Debug, Clone)]
pub enum JobPayload {
    /// A standalone experiment spec.
    Experiment(Box<ExperimentJob>),
    /// One campaign epoch (resume snapshot + aged voltages included).
    Epoch(Box<WireEpochRequest>),
}

/// One tracked job.
#[derive(Debug)]
pub struct JobRecord {
    /// The job id.
    pub id: JobId,
    /// The decoded, runnable payload.
    pub job: JobPayload,
    /// Canonical spec JSON (re-encoded from the decoded job).
    pub spec_json: String,
    /// Current state.
    pub state: JobState,
    /// The result JSON, present once `Done`.
    pub result_json: Option<String>,
    /// The event-stream digest, present once `Done` and the spec traced.
    pub trace_digest: Option<u64>,
    /// Failure detail for `Failed`.
    pub error: Option<String>,
    /// Cancellation flag polled by the engine (cancel *and* timeout).
    pub cancel: Arc<AtomicBool>,
    /// Set (before `cancel`) when the abort came from the deadline
    /// supervisor, so the worker can tell `TimedOut` from `Cancelled`.
    pub timed_out: Arc<AtomicBool>,
    /// Wall-clock deadline, set when the job starts running.
    pub deadline: Option<Instant>,
    /// When the submission was accepted — the job span's start.
    pub submitted_at: Instant,
}

/// Aggregate terminal-state counts (the shutdown report's core).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCounts {
    /// Jobs still waiting in the queue.
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs completed with a result.
    pub done: u64,
    /// Jobs that panicked.
    pub failed: u64,
    /// Jobs cancelled by the client.
    pub cancelled: u64,
    /// Jobs aborted by the timeout supervisor.
    pub timed_out: u64,
    /// Jobs dropped by a force shutdown.
    pub dropped: u64,
}

/// The concurrent job table.
#[derive(Debug, Default)]
pub struct JobTable {
    jobs: Mutex<BTreeMap<JobId, JobRecord>>,
    next_id: AtomicU64,
}

impl JobTable {
    fn lock(&self) -> MutexGuard<'_, BTreeMap<JobId, JobRecord>> {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a new queued job and returns its id.
    pub fn insert(&self, job: JobPayload, spec_json: String) -> JobId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let record = JobRecord {
            id,
            job,
            spec_json,
            state: JobState::Queued,
            result_json: None,
            trace_digest: None,
            error: None,
            cancel: Arc::new(AtomicBool::new(false)),
            timed_out: Arc::new(AtomicBool::new(false)),
            deadline: None,
            submitted_at: clock::now(),
        };
        self.lock().insert(id, record);
        id
    }

    /// Removes a job that never made it into the queue (submission raced
    /// a full queue): the id disappears as if never assigned.
    pub fn forget(&self, id: JobId) {
        self.lock().remove(&id);
    }

    /// Runs `f` on the job record, or `None` for unknown ids.
    pub fn with<R>(&self, id: JobId, f: impl FnOnce(&mut JobRecord) -> R) -> Option<R> {
        self.lock().get_mut(&id).map(f)
    }

    /// Claims a queued job for a worker: transitions to `Running`, arms
    /// the deadline, and hands back what the worker needs. `None` when the
    /// job is no longer `Queued` (cancelled or dropped while waiting).
    pub fn claim(
        &self,
        id: JobId,
        timeout_ms: u64,
    ) -> Option<(JobPayload, Arc<AtomicBool>, Arc<AtomicBool>)> {
        let mut jobs = self.lock();
        let record = jobs.get_mut(&id)?;
        if record.state != JobState::Queued {
            return None;
        }
        record.state = JobState::Running;
        record.deadline = clock::deadline_after(timeout_ms);
        Some((
            record.job.clone(),
            Arc::clone(&record.cancel),
            Arc::clone(&record.timed_out),
        ))
    }

    /// Finishes a running job with its terminal state.
    pub fn finish(
        &self,
        id: JobId,
        state: JobState,
        result_json: Option<String>,
        trace_digest: Option<u64>,
        error: Option<String>,
    ) {
        debug_assert!(state.is_terminal());
        if let Some(record) = self.lock().get_mut(&id) {
            record.state = state;
            record.result_json = result_json;
            record.trace_digest = trace_digest;
            record.error = error;
            record.deadline = None;
        }
    }

    /// Requests cancellation. Queued jobs transition immediately; running
    /// jobs get their flag set and transition when the engine observes it.
    /// Returns the state after the request, or `None` for unknown ids.
    pub fn cancel(&self, id: JobId) -> Option<JobState> {
        let mut jobs = self.lock();
        let record = jobs.get_mut(&id)?;
        match record.state {
            JobState::Queued => {
                record.state = JobState::Cancelled;
            }
            JobState::Running => {
                record.cancel.store(true, Ordering::Relaxed);
            }
            _ => {}
        }
        Some(record.state)
    }

    /// Supervisor sweep: aborts every running job whose deadline has
    /// passed. Returns how many were newly timed out.
    pub fn expire_deadlines(&self, now: Instant) -> u64 {
        let mut expired = 0;
        for record in self.lock().values_mut() {
            if record.state == JobState::Running
                && record.deadline.is_some_and(|d| now >= d)
                && !record.timed_out.swap(true, Ordering::Relaxed)
            {
                record.cancel.store(true, Ordering::Relaxed);
                expired += 1;
            }
        }
        expired
    }

    /// Force-shutdown sweep: drops every queued job and aborts every
    /// running one (counted as cancelled, not timed out).
    pub fn abort_all(&self) {
        for record in self.lock().values_mut() {
            match record.state {
                JobState::Queued => record.state = JobState::Dropped,
                JobState::Running => record.cancel.store(true, Ordering::Relaxed),
                _ => {}
            }
        }
    }

    /// Current per-state counts.
    pub fn counts(&self) -> JobCounts {
        let mut c = JobCounts::default();
        for record in self.lock().values() {
            match record.state {
                JobState::Queued => c.queued += 1,
                JobState::Running => c.running += 1,
                JobState::Done => c.done += 1,
                JobState::Failed => c.failed += 1,
                JobState::Cancelled => c.cancelled += 1,
                JobState::TimedOut => c.timed_out += 1,
                JobState::Dropped => c.dropped += 1,
            }
        }
        c
    }

    /// The status JSON for `GET /jobs/{id}`, or `None` for unknown ids.
    pub fn status_json(&self, id: JobId) -> Option<String> {
        self.lock().get(&id).map(|record| {
            let mut out = format!(
                "{{\"id\":{},\"status\":{}",
                record.id,
                json_string(record.state.as_str())
            );
            match record.trace_digest {
                Some(d) => out.push_str(&format!(",\"trace_digest\":\"{d:016x}\"")),
                None => out.push_str(",\"trace_digest\":null"),
            }
            match &record.error {
                Some(e) => out.push_str(&format!(",\"error\":{}", json_string(e))),
                None => out.push_str(",\"error\":null"),
            }
            out.push('}');
            out
        })
    }

    /// The result JSON of a job, when it is `Done`.
    pub fn result_json(&self, id: JobId) -> Option<Option<String>> {
        self.lock()
            .get(&id)
            .map(|record| record.result_json.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorwise::experiment::SyntheticScenario;
    use sensorwise::PolicyKind;

    fn job() -> JobPayload {
        JobPayload::Experiment(Box::new(
            SyntheticScenario {
                cores: 4,
                vcs: 2,
                injection_rate: 0.1,
            }
            .job(PolicyKind::SensorWise, 100, 1_000),
        ))
    }

    #[test]
    fn lifecycle_queued_running_done() {
        let table = JobTable::default();
        let id = table.insert(job(), "{}".to_string());
        assert_eq!(id, 1);
        assert!(table.status_json(id).unwrap().contains("\"queued\""));
        let (j, cancel, _) = table.claim(id, 0).expect("queued job claims");
        assert!(!cancel.load(Ordering::Relaxed));
        match j {
            JobPayload::Experiment(j) => assert_eq!(j.cfg.measure_cycles, 1_000),
            JobPayload::Epoch(_) => panic!("expected an experiment payload"),
        }
        assert!(table.claim(id, 0).is_none(), "cannot claim twice");
        table.finish(id, JobState::Done, Some("{}".to_string()), Some(7), None);
        let status = table.status_json(id).unwrap();
        assert!(status.contains("\"done\""), "{status}");
        assert!(status.contains("0000000000000007"), "{status}");
        assert_eq!(table.result_json(id), Some(Some("{}".to_string())));
        assert_eq!(table.counts().done, 1);
    }

    #[test]
    fn cancel_queued_is_immediate_and_running_sets_the_flag() {
        let table = JobTable::default();
        let a = table.insert(job(), String::new());
        assert_eq!(table.cancel(a), Some(JobState::Cancelled));
        assert!(table.claim(a, 0).is_none(), "cancelled jobs never run");

        let b = table.insert(job(), String::new());
        let (_, cancel, timed_out) = table.claim(b, 0).unwrap();
        assert_eq!(table.cancel(b), Some(JobState::Running));
        assert!(cancel.load(Ordering::Relaxed));
        assert!(!timed_out.load(Ordering::Relaxed));
        assert_eq!(table.cancel(999), None);
    }

    #[test]
    fn deadlines_expire_only_running_jobs() {
        let table = JobTable::default();
        let id = table.insert(job(), String::new());
        assert_eq!(table.expire_deadlines(clock::now()), 0, "queued: no deadline");
        let (_, cancel, timed_out) = table.claim(id, 5).unwrap();
        // A deadline 5 ms out has surely passed one second in the future.
        let later = clock::now() + std::time::Duration::from_secs(1);
        assert_eq!(table.expire_deadlines(later), 1);
        assert!(cancel.load(Ordering::Relaxed));
        assert!(timed_out.load(Ordering::Relaxed));
        assert_eq!(table.expire_deadlines(later), 0, "expiry reported once");
    }

    #[test]
    fn abort_all_drops_queued_and_cancels_running() {
        let table = JobTable::default();
        let q = table.insert(job(), String::new());
        let r = table.insert(job(), String::new());
        let (_, cancel, _) = table.claim(r, 0).unwrap();
        table.abort_all();
        assert!(table.status_json(q).unwrap().contains("\"dropped\""));
        assert!(cancel.load(Ordering::Relaxed));
        let c = table.counts();
        assert_eq!((c.dropped, c.running), (1, 1));
    }
}
