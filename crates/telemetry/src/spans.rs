//! Request→job→experiment→epoch spans and the bounded flight recorder.
//!
//! A [`Span`] records one timed unit of serving or simulation work:
//! wall-clock start (µs since some process-local origin) and duration,
//! a [`SpanKind`], a human name, and a *derived* id. Ids are an FNV-1a-64
//! hash of `(kind, name, parent)` — no randomness, no clock component —
//! so any layer that knows the logical coordinates of a span can
//! re-derive its id and attach children to it without threading handles
//! through the call stack. Two runs of the same workload produce the
//! same id graph; only `start_us`/`dur_us` differ.
//!
//! Spans are encoded one-per-line as JSONL (same discipline as trace
//! events) and normally buffered in a [`FlightRecorder`]: a bounded ring
//! that keeps the most recent spans and is dumped as a whole on worker
//! failure, timeout, or shutdown — observability for the flight that
//! just crashed, at a fixed memory cost.
//!
//! All timestamps come from [`profclock`](crate::profclock); nothing in
//! this module may influence simulated behaviour.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

use crate::event::{field_str, field_u64, ParseError};

/// What layer of the stack a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// One HTTP request handled by the service.
    Request,
    /// One job's life from acceptance to terminal state.
    Job,
    /// One simulator experiment executed by a worker.
    Experiment,
    /// One campaign epoch.
    Epoch,
    /// One remote dispatch attempt: submit → serve → result fetch.
    Dispatch,
    /// One epoch integration step: ledger aging + checkpoint bookkeeping
    /// after an epoch outcome arrives.
    Integrate,
}

impl SpanKind {
    /// The compact JSONL tag.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Job => "job",
            SpanKind::Experiment => "experiment",
            SpanKind::Epoch => "epoch",
            SpanKind::Dispatch => "dispatch",
            SpanKind::Integrate => "integrate",
        }
    }

    fn parse(tag: &str) -> Result<Self, ParseError> {
        Ok(match tag {
            "request" => SpanKind::Request,
            "job" => SpanKind::Job,
            "experiment" => SpanKind::Experiment,
            "epoch" => SpanKind::Epoch,
            "dispatch" => SpanKind::Dispatch,
            "integrate" => SpanKind::Integrate,
            other => return Err(ParseError::new(format!("unknown span kind `{other}`"))),
        })
    }
}

/// Reserved parent id meaning "root span".
pub const NO_PARENT: u64 = 0;

/// Derives the id of the span with the given logical coordinates.
///
/// FNV-1a-64 over `tag ++ 0x00 ++ name ++ 0x00 ++ parent_le`. The result
/// 0 is reserved for [`NO_PARENT`], so a (vanishingly unlikely) zero hash
/// is remapped to a fixed odd constant.
#[must_use]
pub fn derive_id(kind: SpanKind, name: &str, parent: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(kind.tag().as_bytes());
    eat(&[0]);
    eat(name.as_bytes());
    eat(&[0]);
    eat(&parent.to_le_bytes());
    if h == 0 {
        0x9e37_79b9_7f4a_7c15
    } else {
        h
    }
}

/// One timed unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Derived id (see [`derive_id`]).
    pub id: u64,
    /// Parent span id, or [`NO_PARENT`].
    pub parent: u64,
    /// Layer.
    pub kind: SpanKind,
    /// Human-readable name, e.g. `"POST /jobs"` or `"epoch-3"`.
    pub name: String,
    /// Start, µs since the emitting process's origin instant.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
}

impl Span {
    /// Builds a span, deriving its id from `(kind, name, parent)`.
    #[must_use]
    pub fn new(kind: SpanKind, name: &str, parent: u64, start_us: u64, dur_us: u64) -> Self {
        Span {
            id: derive_id(kind, name, parent),
            parent,
            kind,
            name: name.to_string(),
            start_us,
            dur_us,
        }
    }

    /// Appends the span's JSONL line (including `\n`) to `out`.
    pub fn write_jsonl(&self, out: &mut String) {
        use fmt::Write;
        let _ = writeln!(
            out,
            "{{\"k\":\"{}\",\"id\":\"{:016x}\",\"par\":\"{:016x}\",\"name\":\"{}\",\
             \"start_us\":{},\"dur_us\":{}}}",
            self.kind.tag(),
            self.id,
            self.parent,
            self.name,
            self.start_us,
            self.dur_us
        );
    }

    /// Parses one JSONL line produced by [`Span::write_jsonl`].
    pub fn parse_jsonl(line: &str) -> Result<Self, ParseError> {
        let hex = |key: &str| -> Result<u64, ParseError> {
            let raw = field_str(line, key)?;
            u64::from_str_radix(raw, 16)
                .map_err(|_| ParseError::new(format!("bad hex id in `{key}`")))
        };
        Ok(Span {
            id: hex("id")?,
            parent: hex("par")?,
            kind: SpanKind::parse(field_str(line, "k")?)?,
            name: field_str(line, "name")?.to_string(),
            start_us: field_u64(line, "start_us")?,
            dur_us: field_u64(line, "dur_us")?,
        })
    }
}

/// Parses a whole span JSONL document (one span per non-empty line).
pub fn read_spans_jsonl(text: &str) -> Result<Vec<Span>, ParseError> {
    let mut spans = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        spans.push(
            Span::parse_jsonl(line).map_err(|e| ParseError::new(format!("line {}: {e}", i + 1)))?,
        );
    }
    Ok(spans)
}

/// A bounded, thread-safe ring of the most recent spans.
///
/// Recording under load is one short mutex hold (the serving layer's
/// spans are per-request, not per-cycle, so a mutex is cheap here);
/// `drain` takes everything oldest-first for a crash or shutdown dump.
/// When the ring is full the oldest span is dropped — the recorder
/// favours the end of the flight, like a cockpit recorder.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<Span>>,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` spans (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Span>> {
        // A panicked holder can only have left a fully-formed ring.
        match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Appends a span, evicting the oldest if the ring is full.
    pub fn record(&self, span: Span) {
        let mut ring = self.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(span);
    }

    /// Spans currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Takes every held span, oldest first, leaving the ring empty.
    #[must_use]
    pub fn drain(&self) -> Vec<Span> {
        self.lock().drain(..).collect()
    }

    /// Renders every held span as JSONL without draining, oldest first.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in self.lock().iter() {
            span.write_jsonl(&mut out);
        }
        out
    }
}

/// A span collector for front ends that time work against one process
/// anchor: the distributed campaign driver records dispatch attempts and
/// integration steps here, then drains them into its spans sidecar.
///
/// All timestamps come from [`profclock`](crate::profclock) relative to
/// the anchor taken at construction, so the log never touches the clock
/// boundary itself and can live in determinism-audited crates.
#[derive(Debug)]
pub struct SpanLog {
    anchor: std::time::Instant,
    spans: Mutex<Vec<Span>>,
}

impl Default for SpanLog {
    fn default() -> Self {
        SpanLog::new()
    }
}

impl SpanLog {
    /// A new log anchored at "now".
    #[must_use]
    pub fn new() -> Self {
        SpanLog {
            anchor: crate::profclock::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds since the log's anchor — use as `start_us` for spans
    /// recorded here.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        crate::profclock::us_since(self.anchor)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Span>> {
        match self.spans.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Records a span that started at `start_us` (from [`SpanLog::now_us`])
    /// and just ended; returns its derived id so children can link to it.
    pub fn record(&self, kind: SpanKind, name: &str, parent: u64, start_us: u64) -> u64 {
        let dur_us = self.now_us().saturating_sub(start_us);
        let span = Span::new(kind, name, parent, start_us, dur_us);
        let id = span.id;
        self.lock().push(span);
        id
    }

    /// Takes every recorded span in record order, leaving the log empty.
    #[must_use]
    pub fn drain(&self) -> Vec<Span> {
        std::mem::take(&mut *self.lock())
    }

    /// Number of spans currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ids_are_stable_and_linkable() {
        let req = derive_id(SpanKind::Request, "POST /jobs", NO_PARENT);
        assert_ne!(req, NO_PARENT);
        assert_eq!(req, derive_id(SpanKind::Request, "POST /jobs", NO_PARENT));
        let job = derive_id(SpanKind::Job, "job-1", req);
        assert_ne!(job, req);
        // A child derived independently elsewhere links to the same parent.
        let span = Span::new(SpanKind::Job, "job-1", req, 10, 20);
        assert_eq!(span.id, job);
        assert_eq!(span.parent, req);
    }

    #[test]
    fn jsonl_round_trips() {
        let spans = vec![
            Span::new(SpanKind::Request, "POST /jobs", NO_PARENT, 5, 1200),
            Span::new(SpanKind::Epoch, "epoch-0", NO_PARENT, 0, 900_000),
        ];
        let mut text = String::new();
        for s in &spans {
            s.write_jsonl(&mut text);
        }
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"k\":\"request\""), "{text}");
        let back = read_spans_jsonl(&text).unwrap();
        assert_eq!(back, spans);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Span::parse_jsonl("{\"k\":\"warp\"}").is_err());
        assert!(read_spans_jsonl("{\"k\":\"job\",\"id\":\"zz\"}").is_err());
    }

    #[test]
    fn flight_recorder_bounds_and_drains_in_order() {
        let rec = FlightRecorder::new(3);
        assert!(rec.is_empty());
        for i in 0..5u64 {
            rec.record(Span::new(SpanKind::Request, &format!("r{i}"), NO_PARENT, i, 1));
        }
        assert_eq!(rec.len(), 3);
        let jsonl = rec.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3, "to_jsonl does not drain");
        let spans = rec.drain();
        assert!(rec.is_empty());
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["r2", "r3", "r4"], "oldest evicted, order kept");
    }
}
