//! Typed trace events and their JSONL encoding.
//!
//! Events are the paper's observable protocol actions: power-gating
//! transitions, the `Up_Down` / `Down_Up` control-link payloads
//! (Algorithms 1 and 2), VC-allocation grants, flit movement at the NICs,
//! packet completions, and runtime invariant violations.
//!
//! The JSONL encoding is one object per line with short, fixed keys
//! (`{"c":5,"t":"gate_on","port":"r0-E","vc":1}`); the parser accepts keys
//! in any order. [`TraceEvent`] round-trips exactly: `parse(write(ev)) ==
//! ev`, and the [digest](crate::digest::EventDigest) of a parsed stream
//! equals the digest recorded while emitting it.

use std::fmt;

/// A buffer-port address, decoupled from the simulator's own `PortId`.
///
/// `kind` values `0..=4` are router input ports by direction index
/// (N, S, E, W, Local); [`PortCode::EJECT`] is the NIC ejection port. The
/// `Display` form matches the simulator's (`r2-W`, `r1-eject`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortCode {
    /// Tile index hosting the buffers.
    pub node: u32,
    /// Port kind: a direction index in `0..=4`, or [`PortCode::EJECT`].
    pub kind: u8,
}

impl PortCode {
    /// `kind` value of the NIC ejection port.
    pub const EJECT: u8 = 5;

    const DIR_LETTERS: [&'static str; 5] = ["N", "S", "E", "W", "L"];

    /// A router input port addressed by direction index (`0..=4`).
    pub const fn router_input(node: u32, dir_index: u8) -> Self {
        PortCode {
            node,
            kind: dir_index,
        }
    }

    /// The NIC ejection port of a tile.
    pub const fn nic_eject(node: u32) -> Self {
        PortCode {
            node,
            kind: PortCode::EJECT,
        }
    }

    /// Parses the `Display` form (`r2-W`, `r1-eject`).
    pub fn parse(s: &str) -> Result<Self, ParseError> {
        let bad = || ParseError::new(format!("bad port `{s}`"));
        let rest = s.strip_prefix('r').ok_or_else(bad)?;
        let (node, kind) = rest.split_once('-').ok_or_else(bad)?;
        let node: u32 = node.parse().map_err(|_| bad())?;
        if kind == "eject" {
            return Ok(PortCode::nic_eject(node));
        }
        let dir = PortCode::DIR_LETTERS
            .iter()
            .position(|&l| l == kind)
            .ok_or_else(bad)?;
        Ok(PortCode::router_input(node, dir as u8))
    }
}

impl fmt::Display for PortCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.kind == PortCode::EJECT {
            write!(f, "r{}-eject", self.node)
        } else {
            write!(
                f,
                "r{}-{}",
                self.node,
                PortCode::DIR_LETTERS[self.kind as usize]
            )
        }
    }
}

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A power-gated VC buffer was switched back on (`Up_Down` effect).
    GateOn {
        /// The buffer port.
        port: PortCode,
        /// The VC that woke.
        vc: u8,
    },
    /// An idle VC buffer was power-gated off (NBTI recovery begins).
    GateOff {
        /// The buffer port.
        port: PortCode,
        /// The VC that was gated.
        vc: u8,
    },
    /// The `Up_Down` link payload changed: a new designation mask for the
    /// port's idle VCs (emitted on change only, not every cycle).
    UpDown {
        /// The buffer port.
        port: PortCode,
        /// The paper's `enable` bit: `false` means *gate every idle VC*.
        enable: bool,
        /// Bit `v` keeps VC `v` idle-on (the designated set).
        mask: u32,
    },
    /// The `Down_Up` link payload changed: the sensors elected a new most
    /// degraded VC for this port.
    DownUp {
        /// The buffer port.
        port: PortCode,
        /// The elected most-degraded VC.
        md_vc: u8,
    },
    /// The VA stage granted an output VC to a waiting head flit.
    VaGrant {
        /// Router node.
        node: u32,
        /// Input port index of the waiting head.
        in_port: u8,
        /// Input VC of the waiting head.
        vc: u8,
        /// Granted output port index.
        out_port: u8,
        /// Granted output VC.
        out_vc: u8,
    },
    /// A NIC streamed one flit into its router (the BW-side entry point).
    FlitInject {
        /// Source tile.
        node: u32,
        /// Packet id.
        packet: u64,
        /// The injection VC.
        vc: u8,
    },
    /// A NIC drained one flit from its ejection buffers.
    FlitEject {
        /// Destination tile.
        node: u32,
        /// Packet id.
        packet: u64,
        /// The ejection VC.
        vc: u8,
    },
    /// A packet fully ejected; `latency` is end-to-end in cycles, queuing
    /// included.
    PacketDone {
        /// Destination tile.
        node: u32,
        /// Packet id.
        packet: u64,
        /// End-to-end latency in cycles.
        latency: u64,
    },
    /// The runtime invariant checker recorded a violation of this kind
    /// (kebab-case id, e.g. `gating-safety`).
    Violation {
        /// The invariant's kebab-case identifier.
        kind: String,
    },
    /// A lifetime-campaign epoch completed at this cycle. `digest` is the
    /// epoch's own whole-stream [`EventDigest`](crate::digest::EventDigest)
    /// value; folding these boundary events into a campaign-level digest
    /// chains per-epoch streams into one resumable determinism witness.
    EpochEnd {
        /// Zero-based epoch index within the campaign.
        index: u32,
        /// The completed epoch's event-stream digest.
        digest: u64,
    },
}

impl EventKind {
    /// The event's `"t"` tag in the JSONL encoding.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::GateOn { .. } => "gate_on",
            EventKind::GateOff { .. } => "gate_off",
            EventKind::UpDown { .. } => "up_down",
            EventKind::DownUp { .. } => "down_up",
            EventKind::VaGrant { .. } => "va",
            EventKind::FlitInject { .. } => "inject",
            EventKind::FlitEject { .. } => "eject",
            EventKind::PacketDone { .. } => "done",
            EventKind::Violation { .. } => "violation",
            EventKind::EpochEnd { .. } => "epoch",
        }
    }

    /// Every tag, in canonical (digest tag-byte) order.
    pub const TAGS: [&'static str; 10] = [
        "gate_on",
        "gate_off",
        "up_down",
        "down_up",
        "va",
        "inject",
        "eject",
        "done",
        "violation",
        "epoch",
    ];
}

/// One timestamped event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The simulated cycle the event happened in.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Appends the one-line JSONL encoding (newline included) to `out`.
    pub fn write_jsonl(&self, out: &mut String) {
        use fmt::Write;
        let c = self.cycle;
        let t = self.kind.tag();
        // Writing to a String cannot fail.
        let _ = match &self.kind {
            EventKind::GateOn { port, vc } | EventKind::GateOff { port, vc } => {
                write!(out, r#"{{"c":{c},"t":"{t}","port":"{port}","vc":{vc}}}"#)
            }
            EventKind::UpDown { port, enable, mask } => write!(
                out,
                r#"{{"c":{c},"t":"{t}","port":"{port}","en":{enable},"mask":{mask}}}"#
            ),
            EventKind::DownUp { port, md_vc } => {
                write!(out, r#"{{"c":{c},"t":"{t}","port":"{port}","md":{md_vc}}}"#)
            }
            EventKind::VaGrant {
                node,
                in_port,
                vc,
                out_port,
                out_vc,
            } => write!(
                out,
                r#"{{"c":{c},"t":"{t}","node":{node},"in":{in_port},"vc":{vc},"out":{out_port},"ovc":{out_vc}}}"#
            ),
            EventKind::FlitInject { node, packet, vc }
            | EventKind::FlitEject { node, packet, vc } => write!(
                out,
                r#"{{"c":{c},"t":"{t}","node":{node},"pkt":{packet},"vc":{vc}}}"#
            ),
            EventKind::PacketDone {
                node,
                packet,
                latency,
            } => write!(
                out,
                r#"{{"c":{c},"t":"{t}","node":{node},"pkt":{packet},"lat":{latency}}}"#
            ),
            EventKind::Violation { kind } => {
                write!(out, r#"{{"c":{c},"t":"{t}","kind":"{kind}"}}"#)
            }
            EventKind::EpochEnd { index, digest } => {
                write!(out, r#"{{"c":{c},"t":"{t}","idx":{index},"dg":"{digest:016x}"}}"#)
            }
        };
        out.push('\n');
    }

    /// The one-line JSONL encoding (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        self.write_jsonl(&mut s);
        s.pop();
        s
    }

    /// Parses one JSONL line back into an event. Keys may appear in any
    /// order; unknown keys are rejected implicitly by the missing-field
    /// checks.
    pub fn parse_jsonl(line: &str) -> Result<Self, ParseError> {
        let cycle = field_u64(line, "c")?;
        let tag = field_str(line, "t")?;
        let kind = match tag {
            "gate_on" => EventKind::GateOn {
                port: PortCode::parse(field_str(line, "port")?)?,
                vc: field_u64(line, "vc")? as u8,
            },
            "gate_off" => EventKind::GateOff {
                port: PortCode::parse(field_str(line, "port")?)?,
                vc: field_u64(line, "vc")? as u8,
            },
            "up_down" => EventKind::UpDown {
                port: PortCode::parse(field_str(line, "port")?)?,
                enable: field_bool(line, "en")?,
                mask: field_u64(line, "mask")? as u32,
            },
            "down_up" => EventKind::DownUp {
                port: PortCode::parse(field_str(line, "port")?)?,
                md_vc: field_u64(line, "md")? as u8,
            },
            "va" => EventKind::VaGrant {
                node: field_u64(line, "node")? as u32,
                in_port: field_u64(line, "in")? as u8,
                vc: field_u64(line, "vc")? as u8,
                out_port: field_u64(line, "out")? as u8,
                out_vc: field_u64(line, "ovc")? as u8,
            },
            "inject" => EventKind::FlitInject {
                node: field_u64(line, "node")? as u32,
                packet: field_u64(line, "pkt")?,
                vc: field_u64(line, "vc")? as u8,
            },
            "eject" => EventKind::FlitEject {
                node: field_u64(line, "node")? as u32,
                packet: field_u64(line, "pkt")?,
                vc: field_u64(line, "vc")? as u8,
            },
            "done" => EventKind::PacketDone {
                node: field_u64(line, "node")? as u32,
                packet: field_u64(line, "pkt")?,
                latency: field_u64(line, "lat")?,
            },
            "violation" => EventKind::Violation {
                kind: field_str(line, "kind")?.to_string(),
            },
            "epoch" => EventKind::EpochEnd {
                index: field_u64(line, "idx")? as u32,
                digest: {
                    let hex = field_str(line, "dg")?;
                    u64::from_str_radix(hex, 16)
                        .map_err(|_| ParseError::new(format!("bad digest hex `{hex}`")))?
                },
            },
            other => return Err(ParseError::new(format!("unknown event tag `{other}`"))),
        };
        Ok(TraceEvent { cycle, kind })
    }
}

/// Parses a whole JSONL document (one event per non-empty line).
pub fn read_jsonl(text: &str) -> Result<Vec<TraceEvent>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        events.push(
            TraceEvent::parse_jsonl(line)
                .map_err(|e| ParseError::new(format!("line {}: {e}", i + 1)))?,
        );
    }
    Ok(events)
}

/// A malformed trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    msg: String,
}

impl ParseError {
    pub(crate) fn new(msg: String) -> Self {
        ParseError { msg }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for ParseError {}

/// The raw text of `"key":` … up to the next `,` or `}` at top level.
/// Sufficient for this crate's own output: values are numbers, booleans,
/// or strings without escapes.
pub(crate) fn field_raw<'a>(line: &'a str, key: &str) -> Result<&'a str, ParseError> {
    let needle = format!("\"{key}\":");
    let start = line
        .find(&needle)
        .ok_or_else(|| ParseError::new(format!("missing field `{key}`")))?
        + needle.len();
    let rest = &line[start..];
    let end = if let Some(inner) = rest.strip_prefix('"') {
        inner
            .find('"')
            .map(|i| i + 2)
            .ok_or_else(|| ParseError::new(format!("unterminated string for `{key}`")))?
    } else {
        rest.find([',', '}'])
            .ok_or_else(|| ParseError::new(format!("unterminated value for `{key}`")))?
    };
    Ok(&rest[..end])
}

pub(crate) fn field_u64(line: &str, key: &str) -> Result<u64, ParseError> {
    field_raw(line, key)?
        .parse()
        .map_err(|_| ParseError::new(format!("field `{key}` is not an integer")))
}

fn field_bool(line: &str, key: &str) -> Result<bool, ParseError> {
    match field_raw(line, key)? {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(ParseError::new(format!("field `{key}` is not a boolean"))),
    }
}

pub(crate) fn field_str<'a>(line: &'a str, key: &str) -> Result<&'a str, ParseError> {
    let raw = field_raw(line, key)?;
    raw.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| ParseError::new(format!("field `{key}` is not a string")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cycle: 0,
                kind: EventKind::GateOn {
                    port: PortCode::router_input(0, 2),
                    vc: 1,
                },
            },
            TraceEvent {
                cycle: 7,
                kind: EventKind::GateOff {
                    port: PortCode::nic_eject(3),
                    vc: 0,
                },
            },
            TraceEvent {
                cycle: 8,
                kind: EventKind::UpDown {
                    port: PortCode::router_input(1, 4),
                    enable: true,
                    mask: 0b10,
                },
            },
            TraceEvent {
                cycle: 64,
                kind: EventKind::DownUp {
                    port: PortCode::router_input(2, 3),
                    md_vc: 3,
                },
            },
            TraceEvent {
                cycle: 9,
                kind: EventKind::VaGrant {
                    node: 5,
                    in_port: 3,
                    vc: 1,
                    out_port: 2,
                    out_vc: 0,
                },
            },
            TraceEvent {
                cycle: 10,
                kind: EventKind::FlitInject {
                    node: 0,
                    packet: 42,
                    vc: 1,
                },
            },
            TraceEvent {
                cycle: 21,
                kind: EventKind::FlitEject {
                    node: 3,
                    packet: 42,
                    vc: 0,
                },
            },
            TraceEvent {
                cycle: 22,
                kind: EventKind::PacketDone {
                    node: 3,
                    packet: 42,
                    latency: 12,
                },
            },
            TraceEvent {
                cycle: 23,
                kind: EventKind::Violation {
                    kind: "gating-safety".to_string(),
                },
            },
            TraceEvent {
                cycle: 5_000,
                kind: EventKind::EpochEnd {
                    index: 2,
                    digest: 0xdead_beef_cafe_f00d,
                },
            },
        ]
    }

    #[test]
    fn port_code_display_matches_simulator_naming() {
        assert_eq!(PortCode::router_input(2, 3).to_string(), "r2-W");
        assert_eq!(PortCode::router_input(0, 4).to_string(), "r0-L");
        assert_eq!(PortCode::nic_eject(1).to_string(), "r1-eject");
    }

    #[test]
    fn port_code_round_trips() {
        for p in [
            PortCode::router_input(0, 0),
            PortCode::router_input(15, 4),
            PortCode::nic_eject(7),
        ] {
            assert_eq!(PortCode::parse(&p.to_string()), Ok(p));
        }
        assert!(PortCode::parse("x2-W").is_err());
        assert!(PortCode::parse("r2-Q").is_err());
        assert!(PortCode::parse("r2").is_err());
    }

    #[test]
    fn every_event_round_trips_through_jsonl() {
        for ev in samples() {
            let line = ev.to_jsonl();
            let back = TraceEvent::parse_jsonl(&line)
                .unwrap_or_else(|e| panic!("parse failed on `{line}`: {e}"));
            assert_eq!(back, ev, "line `{line}`");
        }
    }

    #[test]
    fn parser_accepts_reordered_keys() {
        let ev = TraceEvent::parse_jsonl(r#"{"t":"inject","vc":1,"pkt":42,"node":0,"c":10}"#)
            .expect("reordered keys parse");
        assert_eq!(
            ev,
            TraceEvent {
                cycle: 10,
                kind: EventKind::FlitInject {
                    node: 0,
                    packet: 42,
                    vc: 1
                }
            }
        );
    }

    #[test]
    fn read_jsonl_skips_blank_lines_and_reports_line_numbers() {
        let mut doc = String::new();
        for ev in samples() {
            ev.write_jsonl(&mut doc);
            doc.push('\n'); // blank separator line
        }
        let events = read_jsonl(&doc).expect("well-formed document");
        assert_eq!(events, samples());
        let err = read_jsonl("{\"c\":1,\"t\":\"nope\"}\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn tags_cover_every_variant() {
        let seen: Vec<&str> = samples().iter().map(|e| e.kind.tag()).collect();
        assert_eq!(seen, EventKind::TAGS);
    }
}
