//! Per-cycle stage profiling: a zero-alloc log2-latency [`Histogram`] and
//! the [`StageProfiler`] that feeds it.
//!
//! The simulator's cycle methods take a `&mut impl Profiler` the same way
//! its emission sites take a [`TraceSink`](crate::sink::TraceSink):
//! [`Profiler::ENABLED`] is an associated `const`, every timing site is
//! guarded by `if P::ENABLED { ... }`, and the default [`NullProfiler`]
//! monomorphizes all of it away. A run with profiling off is the same
//! machine code — and therefore the same trace digest — as before the
//! profiler existed; a run with profiling *on* is also bit-identical in
//! results, because timings are observations that never feed back into
//! simulated state.
//!
//! Wall-clock reads for profiling go through
//! [`profclock`](crate::profclock), the sanctioned boundary the
//! `no-wall-clock` analyze rule knows about.

use std::fmt;

/// Number of log2 buckets: one per possible bit position of a `u64`.
const BUCKETS: usize = 64;

/// A fixed-bucket log2-latency histogram.
///
/// Bucket `i` counts values `v` with `floor(log2(max(v, 1))) == i`, i.e.
/// `[2^i, 2^(i+1))` (bucket 0 also holds 0). Recording is O(1), the type
/// never allocates, and quantile queries return the *upper bound* of the
/// bucket holding the requested observation — the same nearest-rank,
/// upper-bound convention the simulator's packet-latency histogram uses.
#[derive(Debug, Clone, Copy)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// The bucket index for `value`.
    #[inline]
    fn index(value: u64) -> usize {
        // `value | 1` maps 0 into bucket 0 without a branch.
        (63 - (value | 1).leading_zeros()) as usize
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Histogram::index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (nearest rank), or `None` when empty. `q` is clamped to `[0, 1]`.
    #[must_use]
    pub fn quantile_upper(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 });
            }
        }
        // count > 0 guarantees the walk returns inside the loop.
        None
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The raw per-bucket counts, index `i` covering `[2^i, 2^(i+1))`.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }
}

/// The per-cycle pipeline stages the profiler distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// The whole first half-cycle: credit absorption + buffer write + RC.
    BeginCycle,
    /// Route computation alone (a subset of `BeginCycle` time).
    Routing,
    /// VC allocation + switch allocation.
    Allocation,
    /// Switch and link traversal of SA winners.
    Traversal,
    /// The mid-cycle gating-controller slot (`port_view` + `decide` +
    /// `apply_gate`), timed by the experiment loop.
    Controller,
    /// The whole second half-cycle: VA/SA/traversal + NIC inject/eject.
    FinishCycle,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 6;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::BeginCycle,
        Stage::Routing,
        Stage::Allocation,
        Stage::Traversal,
        Stage::Controller,
        Stage::FinishCycle,
    ];

    /// The stage's fixed display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::BeginCycle => "begin_cycle",
            Stage::Routing => "routing",
            Stage::Allocation => "allocation",
            Stage::Traversal => "traversal",
            Stage::Controller => "controller",
            Stage::FinishCycle => "finish_cycle",
        }
    }
}

/// Receives per-cycle stage timings from the simulator.
///
/// Mirrors [`TraceSink`](crate::sink::TraceSink): implementors that
/// actually record keep [`Profiler::ENABLED`] at its default `true`; the
/// simulator skips every clock read when it is `false`.
pub trait Profiler {
    /// Whether timing sites should read the clock at all. `false`
    /// compiles profiling out of the cycle loop.
    const ENABLED: bool = true;

    /// Records one per-cycle duration for `stage`, in nanoseconds.
    fn record(&mut self, stage: Stage, ns: u64);
}

/// The do-nothing profiler: the default, compiled to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProfiler;

impl Profiler for NullProfiler {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _stage: Stage, _ns: u64) {}
}

/// A profiler keeping one log2 [`Histogram`] of per-cycle nanoseconds per
/// [`Stage`]. Fixed-size, allocation-free, `merge`-able across runs.
#[derive(Debug, Clone)]
pub struct StageProfiler {
    hists: [Histogram; Stage::COUNT],
}

impl Default for StageProfiler {
    fn default() -> Self {
        StageProfiler::new()
    }
}

impl StageProfiler {
    /// An empty profiler.
    #[must_use]
    pub const fn new() -> Self {
        StageProfiler {
            hists: [Histogram::new(); Stage::COUNT],
        }
    }

    /// The histogram for one stage.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.hists[stage as usize]
    }

    /// Folds another profiler's histograms into this one.
    pub fn merge(&mut self, other: &StageProfiler) {
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
    }

    /// The printable per-stage summary.
    #[must_use]
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            stages: Stage::ALL
                .iter()
                .map(|&s| {
                    let h = self.stage(s);
                    StageSummary {
                        stage: s,
                        count: h.count(),
                        p50_ns: h.quantile_upper(0.5).unwrap_or(0),
                        p95_ns: h.quantile_upper(0.95).unwrap_or(0),
                        p99_ns: h.quantile_upper(0.99).unwrap_or(0),
                        mean_ns: h.mean(),
                        total_ns: h.sum(),
                    }
                })
                .collect(),
        }
    }
}

impl Profiler for StageProfiler {
    #[inline]
    fn record(&mut self, stage: Stage, ns: u64) {
        self.hists[stage as usize].record(ns);
    }
}

/// One stage's latency summary, in nanoseconds per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSummary {
    /// The stage.
    pub stage: Stage,
    /// Cycles timed.
    pub count: u64,
    /// Nearest-rank p50 upper bound, ns.
    pub p50_ns: u64,
    /// Nearest-rank p95 upper bound, ns.
    pub p95_ns: u64,
    /// Nearest-rank p99 upper bound, ns.
    pub p99_ns: u64,
    /// Arithmetic mean, ns.
    pub mean_ns: u64,
    /// Total time in the stage, ns.
    pub total_ns: u64,
}

/// A per-stage latency report; `Display` renders the fixed-width table
/// `nbti-noc run --profile` and the `sim_throughput` bench print.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// One row per [`Stage`], in pipeline order.
    pub stages: Vec<StageSummary>,
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<13} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
            "stage", "cycles", "p50(ns)", "p95(ns)", "p99(ns)", "mean(ns)", "total(ms)"
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "{:<13} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10.2}",
                s.stage.name(),
                s.count,
                s.p50_ns,
                s.p95_ns,
                s.p99_ns,
                s.mean_ns,
                s.total_ns as f64 / 1e6
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Whether `P` reads the clock, observed through the generic the
    /// simulator actually branches on.
    fn enabled<P: Profiler>() -> bool {
        P::ENABLED
    }

    #[test]
    fn null_profiler_is_disabled() {
        assert!(!enabled::<NullProfiler>());
        assert!(enabled::<StageProfiler>());
        let mut p = NullProfiler;
        p.record(Stage::Routing, 123);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        let b = h.bucket_counts();
        assert_eq!(b[0], 2, "0 and 1");
        assert_eq!(b[1], 2, "2 and 3");
        assert_eq!(b[2], 2, "4 and 7");
        assert_eq!(b[3], 1, "8");
        assert_eq!(b[9], 1, "1023");
        assert_eq!(b[10], 1, "1024");
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 2072);
    }

    #[test]
    fn quantiles_return_bucket_upper_bounds() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile_upper(0.5), None, "empty");
        for _ in 0..99 {
            h.record(100); // bucket [64, 128)
        }
        h.record(100_000); // bucket [65536, 131072)
        assert_eq!(h.quantile_upper(0.5), Some(127));
        assert_eq!(h.quantile_upper(0.99), Some(127));
        assert_eq!(h.quantile_upper(1.0), Some(131_071));
        assert_eq!(h.mean(), (99 * 100 + 100_000) / 100);
    }

    #[test]
    fn extreme_values_stay_in_range() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_upper(1.0), Some(u64::MAX));
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 1010);
    }

    #[test]
    fn stage_profiler_report_covers_every_stage_in_order() {
        let mut p = StageProfiler::new();
        for (i, &s) in Stage::ALL.iter().enumerate() {
            p.record(s, (i as u64 + 1) * 100);
        }
        let report = p.report();
        assert_eq!(report.stages.len(), Stage::COUNT);
        for (row, &s) in report.stages.iter().zip(Stage::ALL.iter()) {
            assert_eq!(row.stage, s);
            assert_eq!(row.count, 1);
            assert!(row.p50_ns > 0);
        }
        let table = report.to_string();
        for s in Stage::ALL {
            assert!(table.contains(s.name()), "{table}");
        }
        assert!(table.contains("p99(ns)"), "{table}");
    }
}
