//! Columnar time-series metrics.
//!
//! A [`MetricsSeries`] holds periodic per-port samples in
//! structure-of-arrays form: one parallel `Vec` per column, rows appended
//! in (cycle, port) order by the sampler. Columns are the quantities the
//! runtime-adaptive literature (RACE; Brandalero et al.) samples per
//! epoch: duty %, buffer occupancy, gating churn, powered-VC count and the
//! projected ΔVth of the most degraded VC.

use std::fmt::Write;

/// One sample row (the argument of [`MetricsSeries::push`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// The cycle the sample was taken at (end of that cycle).
    pub cycle: u64,
    /// Index into [`MetricsSeries::port_names`].
    pub port: u32,
    /// Mean NBTI duty % across the port's VCs since measurement started.
    pub duty_percent: f64,
    /// Flits buffered in the port's VCs at sampling time.
    pub occupancy: u32,
    /// Power-gating transitions (on→off plus off→on) of the port's VCs
    /// since the previous sample.
    pub churn: u64,
    /// VCs powered at sampling time.
    pub powered_vcs: u32,
    /// Projected ten-year ΔVth of the port's most degraded VC, in mV,
    /// from the duty observed so far.
    pub delta_vth_mv: f64,
}

/// A compact columnar series of periodic per-port samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSeries {
    period: u64,
    port_names: Vec<String>,
    cycles: Vec<u64>,
    ports: Vec<u32>,
    duty_percent: Vec<f64>,
    occupancy: Vec<u32>,
    churn: Vec<u64>,
    powered_vcs: Vec<u32>,
    delta_vth_mv: Vec<f64>,
}

impl MetricsSeries {
    /// The CSV header emitted by [`MetricsSeries::to_csv`].
    pub const CSV_HEADER: &'static str =
        "cycle,port,duty_percent,occupancy,churn,powered_vcs,delta_vth_mv";

    /// An empty series sampling every `period` cycles over the named ports.
    pub fn new(period: u64, port_names: Vec<String>) -> Self {
        MetricsSeries {
            period,
            port_names,
            ..MetricsSeries::default()
        }
    }

    /// The sampling period in cycles.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The port names rows refer to by index.
    pub fn port_names(&self) -> &[String] {
        &self.port_names
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// `true` when no row was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Appends one sample row.
    ///
    /// # Panics
    ///
    /// Panics if the sample's port index is out of range.
    pub fn push(&mut self, s: Sample) {
        assert!(
            (s.port as usize) < self.port_names.len(),
            "port index {} out of range ({} ports)",
            s.port,
            self.port_names.len()
        );
        self.cycles.push(s.cycle);
        self.ports.push(s.port);
        self.duty_percent.push(s.duty_percent);
        self.occupancy.push(s.occupancy);
        self.churn.push(s.churn);
        self.powered_vcs.push(s.powered_vcs);
        self.delta_vth_mv.push(s.delta_vth_mv);
    }

    /// Row `i` reassembled from the columns.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> Sample {
        Sample {
            cycle: self.cycles[i],
            port: self.ports[i],
            duty_percent: self.duty_percent[i],
            occupancy: self.occupancy[i],
            churn: self.churn[i],
            powered_vcs: self.powered_vcs[i],
            delta_vth_mv: self.delta_vth_mv[i],
        }
    }

    /// The whole series as CSV (header + one line per row).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 * (self.len() + 1));
        out.push_str(MetricsSeries::CSV_HEADER);
        out.push('\n');
        for i in 0..self.len() {
            let s = self.row(i);
            // Writing to a String cannot fail.
            let _ = writeln!(
                out,
                "{},{},{:.4},{},{},{},{:.4}",
                s.cycle,
                self.port_names[s.port as usize],
                s.duty_percent,
                s.occupancy,
                s.churn,
                s.powered_vcs,
                s.delta_vth_mv
            );
        }
        out
    }

    /// The whole series as JSONL (one object per row).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(96 * self.len());
        for i in 0..self.len() {
            let s = self.row(i);
            let _ = writeln!(
                out,
                r#"{{"cycle":{},"port":"{}","duty_percent":{:.4},"occupancy":{},"churn":{},"powered_vcs":{},"delta_vth_mv":{:.4}}}"#,
                s.cycle,
                self.port_names[s.port as usize],
                s.duty_percent,
                s.occupancy,
                s.churn,
                s.powered_vcs,
                s.delta_vth_mv
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> MetricsSeries {
        let mut m = MetricsSeries::new(100, vec!["r0-E".to_string(), "r0-eject".to_string()]);
        m.push(Sample {
            cycle: 100,
            port: 0,
            duty_percent: 51.25,
            occupancy: 3,
            churn: 7,
            powered_vcs: 2,
            delta_vth_mv: 31.5,
        });
        m.push(Sample {
            cycle: 100,
            port: 1,
            duty_percent: 12.5,
            occupancy: 0,
            churn: 2,
            powered_vcs: 1,
            delta_vth_mv: 28.25,
        });
        m
    }

    #[test]
    fn push_and_row_round_trip() {
        let m = series();
        assert_eq!(m.len(), 2);
        assert_eq!(m.period(), 100);
        assert_eq!(m.row(1).port, 1);
        assert_eq!(m.row(0).churn, 7);
    }

    #[test]
    fn csv_has_header_and_port_names() {
        let csv = series().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], MetricsSeries::CSV_HEADER);
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("100,r0-E,51.2500,3,7,2,31.5000"), "{csv}");
        assert!(lines[2].contains("r0-eject"), "{csv}");
    }

    #[test]
    fn jsonl_emits_one_object_per_row() {
        let jsonl = series().to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(jsonl.contains(r#""port":"r0-eject""#), "{jsonl}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_port_panics() {
        let mut m = MetricsSeries::new(1, vec!["r0-E".to_string()]);
        m.push(Sample {
            cycle: 1,
            port: 1,
            duty_percent: 0.0,
            occupancy: 0,
            churn: 0,
            powered_vcs: 0,
            delta_vth_mv: 0.0,
        });
    }
}
