//! Trace sinks: where emitted events go.
//!
//! The simulator is generic over a [`TraceSink`] type parameter rather than
//! holding a `dyn` sink, so the default [`NullSink`] monomorphizes every
//! emission site away (see the crate docs for the zero-overhead contract).

use crate::digest::EventDigest;
use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::io::{self, Write};

/// Receives trace events from the simulator.
///
/// Implementors that actually record must keep [`TraceSink::ACTIVE`] at its
/// default `true`; the simulator skips event construction entirely when it
/// is `false`.
pub trait TraceSink {
    /// Whether emission sites should construct and deliver events at all.
    /// `false` compiles tracing out of the simulation loop.
    const ACTIVE: bool = true;

    /// Delivers one event.
    fn emit(&mut self, ev: TraceEvent);

    /// Takes the recorded log out of the sink, if it keeps one. Streaming
    /// and null sinks return `None`.
    fn harvest(&mut self) -> Option<EventLog> {
        None
    }
}

/// The do-nothing sink: the default, compiled to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ACTIVE: bool = false;

    #[inline(always)]
    fn emit(&mut self, _ev: TraceEvent) {}
}

/// The harvested outcome of a recording sink: the kept events (all of
/// them, or the last `capacity` under a ring limit), the total emitted
/// count, and the digest over the *whole* stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLog {
    /// The kept events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Total events emitted, including any evicted from the ring.
    pub total: u64,
    /// FNV-1a digest over every emitted event (see
    /// [`EventDigest`](crate::digest::EventDigest)).
    pub digest: u64,
}

/// An in-memory sink: a ring buffer of the most recent events plus a
/// rolling digest and total count over the whole stream.
#[derive(Debug, Clone, Default)]
pub struct RecordSink {
    capacity: usize,
    ring: VecDeque<TraceEvent>,
    total: u64,
    digest: EventDigest,
}

impl RecordSink {
    /// An unbounded recorder (keeps every event).
    pub fn unbounded() -> Self {
        RecordSink::with_capacity(0)
    }

    /// A recorder keeping the last `capacity` events (`0` = unbounded).
    /// The digest and total always cover the whole stream.
    pub fn with_capacity(capacity: usize) -> Self {
        RecordSink {
            capacity,
            ring: VecDeque::new(),
            total: 0,
            digest: EventDigest::new(),
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events emitted into this sink.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The rolling digest value over every emitted event.
    pub fn digest(&self) -> u64 {
        self.digest.value()
    }
}

impl TraceSink for RecordSink {
    fn emit(&mut self, ev: TraceEvent) {
        self.digest.update(&ev);
        self.total += 1;
        if self.capacity > 0 && self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(ev);
    }

    fn harvest(&mut self) -> Option<EventLog> {
        Some(EventLog {
            events: std::mem::take(&mut self.ring).into(),
            total: self.total,
            digest: self.digest.value(),
        })
    }
}

/// A streaming sink writing one JSONL line per event, keeping the same
/// rolling digest as [`RecordSink`]. Writes go through an internal
/// [`io::BufWriter`], so a traced run costs one syscall per buffer, not
/// one per event; the buffer is flushed by [`JsonlSink::finish`] and,
/// as a last resort, on drop. The first write error is sticky: later
/// emissions are dropped and the error surfaces from `finish`.
pub struct JsonlSink<W: Write> {
    /// `None` only after `finish` took the writer out (so the `Drop`
    /// flush has nothing left to do).
    writer: Option<io::BufWriter<W>>,
    line: String,
    total: u64,
    digest: EventDigest,
    error: Option<io::Error>,
}

impl<W: Write> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("total", &self.total)
            .field("digest", &self.digest.value())
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer. Buffering is internal — hand over the raw file.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Some(io::BufWriter::new(writer)),
            line: String::new(),
            total: 0,
            digest: EventDigest::new(),
            error: None,
        }
    }

    /// Total events emitted into this sink.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The rolling digest value over every emitted event.
    pub fn digest(&self) -> u64 {
        self.digest.value()
    }

    /// Flushes the buffer and returns the inner writer, or the first
    /// sticky write error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        // Taking the writer out disarms the Drop flush.
        let buf = self.writer.take().expect("writer present until finish");
        buf.into_inner().map_err(io::IntoInnerError::into_error)
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    /// Best-effort flush for sinks dropped without [`JsonlSink::finish`]
    /// (e.g. on an error path). Errors here have nowhere to surface and
    /// are ignored; call `finish` to observe them.
    fn drop(&mut self) {
        if let Some(buf) = self.writer.as_mut() {
            let _ = buf.flush();
        }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, ev: TraceEvent) {
        self.digest.update(&ev);
        self.total += 1;
        if self.error.is_some() {
            return;
        }
        self.line.clear();
        ev.write_jsonl(&mut self.line);
        // `finish` consumes the sink, so the writer is always present
        // here; the quiet fallback keeps the per-cycle path panic-free.
        let Some(buf) = self.writer.as_mut() else {
            return;
        };
        if let Err(e) = buf.write_all(self.line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{read_jsonl, EventKind, PortCode};

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            kind: EventKind::GateOff {
                port: PortCode::router_input(1, 3),
                vc: (cycle % 4) as u8,
            },
        }
    }

    /// Whether `T` records, observed through the generic the simulator
    /// actually branches on.
    fn active<T: TraceSink>() -> bool {
        T::ACTIVE
    }

    #[test]
    fn null_sink_is_inactive() {
        assert!(!active::<NullSink>());
        let mut s = NullSink;
        s.emit(ev(1));
        assert_eq!(s.harvest(), None);
    }

    #[test]
    fn record_sink_keeps_everything_when_unbounded() {
        let mut s = RecordSink::unbounded();
        for c in 0..10 {
            s.emit(ev(c));
        }
        let log = s.harvest().expect("record sinks harvest");
        assert_eq!(log.total, 10);
        assert_eq!(log.events.len(), 10);
        assert_eq!(log.digest, EventDigest::of(&log.events));
    }

    #[test]
    fn ring_capacity_evicts_but_digest_covers_all() {
        let all: Vec<TraceEvent> = (0..10).map(ev).collect();
        let mut s = RecordSink::with_capacity(4);
        for e in &all {
            s.emit(e.clone());
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.total(), 10);
        assert_eq!(s.digest(), EventDigest::of(&all), "digest is whole-stream");
        let log = s.harvest().expect("record sinks harvest");
        assert_eq!(log.events, all[6..].to_vec(), "ring keeps the newest");
    }

    #[test]
    fn jsonl_sink_stream_matches_record_sink_digest() {
        let all: Vec<TraceEvent> = (0..8).map(ev).collect();
        let mut j = JsonlSink::new(Vec::new());
        let mut r = RecordSink::unbounded();
        for e in &all {
            j.emit(e.clone());
            r.emit(e.clone());
        }
        assert_eq!(j.digest(), r.digest());
        assert_eq!(j.total(), 8);
        let bytes = j.finish().expect("vec write never fails");
        let parsed = read_jsonl(std::str::from_utf8(&bytes).expect("utf8")).expect("parses");
        assert_eq!(parsed, all, "file round-trips");
        assert_eq!(EventDigest::of(&parsed), r.digest(), "re-hash matches");
    }

    #[test]
    fn buffered_output_is_byte_identical_to_per_event_writes() {
        // Regression for the BufWriter change: buffering must alter only
        // the syscall pattern, never a byte of the output.
        let all: Vec<TraceEvent> = (0..64).map(ev).collect();
        let mut expected = String::new();
        for e in &all {
            e.write_jsonl(&mut expected);
        }
        let mut sink = JsonlSink::new(Vec::new());
        for e in &all {
            sink.emit(e.clone());
        }
        let bytes = sink.finish().expect("vec write never fails");
        assert_eq!(bytes, expected.as_bytes());
    }

    #[test]
    fn dropped_sink_flushes_its_buffer() {
        use std::sync::{Arc, Mutex};

        /// A writer the test can inspect after the sink is gone.
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().expect("test writer").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let out = Shared(Arc::new(Mutex::new(Vec::new())));
        {
            let mut sink = JsonlSink::new(out.clone());
            sink.emit(ev(1));
            assert!(
                out.0.lock().expect("test writer").is_empty(),
                "one small event must still sit in the buffer"
            );
        } // dropped without finish()
        let bytes = out.0.lock().expect("test writer").clone();
        let mut expected = String::new();
        ev(1).write_jsonl(&mut expected);
        assert_eq!(bytes, expected.as_bytes(), "drop flushed the event");
    }
}
