//! Deterministic per-phase work counters.
//!
//! Hot-path profiling without wall-clock reads (which the determinism lint
//! forbids): the simulator and experiment engine count how many times each
//! pipeline phase did work. The counts are pure functions of the simulated
//! run, so they are bit-identical across `--jobs` values and double as a
//! cheap cross-check in determinism tests.

use std::ops::{Add, AddAssign};

/// Work performed per pipeline/engine phase over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Flits written into VC buffers (the BW stage, routers + NIC eject).
    pub bw_writes: u64,
    /// Route computations for head flits (the RC stage).
    pub rc_computes: u64,
    /// Output VCs granted to waiting heads (the VA stage).
    pub va_grants: u64,
    /// Crossbar traversals granted (the SA stage).
    pub sa_grants: u64,
    /// Gating commands applied to ports (`Up_Down` payloads, `NoChange`
    /// excluded).
    pub gate_commands: u64,
    /// Policy `decide` invocations by the experiment engine.
    pub policy_evaluations: u64,
    /// Most-degraded-VC sensor elections (`Down_Up` reads).
    pub sensor_reads: u64,
}

impl WorkCounters {
    /// Sum of every counter — a scalar "work units" figure.
    pub fn total(&self) -> u64 {
        self.bw_writes
            + self.rc_computes
            + self.va_grants
            + self.sa_grants
            + self.gate_commands
            + self.policy_evaluations
            + self.sensor_reads
    }
}

impl Add for WorkCounters {
    type Output = WorkCounters;

    fn add(self, rhs: WorkCounters) -> WorkCounters {
        WorkCounters {
            bw_writes: self.bw_writes + rhs.bw_writes,
            rc_computes: self.rc_computes + rhs.rc_computes,
            va_grants: self.va_grants + rhs.va_grants,
            sa_grants: self.sa_grants + rhs.sa_grants,
            gate_commands: self.gate_commands + rhs.gate_commands,
            policy_evaluations: self.policy_evaluations + rhs.policy_evaluations,
            sensor_reads: self.sensor_reads + rhs.sensor_reads,
        }
    }
}

impl AddAssign for WorkCounters {
    fn add_assign(&mut self, rhs: WorkCounters) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_addition() {
        let a = WorkCounters {
            bw_writes: 1,
            rc_computes: 2,
            va_grants: 3,
            sa_grants: 4,
            gate_commands: 5,
            policy_evaluations: 6,
            sensor_reads: 7,
        };
        assert_eq!(a.total(), 28);
        let mut b = WorkCounters::default();
        b += a;
        b += a;
        assert_eq!(b, a + a);
        assert_eq!(b.total(), 56);
    }
}
