//! Experiment-facing telemetry configuration and report.
//!
//! [`TelemetrySpec`] is the small `Copy` value the experiment config
//! carries (so configs stay `Clone` and cheaply shippable across worker
//! threads); the engine builds the actual sinks from it at run start.
//! [`TelemetryReport`] is what comes back in the experiment result.

use crate::series::MetricsSeries;
use crate::sink::EventLog;

/// What to collect during an experiment run. The default collects
/// nothing, which keeps the simulator on the [`NullSink`] fast path.
///
/// [`NullSink`]: crate::sink::NullSink
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetrySpec {
    /// Record the typed event trace (gating, VA grants, flit movement).
    pub trace: bool,
    /// Ring-buffer capacity for the recorded trace; `0` keeps every event.
    pub trace_capacity: usize,
    /// Sample per-port metrics every this many cycles; `0` disables the
    /// sampler.
    pub sample_period: u64,
}

impl TelemetrySpec {
    /// `true` when any collection is requested.
    pub fn enabled(&self) -> bool {
        self.trace || self.sample_period > 0
    }
}

/// Telemetry harvested from one experiment run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// The recorded event trace, when [`TelemetrySpec::trace`] was set.
    pub trace: Option<EventLog>,
    /// The sampled metrics series, when [`TelemetrySpec::sample_period`]
    /// was non-zero.
    pub series: Option<MetricsSeries>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_disabled() {
        let spec = TelemetrySpec::default();
        assert!(!spec.enabled());
        assert!(TelemetrySpec {
            trace: true,
            ..TelemetrySpec::default()
        }
        .enabled());
        assert!(TelemetrySpec {
            sample_period: 500,
            ..TelemetrySpec::default()
        }
        .enabled());
    }
}
