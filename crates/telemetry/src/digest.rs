//! The rolling event-stream digest.
//!
//! An FNV-1a 64-bit hash folded over a canonical byte encoding of every
//! event, in emission order. Two runs are bit-identical iff their digests
//! match (up to hash collisions), which lets `--jobs 1` vs `--jobs 8`, or
//! record vs replay, be asserted equal by comparing one `u64` instead of
//! two full event streams. The same fold is used by the in-memory sink,
//! the JSONL file sink, and the `stats` reader re-hashing a parsed file,
//! so a digest printed at run time can be re-derived from the trace file.

use crate::event::{EventKind, TraceEvent};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A rolling FNV-1a 64 hash over trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventDigest {
    state: u64,
}

impl Default for EventDigest {
    fn default() -> Self {
        EventDigest::new()
    }
}

impl EventDigest {
    /// The digest of the empty stream.
    pub const fn new() -> Self {
        EventDigest { state: FNV_OFFSET }
    }

    /// The current hash value.
    pub const fn value(self) -> u64 {
        self.state
    }

    fn fold(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn fold_u64(&mut self, v: u64) {
        self.fold(&v.to_le_bytes());
    }

    /// Folds one event into the digest. The canonical encoding is the
    /// cycle (LE u64), a tag byte (the variant's position in
    /// [`EventKind::TAGS`]), then every field widened to LE u64 in
    /// declaration order; a violation kind is its length then its bytes.
    pub fn update(&mut self, ev: &TraceEvent) {
        self.fold_u64(ev.cycle);
        let tag = EventKind::TAGS
            .iter()
            .position(|&t| t == ev.kind.tag())
            // lint:allow(no-unwrap) TAGS is static and total over EventKind
            .expect("tag table covers every variant") as u8;
        self.fold(&[tag]);
        match &ev.kind {
            EventKind::GateOn { port, vc } | EventKind::GateOff { port, vc } => {
                self.fold_u64(u64::from(port.node));
                self.fold(&[port.kind, *vc]);
            }
            EventKind::UpDown { port, enable, mask } => {
                self.fold_u64(u64::from(port.node));
                self.fold(&[port.kind, u8::from(*enable)]);
                self.fold_u64(u64::from(*mask));
            }
            EventKind::DownUp { port, md_vc } => {
                self.fold_u64(u64::from(port.node));
                self.fold(&[port.kind, *md_vc]);
            }
            EventKind::VaGrant {
                node,
                in_port,
                vc,
                out_port,
                out_vc,
            } => {
                self.fold_u64(u64::from(*node));
                self.fold(&[*in_port, *vc, *out_port, *out_vc]);
            }
            EventKind::FlitInject { node, packet, vc }
            | EventKind::FlitEject { node, packet, vc } => {
                self.fold_u64(u64::from(*node));
                self.fold_u64(*packet);
                self.fold(&[*vc]);
            }
            EventKind::PacketDone {
                node,
                packet,
                latency,
            } => {
                self.fold_u64(u64::from(*node));
                self.fold_u64(*packet);
                self.fold_u64(*latency);
            }
            EventKind::Violation { kind } => {
                self.fold_u64(kind.len() as u64);
                self.fold(kind.as_bytes());
            }
            EventKind::EpochEnd { index, digest } => {
                self.fold_u64(u64::from(*index));
                self.fold_u64(*digest);
            }
        }
    }

    /// The digest of a whole event slice, from scratch.
    pub fn of(events: &[TraceEvent]) -> u64 {
        let mut d = EventDigest::new();
        for ev in events {
            d.update(ev);
        }
        d.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PortCode;

    fn ev(cycle: u64, vc: u8) -> TraceEvent {
        TraceEvent {
            cycle,
            kind: EventKind::GateOn {
                port: PortCode::router_input(0, 2),
                vc,
            },
        }
    }

    #[test]
    fn identical_streams_hash_identically() {
        let a = EventDigest::of(&[ev(1, 0), ev(2, 1)]);
        let b = EventDigest::of(&[ev(1, 0), ev(2, 1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn order_fields_and_variant_all_matter() {
        let base = EventDigest::of(&[ev(1, 0), ev(2, 1)]);
        assert_ne!(base, EventDigest::of(&[ev(2, 1), ev(1, 0)]), "order");
        assert_ne!(base, EventDigest::of(&[ev(1, 0), ev(2, 0)]), "field");
        let gate_off = TraceEvent {
            cycle: 2,
            kind: EventKind::GateOff {
                port: PortCode::router_input(0, 2),
                vc: 1,
            },
        };
        assert_ne!(base, EventDigest::of(&[ev(1, 0), gate_off]), "variant");
    }

    #[test]
    fn empty_stream_digest_is_the_fnv_offset() {
        assert_eq!(EventDigest::new().value(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(EventDigest::of(&[]), EventDigest::new().value());
    }

    #[test]
    fn incremental_equals_batch() {
        let events = [ev(1, 0), ev(5, 1), ev(9, 0)];
        let mut d = EventDigest::new();
        for e in &events {
            d.update(e);
        }
        assert_eq!(d.value(), EventDigest::of(&events));
    }
}
