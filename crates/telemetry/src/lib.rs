//! # noc-telemetry — deterministic observability for the NBTI/NoC stack
//!
//! The simulator's determinism contract (bit-identical results for any
//! `--jobs`, PR 1) extends to observability: everything this crate records
//! is a pure function of the simulated state, never of wall-clock time or
//! scheduling. Three layers:
//!
//! * [`event`] — typed trace events (gating transitions, `Up_Down` /
//!   `Down_Up` control-link payloads, VA grants, flit inject/eject, packet
//!   completions, invariant violations) with a compact JSONL encoding,
//! * [`sink`] — the trait-object-free [`TraceSink`] the simulator emits
//!   into: [`NullSink`] (compiles to nothing — the default), [`RecordSink`]
//!   (in-memory ring buffer + rolling digest) and [`JsonlSink`] (streaming
//!   file export),
//! * [`series`] — a columnar [`MetricsSeries`] for periodic samples
//!   (per-port duty %, VC occupancy, gating churn, powered-VC count,
//!   projected ΔVth) with CSV/JSONL export,
//!
//! plus [`digest`] (an FNV-1a rolling hash over the canonical event byte
//! encoding, for digest-only bit-identity assertions) and [`counters`]
//! (deterministic per-phase work counters for hot-path accounting without
//! wall-clock reads).
//!
//! The *performance*-observability layer lives beside those and is the one
//! deliberate exception to the no-wall-clock rule: [`profile`] (log2-bucket
//! [`Histogram`] + per-cycle [`StageProfiler`] behind a const-`ENABLED`
//! generic, same compile-out contract as [`TraceSink::ACTIVE`]), [`spans`]
//! (request→job→experiment→epoch spans with derived ids, plus a bounded
//! [`FlightRecorder`] ring), and [`profclock`], the single sanctioned
//! wall-clock boundary both read from. Timings are observations of a run,
//! never inputs to it — profiled runs stay bit-identical.
//!
//! This crate is dependency-free and knows nothing about the simulator; the
//! simulator depends on it and maps its own identifiers into [`PortCode`].
//!
//! # Zero overhead when off
//!
//! [`TraceSink::ACTIVE`] is an associated `const`. Every emission site in
//! the simulator is guarded by `if T::ACTIVE { ... }`, so with the default
//! [`NullSink`] the branch — and the event construction behind it — is
//! removed at monomorphization time. A run with telemetry off is the same
//! machine code as before this crate existed.

#![deny(missing_debug_implementations)]
#![warn(
    clippy::semicolon_if_nothing_returned,
    clippy::explicit_iter_loop,
    clippy::redundant_closure_for_method_calls,
    clippy::manual_let_else
)]

pub mod counters;
pub mod digest;
pub mod event;
pub mod profclock;
pub mod profile;
pub mod series;
pub mod sink;
pub mod spans;
pub mod spec;

pub use counters::WorkCounters;
pub use digest::EventDigest;
pub use event::{read_jsonl, EventKind, ParseError, PortCode, TraceEvent};
pub use profile::{Histogram, NullProfiler, ProfileReport, Profiler, Stage, StageProfiler};
pub use series::{MetricsSeries, Sample};
pub use sink::{EventLog, JsonlSink, NullSink, RecordSink, TraceSink};
pub use spans::{derive_id, read_spans_jsonl, FlightRecorder, Span, SpanKind, SpanLog, NO_PARENT};
pub use spec::{TelemetryReport, TelemetrySpec};
