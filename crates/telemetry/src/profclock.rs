//! The profiling layer's single sanctioned wall-clock boundary.
//!
//! The determinism contract bans wall-clock reads from the simulation
//! core (`no-wall-clock` in `tools/analyze`), with exactly two sanctioned
//! boundaries: the serving layer's `noc_service::clock`, and this module.
//! Every timestamp the stage profiler or the span layer takes goes
//! through here, so the analyzer can allowlist one file instead of
//! scattering suppressions over the hot loop.
//!
//! The contract that keeps this safe: nothing read here may ever feed
//! back into simulated behaviour. Stage timings and span durations are
//! *observations* of a run, never inputs to it — a profiled run produces
//! bit-identical results (and trace digests) to an unprofiled one.

use std::time::Instant;

/// A wall-clock sample. The analyzer allowlists this file, so the raw
/// read needs no `lint:allow` marker.
#[must_use]
pub fn now() -> Instant {
    Instant::now()
}

/// Whole nanoseconds elapsed since `start`, saturating at `u64::MAX`
/// (584 years of nanoseconds — the saturation exists for the type system,
/// not for any plausible run).
#[must_use]
pub fn ns_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Whole microseconds elapsed since `start`.
#[must_use]
pub fn us_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Fractional milliseconds elapsed since `start`, for throughput math.
#[must_use]
pub fn ms_since_f64(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_and_units_agree() {
        let t0 = now();
        let ns = ns_since(t0);
        let us = us_since(t0);
        assert!(us_since(t0) >= us, "monotone");
        // The later µs read must not lag the earlier ns read.
        assert!(us_since(t0) * 1_000 + 1_000 > ns);
        assert!(ms_since_f64(t0) >= 0.0);
    }
}
