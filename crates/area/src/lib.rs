//! # noc-area — router/link area model and the sensor-wise overhead analysis
//!
//! Reproduces the paper's Section III-D feasibility argument. The paper uses
//! ORION 2.0 for router and link area at 45 nm and the Singh et al. 45 nm
//! synthesizable NBTI sensor, and reports:
//!
//! * **3.25 %** router-area overhead for the 16 NBTI sensors
//!   (4 input ports × 4 VCs, one sensor per VC buffer, 64-bit flits,
//!   4-flit buffers),
//! * **3.8 %** link overhead for the `Up_Down` + `Down_Up` control wires
//!   relative to a 64-bit data link,
//! * negligible overhead for the Algorithm 2 / comparator logic,
//! * a total below 4 % of the baseline NoC.
//!
//! This crate implements a transparent, parametric bottom-up model in the
//! ORION spirit: register-based VC buffers (as in Garnet), a matrix
//! crossbar, separable allocators and pipeline registers, wire-pitch-based
//! links, and the published sensor footprint. Constants are documented in
//! [`AreaParams`]; the derived percentages land where the paper's do and
//! every intermediate number is exposed.
//!
//! ```
//! use noc_area::{AreaParams, analyze};
//!
//! let report = analyze(&AreaParams::paper_45nm());
//! // The paper's headline claims.
//! assert!((report.sensors_percent_of_router - 3.25).abs() < 0.75);
//! assert!((report.control_link_percent_of_link - 3.8).abs() < 0.5);
//! assert!(report.total_overhead_percent < 5.0);
//! ```

#![deny(missing_debug_implementations)]
#![warn(
    clippy::semicolon_if_nothing_returned,
    clippy::explicit_iter_loop,
    clippy::redundant_closure_for_method_calls,
    clippy::manual_let_else
)]

pub mod power;

use std::fmt;

/// Technology and microarchitecture parameters of the area model.
///
/// All areas are in µm², lengths in µm, at the configured feature size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaParams {
    /// Feature size in nanometres (areas scale with `(feature/45)²`).
    pub feature_nm: f64,
    /// Flit width in bits (paper: 64 for the area study).
    pub flit_bits: usize,
    /// Virtual channels per input port.
    pub vcs: usize,
    /// Buffer depth per VC in flits.
    pub buffer_depth: usize,
    /// Router ports (5 for a mesh router with a local port).
    pub ports: usize,
    /// Area of one flip-flop bit at 45 nm (register-based FIFO buffers, as
    /// in Garnet's `flit_buffer`), in µm².
    pub ff_area_um2: f64,
    /// Area of one equivalent NAND2 gate at 45 nm, in µm².
    pub gate_area_um2: f64,
    /// Crossbar wire pitch at 45 nm (4 F), in µm.
    pub crossbar_pitch_um: f64,
    /// Global-link wire pitch at 45 nm, in µm.
    pub wire_pitch_um: f64,
    /// Inter-tile link length in µm (Tilera-style ~1 mm tiles).
    pub link_length_um: f64,
    /// One NBTI sensor (Singh et al., TCAS-I 2011, 45 nm synthesizable
    /// multi-degradation sensor), in µm².
    pub sensor_area_um2: f64,
    /// Equivalent gate count of the Algorithm 2 + comparator logic added
    /// per router (synthesized with NetMaker in the paper; "negligible").
    pub policy_logic_gates: f64,
}

impl AreaParams {
    /// The paper's Section III-D configuration: 45 nm, 64-bit flits,
    /// 4 VCs × 4 flits, 5-port router.
    pub fn paper_45nm() -> Self {
        AreaParams {
            feature_nm: 45.0,
            flit_bits: 64,
            vcs: 4,
            buffer_depth: 4,
            ports: 5,
            ff_area_um2: 4.5,
            gate_area_um2: 1.5,
            crossbar_pitch_um: 0.18,
            wire_pitch_um: 0.18,
            link_length_um: 1000.0,
            sensor_area_um2: 60.0,
            policy_logic_gates: 120.0,
        }
    }

    /// The same microarchitecture scaled to 32 nm.
    pub fn paper_32nm() -> Self {
        AreaParams {
            feature_nm: 32.0,
            ..Self::paper_45nm()
        }
    }

    /// Linear dimension scale factor relative to 45 nm.
    fn scale(&self) -> f64 {
        self.feature_nm / 45.0
    }

    /// Area scale factor relative to 45 nm.
    fn area_scale(&self) -> f64 {
        self.scale() * self.scale()
    }
}

impl Default for AreaParams {
    fn default() -> Self {
        Self::paper_45nm()
    }
}

/// Bottom-up router area breakdown, in µm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterArea {
    /// Register-based VC buffers of all input ports.
    pub buffers_um2: f64,
    /// Matrix crossbar.
    pub crossbar_um2: f64,
    /// VC and switch allocators (round-robin arbiters).
    pub allocators_um2: f64,
    /// Inter-stage pipeline registers.
    pub pipeline_um2: f64,
}

impl RouterArea {
    /// Total router area.
    pub fn total_um2(&self) -> f64 {
        self.buffers_um2 + self.crossbar_um2 + self.allocators_um2 + self.pipeline_um2
    }
}

impl fmt::Display for RouterArea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "buffers   : {:>10.1} um^2", self.buffers_um2)?;
        writeln!(f, "crossbar  : {:>10.1} um^2", self.crossbar_um2)?;
        writeln!(f, "allocators: {:>10.1} um^2", self.allocators_um2)?;
        writeln!(f, "pipeline  : {:>10.1} um^2", self.pipeline_um2)?;
        write!(f, "total     : {:>10.1} um^2", self.total_um2())
    }
}

/// The Section III-D overhead report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Baseline router breakdown.
    pub router: RouterArea,
    /// One unidirectional data link.
    pub link_um2: f64,
    /// Sensors per router (`(ports − 1) × vcs` in the paper's 4-port
    /// counting: one per VC buffer of the four mesh input ports).
    pub num_sensors: usize,
    /// Total sensor area per router.
    pub sensors_um2: f64,
    /// Sensor overhead as a percentage of the router (paper: 3.25 %).
    pub sensors_percent_of_router: f64,
    /// `Up_Down` wires: `⌈log2(vcs)⌉ + 1` (VC-ID + enable).
    pub updown_wires: usize,
    /// `Down_Up` wires: `⌈log2(vcs)⌉` (most-degraded VC-ID).
    pub downup_wires: usize,
    /// Control-wire overhead relative to the bidirectional 64-bit data
    /// link pair (paper: 3.8 % "with respect to a single 64 bit data
    /// link").
    pub control_link_percent_of_link: f64,
    /// Algorithm 2 + comparator logic per router.
    pub policy_logic_um2: f64,
    /// Logic overhead as a percentage of the router (paper: negligible).
    pub policy_logic_percent: f64,
    /// Total per-tile overhead: (sensors + control wires + logic) over
    /// (router + the tile's share of data links), in percent
    /// (paper: below 4 %).
    pub total_overhead_percent: f64,
}

impl fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "--- baseline router ---")?;
        writeln!(f, "{}", self.router)?;
        writeln!(
            f,
            "data link : {:>10.1} um^2 (per direction)",
            self.link_um2
        )?;
        writeln!(f, "--- sensor-wise additions ---")?;
        writeln!(
            f,
            "{} sensors: {:.1} um^2 = {:.2}% of the router (paper: 3.25%)",
            self.num_sensors, self.sensors_um2, self.sensors_percent_of_router
        )?;
        writeln!(
            f,
            "control links: {}+{} wires = {:.2}% of a data-link pair (paper: 3.8%)",
            self.updown_wires, self.downup_wires, self.control_link_percent_of_link
        )?;
        writeln!(
            f,
            "policy logic: {:.1} um^2 = {:.2}% of the router (paper: negligible)",
            self.policy_logic_um2, self.policy_logic_percent
        )?;
        write!(
            f,
            "TOTAL overhead per tile: {:.2}% (paper: below 4%)",
            self.total_overhead_percent
        )
    }
}

/// Area of one round-robin arbiter over `n` requesters: roughly a priority
/// register bit plus a few gates of grant logic per requester.
fn arbiter_um2(n: usize, p: &AreaParams) -> f64 {
    n as f64 * (p.ff_area_um2 / 4.0 + 4.0 * p.gate_area_um2)
}

/// Computes the bottom-up router area.
pub fn router_area(p: &AreaParams) -> RouterArea {
    let s = p.area_scale();
    let buffer_bits = (p.ports * p.vcs * p.buffer_depth * p.flit_bits) as f64;
    let buffers = buffer_bits * p.ff_area_um2 * s;
    // Matrix crossbar: (W × pitch)² wire grid per port pair.
    let span = p.flit_bits as f64 * p.crossbar_pitch_um * p.scale();
    let crossbar = span * span * (p.ports * p.ports) as f64;
    // VC allocator: one arbiter per output port over ports×vcs requesters,
    // switch allocator: input arbiters over vcs plus output arbiters over
    // ports.
    let va = p.ports as f64 * arbiter_um2(p.ports * p.vcs, p);
    let sa = p.ports as f64 * (arbiter_um2(p.vcs, p) + arbiter_um2(p.ports, p));
    let allocators = (va + sa) * s;
    // Two ranks of pipeline registers on the datapath.
    let pipeline = 2.0 * (p.ports * p.flit_bits) as f64 * p.ff_area_um2 * s;
    RouterArea {
        buffers_um2: buffers,
        crossbar_um2: crossbar,
        allocators_um2: allocators,
        pipeline_um2: pipeline,
    }
}

/// Area of one unidirectional `flit_bits`-wide link.
pub fn link_area(p: &AreaParams) -> f64 {
    p.flit_bits as f64 * p.wire_pitch_um * p.scale() * p.link_length_um
}

/// Runs the full Section III-D analysis.
pub fn analyze(p: &AreaParams) -> OverheadReport {
    let router = router_area(p);
    let link = link_area(p);
    // One sensor per VC buffer of the four mesh input ports (the paper's
    // "16 sensors = 4 input-ports x 4 VCs").
    let num_sensors = (p.ports - 1) * p.vcs;
    let sensors = num_sensors as f64 * p.sensor_area_um2 * p.area_scale();
    let vc_bits = (p.vcs as f64).log2().ceil().max(1.0) as usize;
    let updown = vc_bits + 1;
    let downup = vc_bits;
    let wire_um2 = p.wire_pitch_um * p.scale() * p.link_length_um;
    let control_wires_um2 = (updown + downup) as f64 * wire_um2;
    let control_percent = control_wires_um2 / (2.0 * link) * 100.0;
    let logic = p.policy_logic_gates * p.gate_area_um2 * p.area_scale();
    // A tile owns its router plus (on average) half of its up-to-8
    // unidirectional mesh links ≈ 4 link-directions; control wires are
    // added per link pair on each of the 4 mesh ports.
    let tile_baseline = router.total_um2() + 4.0 * link;
    let tile_additions = sensors + logic + 4.0 * control_wires_um2 / 2.0;
    OverheadReport {
        router,
        link_um2: link,
        num_sensors,
        sensors_um2: sensors,
        sensors_percent_of_router: sensors / router.total_um2() * 100.0,
        updown_wires: updown,
        downup_wires: downup,
        control_link_percent_of_link: control_percent,
        policy_logic_um2: logic,
        policy_logic_percent: logic / router.total_um2() * 100.0,
        total_overhead_percent: tile_additions / tile_baseline * 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sensor_overhead_is_about_3_25_percent() {
        let r = analyze(&AreaParams::paper_45nm());
        assert!(
            (r.sensors_percent_of_router - 3.25).abs() < 0.75,
            "sensor overhead = {:.2}%",
            r.sensors_percent_of_router
        );
        assert_eq!(r.num_sensors, 16);
    }

    #[test]
    fn paper_control_link_overhead_is_about_3_8_percent() {
        let r = analyze(&AreaParams::paper_45nm());
        // 4 VCs: 3 Up_Down wires + 2 Down_Up wires over 2×64 data wires.
        assert_eq!(r.updown_wires, 3);
        assert_eq!(r.downup_wires, 2);
        assert!(
            (r.control_link_percent_of_link - 3.9).abs() < 0.2,
            "link overhead = {:.2}%",
            r.control_link_percent_of_link
        );
    }

    #[test]
    fn policy_logic_is_negligible() {
        let r = analyze(&AreaParams::paper_45nm());
        assert!(r.policy_logic_percent < 1.0);
    }

    #[test]
    fn total_overhead_is_below_5_percent() {
        let r = analyze(&AreaParams::paper_45nm());
        assert!(
            r.total_overhead_percent < 5.0 && r.total_overhead_percent > 1.0,
            "total = {:.2}%",
            r.total_overhead_percent
        );
    }

    #[test]
    fn router_breakdown_is_buffer_dominated() {
        // Garnet-style register FIFO routers are buffer-dominated — the
        // very reason the paper gates buffers.
        let r = router_area(&AreaParams::paper_45nm());
        assert!(r.buffers_um2 > r.crossbar_um2);
        assert!(r.buffers_um2 > 0.5 * r.total_um2());
    }

    #[test]
    fn areas_scale_quadratically_with_feature_size() {
        let a45 = router_area(&AreaParams::paper_45nm()).total_um2();
        let a32 = router_area(&AreaParams::paper_32nm()).total_um2();
        let expect = (32.0f64 / 45.0).powi(2);
        assert!((a32 / a45 - expect).abs() < 1e-9);
        // Percent overheads are scale-invariant.
        let r45 = analyze(&AreaParams::paper_45nm());
        let r32 = analyze(&AreaParams::paper_32nm());
        assert!((r45.sensors_percent_of_router - r32.sensors_percent_of_router).abs() < 1e-9);
    }

    #[test]
    fn overhead_percentages_respond_to_vc_count() {
        let mut p = AreaParams::paper_45nm();
        p.vcs = 2;
        let r = analyze(&p);
        assert_eq!(r.num_sensors, 8);
        // log2(2)+1 = 2 Up_Down wires, 1 Down_Up wire.
        assert_eq!(r.updown_wires, 2);
        assert_eq!(r.downup_wires, 1);
    }

    #[test]
    fn wider_flits_shrink_relative_link_overhead() {
        let narrow = {
            let mut p = AreaParams::paper_45nm();
            p.flit_bits = 32;
            analyze(&p).control_link_percent_of_link
        };
        let wide = analyze(&AreaParams::paper_45nm()).control_link_percent_of_link;
        assert!(narrow > wide);
    }

    #[test]
    fn display_mentions_paper_anchors() {
        let text = analyze(&AreaParams::paper_45nm()).to_string();
        assert!(text.contains("3.25%"), "{text}");
        assert!(text.contains("paper: below 4%"), "{text}");
    }
}
