//! ORION-style router power model and the leakage side-effect of NBTI
//! gating.
//!
//! The paper gates idle VC buffers to *recover NBTI stress*; the very same
//! header PMOS also cuts the buffer's leakage, so every recovery cycle is
//! simultaneously a leakage saving. This module quantifies that side
//! effect with a transparent bottom-up model in the ORION 2.0 spirit:
//! per-bit flip-flop leakage, per-event dynamic energies, residual leakage
//! through the sleep transistor, and the sensors' own power cost.
//!
//! ```
//! use noc_area::power::{PowerParams, gating_power_report};
//!
//! // Duty cycles of the 16 mesh-port VC buffers of one router (fraction
//! // of time powered), plus flits moved during the window.
//! let duty = vec![0.2; 16];
//! let report = gating_power_report(&PowerParams::paper_45nm(), &duty, 50_000, 1_000_000);
//! assert!(report.leakage_saved_uw > 0.0);
//! assert!(report.net_saving_percent > 0.0);
//! ```

use crate::AreaParams;

/// Technology and microarchitecture parameters of the power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Microarchitecture (shared with the area model).
    pub arch: AreaParams,
    /// Clock frequency in Hz (paper: 1 GHz).
    pub clock_hz: f64,
    /// Leakage of one flip-flop bit at 45 nm, in nW.
    pub ff_leakage_nw: f64,
    /// Residual leakage fraction of a power-gated buffer (sleep-transistor
    /// off-current, typically a few percent).
    pub gated_residual: f64,
    /// Dynamic energy of writing one flit into a buffer, in pJ.
    pub buffer_write_pj: f64,
    /// Dynamic energy of reading one flit from a buffer, in pJ.
    pub buffer_read_pj: f64,
    /// Dynamic energy of one crossbar traversal, in pJ.
    pub crossbar_pj: f64,
    /// Dynamic energy of one link traversal, in pJ.
    pub link_pj: f64,
    /// Static power of one NBTI sensor, in nW (the Singh sensor is
    /// duty-cycled; this is its average draw).
    pub sensor_nw: f64,
    /// Switching energy of one sleep-transistor power state change, in pJ.
    pub gate_switch_pj: f64,
}

impl PowerParams {
    /// The paper's 45 nm operating point.
    pub fn paper_45nm() -> Self {
        PowerParams {
            arch: AreaParams::paper_45nm(),
            clock_hz: 1e9,
            ff_leakage_nw: 20.0,
            gated_residual: 0.05,
            buffer_write_pj: 1.1,
            buffer_read_pj: 0.9,
            crossbar_pj: 1.3,
            link_pj: 1.8,
            sensor_nw: 150.0,
            gate_switch_pj: 0.4,
        }
    }

    /// Bits in one VC buffer.
    pub fn bits_per_buffer(&self) -> usize {
        self.arch.buffer_depth * self.arch.flit_bits
    }

    /// Leakage of one fully powered VC buffer, in µW.
    pub fn buffer_leakage_uw(&self) -> f64 {
        self.bits_per_buffer() as f64 * self.ff_leakage_nw * 1e-3
    }

    /// Leakage of the whole router's buffers (all ports, all VCs), in µW.
    pub fn router_buffer_leakage_uw(&self) -> f64 {
        (self.arch.ports * self.arch.vcs) as f64 * self.buffer_leakage_uw()
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        Self::paper_45nm()
    }
}

/// Power outcome of running a set of VC buffers at measured duty cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatingPowerReport {
    /// Buffer leakage if every monitored buffer stayed powered, in µW.
    pub leakage_baseline_uw: f64,
    /// Actual buffer leakage at the measured duty cycles (gated buffers
    /// still draw the residual), in µW.
    pub leakage_actual_uw: f64,
    /// Leakage saved by gating, in µW.
    pub leakage_saved_uw: f64,
    /// Dynamic power from moving the flits (write + read + crossbar +
    /// link), in µW — identical across policies for identical traffic.
    pub dynamic_uw: f64,
    /// Average sensor power for one sensor per monitored buffer, in µW.
    pub sensor_uw: f64,
    /// Net buffer-subsystem saving vs. the always-on baseline, in percent
    /// (sensor cost deducted).
    pub net_saving_percent: f64,
}

/// Computes the power outcome for one router's monitored buffers.
///
/// * `duty` — fraction of time each buffer was powered (`α` per VC),
/// * `flits` — flits transported through the router in the window,
/// * `cycles` — window length in cycles.
///
/// # Panics
///
/// Panics if `cycles` is zero or any duty value is outside `[0, 1]`.
pub fn gating_power_report(
    p: &PowerParams,
    duty: &[f64],
    flits: u64,
    cycles: u64,
) -> GatingPowerReport {
    assert!(cycles > 0, "window must be at least one cycle");
    for &d in duty {
        assert!((0.0..=1.0).contains(&d), "duty {d} outside [0, 1]");
    }
    let per_buffer = p.buffer_leakage_uw();
    let baseline = duty.len() as f64 * per_buffer;
    let actual: f64 = duty
        .iter()
        .map(|&d| per_buffer * (d + (1.0 - d) * p.gated_residual))
        .sum();
    let seconds = cycles as f64 / p.clock_hz;
    let per_flit_pj = p.buffer_write_pj + p.buffer_read_pj + p.crossbar_pj + p.link_pj;
    let dynamic_uw = flits as f64 * per_flit_pj * 1e-12 / seconds * 1e6;
    let sensor_uw = duty.len() as f64 * p.sensor_nw * 1e-3;
    let saved = baseline - actual;
    let net_saving_percent = if baseline > 0.0 {
        (saved - sensor_uw) / baseline * 100.0
    } else {
        0.0
    };
    GatingPowerReport {
        leakage_baseline_uw: baseline,
        leakage_actual_uw: actual,
        leakage_saved_uw: saved,
        dynamic_uw,
        sensor_uw,
        net_saving_percent,
    }
}

impl std::fmt::Display for GatingPowerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "buffer leakage: {:.1} uW always-on -> {:.1} uW gated ({:.1} uW saved)",
            self.leakage_baseline_uw, self.leakage_actual_uw, self.leakage_saved_uw
        )?;
        writeln!(
            f,
            "dynamic (traffic) power: {:.1} uW; sensor cost: {:.2} uW",
            self.dynamic_uw, self.sensor_uw
        )?;
        write!(
            f,
            "net buffer leakage saving: {:.1}%",
            self.net_saving_percent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> PowerParams {
        PowerParams::paper_45nm()
    }

    #[test]
    fn always_on_saves_nothing_but_pays_sensors() {
        let r = gating_power_report(&p(), &[1.0; 16], 1000, 10_000);
        assert!((r.leakage_saved_uw).abs() < 1e-9);
        assert!(r.net_saving_percent < 0.0, "sensors cost power");
    }

    #[test]
    fn fully_gated_saves_all_but_residual() {
        let r = gating_power_report(&p(), &[0.0; 16], 0, 10_000);
        let expect = r.leakage_baseline_uw * (1.0 - p().gated_residual);
        assert!((r.leakage_saved_uw - expect).abs() < 1e-9);
        assert!(r.net_saving_percent > 80.0);
    }

    #[test]
    fn saving_scales_linearly_with_duty() {
        let half = gating_power_report(&p(), &[0.5; 16], 0, 1000);
        let quarter = gating_power_report(&p(), &[0.25; 16], 0, 1000);
        assert!(quarter.leakage_saved_uw > half.leakage_saved_uw);
        let ratio = quarter.leakage_saved_uw / half.leakage_saved_uw;
        assert!((ratio - 1.5).abs() < 1e-9, "ratio = {ratio}");
    }

    #[test]
    fn dynamic_power_tracks_traffic() {
        let light = gating_power_report(&p(), &[0.5; 4], 100, 10_000);
        let heavy = gating_power_report(&p(), &[0.5; 4], 1_000, 10_000);
        assert!((heavy.dynamic_uw / light.dynamic_uw - 10.0).abs() < 1e-9);
    }

    #[test]
    fn buffer_leakage_magnitudes_are_plausible() {
        // 4 flits x 64 bits x 20 nW = 5.12 uW per buffer; ~100 uW per
        // router's 20 buffers — the ballpark ORION reports at 45 nm.
        let params = p();
        assert!((params.buffer_leakage_uw() - 5.12).abs() < 1e-9);
        assert!((params.router_buffer_leakage_uw() - 102.4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_duty_panics() {
        let _ = gating_power_report(&p(), &[1.2], 0, 10);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_window_panics() {
        let _ = gating_power_report(&p(), &[0.5], 0, 0);
    }

    #[test]
    fn display_summarises() {
        let r = gating_power_report(&p(), &[0.3; 8], 500, 10_000);
        let s = r.to_string();
        assert!(s.contains("net buffer leakage saving"), "{s}");
    }
}
