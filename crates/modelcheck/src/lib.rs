//! # noc-modelcheck — exhaustive exploration of the cooperative gating protocol
//!
//! The paper's Up_Down/Down_Up gating protocol is easy to get subtly wrong:
//! the dangerous behaviours (gating an occupied VC, leaking a credit,
//! exceeding the idle-on budget) live in adversarial *interleavings* of
//! injections, gate commands and control-epoch gaps that sampled whole-run
//! checks never reach. This crate enumerates **every reachable whole-cycle
//! state** of a small mesh by breadth-first search and checks the
//! [`noc_sim::invariants`] oracle at each one.
//!
//! ## The transition system
//!
//! One explored transition is one simulated cycle driven by a
//! [`CycleAction`]: an optional injection (drawn from a fixed set of
//! source→destination pairs, bounded by a packet budget) and an optional
//! controller firing with an adversarial auxiliary input `aux ∈ 0..A`.
//! `aux` is fed to the gating policy both as its cycle counter and as the
//! `Down_Up` most-degraded VC id, so a single branch covers every
//! round-robin rotation phase *and* every sensor election the downstream
//! router could report. `controller: None` models a control-epoch gap (no
//! gate command this cycle). Every policy shipped by `sensorwise` is
//! internally stateless, which is what makes this parameterisation
//! exhaustive.
//!
//! States are deduplicated by the FNV-hashed canonical encoding of
//! [`noc_sim::explore`] (plus the remaining injection budget and the
//! fault-armed flag, which are part of the explorer's state but not the
//! network's). With [`ExploreConfig::symmetry`] the encoding is minimised
//! over mesh reflections and VC permutations first.
//!
//! ## Counterexamples
//!
//! The frontier stores action paths, not network clones; any state is
//! rebuilt by replaying its path from the pristine network. A violating
//! path is therefore directly replayable — [`Counterexample::to_jsonl`]
//! re-runs it under a recording telemetry sink and lowers the run to the
//! standard JSONL trace stream, so `nbti-noc stats --trace` debugs model
//! checker findings with the exact tooling used for simulation traces.

#![deny(missing_debug_implementations)]

use noc_sim::explore::{encode, encode_canonical, fnv1a_64};
use noc_sim::prelude::*;
use noc_telemetry::{EventLog, NullSink, RecordSink, TraceSink};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// A per-port gating controller as seen by the explorer: maps the
/// adversarial auxiliary input and a port view to an `Up_Down` payload.
///
/// Adapters (e.g. `sensorwise`'s `PolicyKind`) wrap their policy so that
/// `aux` stands in for every nondeterministic input the policy consumes.
pub type Controller<'a> = dyn FnMut(usize, &PortView) -> GateAction + 'a;

/// Which protocol fault the test-only hooks inject along every explored
/// path (at the first cycle where the corruption is possible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Power-gate the first VC that holds a flit (gating safety).
    GateOccupiedVc,
    /// Grant one spurious credit (credit conservation).
    DoubleCredit,
    /// Silently discard a buffered flit (flit + credit conservation).
    DropFlit,
}

impl FaultKind {
    /// Stable identifier, used by `nbti-noc verify --inject-fault`.
    pub fn id(self) -> &'static str {
        match self {
            FaultKind::GateOccupiedVc => "gate-occupied",
            FaultKind::DoubleCredit => "double-credit",
            FaultKind::DropFlit => "drop-flit",
        }
    }

    /// Parses the identifier form accepted by the CLI.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted identifiers.
    pub fn parse(name: &str) -> Result<FaultKind, String> {
        match name {
            "gate-occupied" => Ok(FaultKind::GateOccupiedVc),
            "double-credit" => Ok(FaultKind::DoubleCredit),
            "drop-flit" => Ok(FaultKind::DropFlit),
            other => Err(format!(
                "unknown fault `{other}` (try gate-occupied, double-credit, drop-flit)"
            )),
        }
    }

    /// The invariant the fault is designed to break — what the explorer
    /// must report for the harness to count the find.
    pub fn expected_invariant(self) -> InvariantKind {
        match self {
            FaultKind::GateOccupiedVc => InvariantKind::GatingSafety,
            FaultKind::DoubleCredit => InvariantKind::CreditConservation,
            FaultKind::DropFlit => InvariantKind::FlitConservation,
        }
    }
}

/// The explorer's configuration: the mesh under test plus the exploration
/// bounds and the interleaving alphabet.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// The network configuration. Keep it tiny: state counts grow with
    /// every buffer slot and VC.
    pub noc: NocConfig,
    /// Maximum explored path length in cycles. States discovered *at* this
    /// depth are counted and checked but not expanded, and the run is then
    /// reported as not exhausted.
    pub depth: usize,
    /// Deduplicate states up to mesh reflection and VC permutation (see
    /// [`noc_sim::explore::encode_canonical`] for the abstraction this
    /// buys and costs).
    pub symmetry: bool,
    /// The injection alphabet: each explored cycle may inject one packet
    /// from this list (or none).
    pub injections: Vec<(NodeId, NodeId)>,
    /// Length in flits of every injected packet.
    pub packet_len: usize,
    /// Total packets injected along any one path. This is what makes the
    /// reachable state space finite.
    pub max_packets: usize,
    /// Number of adversarial auxiliary inputs branched per controller
    /// firing (cover `0..vcs_per_port` for sensor-driven policies).
    pub aux_choices: usize,
    /// The idle-on budget asserted after every controller firing
    /// ([`Network::check_idle_on_budget`]); `None` for unbudgeted policies.
    pub idle_on_budget: Option<usize>,
    /// Hard cap on the seen-set size; hitting it ends the run as not
    /// exhausted.
    pub max_states: usize,
    /// Optional protocol fault armed along every path (test harness and
    /// CI counterexample smoke).
    pub fault: Option<FaultKind>,
}

impl ExploreConfig {
    /// The reference exhaustive configuration: 2×2 mesh, 2 VCs, depth-2
    /// buffers, two 2-flit packets crossing on the diagonal.
    pub fn small() -> Self {
        ExploreConfig {
            noc: NocConfig {
                cols: 2,
                rows: 2,
                vcs_per_port: 2,
                buffer_depth: 2,
                flits_per_packet: 2,
                link_latency: 1,
                credit_latency: 1,
                wakeup_latency: 1,
                ..NocConfig::default()
            },
            depth: 28,
            symmetry: false,
            injections: vec![(NodeId(0), NodeId(3)), (NodeId(3), NodeId(0))],
            packet_len: 2,
            max_packets: 2,
            aux_choices: 2,
            idle_on_budget: None,
            max_states: 1_000_000,
            fault: None,
        }
    }
}

/// One explored transition: what happens during one simulated cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleAction {
    /// Index into [`ExploreConfig::injections`] of the packet injected at
    /// the start of the cycle, if any.
    pub inject: Option<u8>,
    /// The auxiliary input the controller fires with this cycle, or `None`
    /// for a control-epoch gap (no gate commands).
    pub controller: Option<u8>,
}

impl fmt::Display for CycleAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inject {
            Some(i) => write!(f, "inject[{i}]")?,
            None => write!(f, "-")?,
        }
        match self.controller {
            Some(a) => write!(f, "/gate(aux={a})"),
            None => write!(f, "/-"),
        }
    }
}

/// A pluggable invariant oracle, consulted after every explored cycle.
pub trait InvariantOracle {
    /// Called once before each path replay (paths are rebuilt from the
    /// pristine network, so any path-local oracle state starts over).
    fn reset(&mut self);

    /// Returns the violations detected during the cycle that just
    /// finished. A non-empty result makes the path a counterexample.
    fn after_cycle(&mut self, net: &mut Network<NullSink>) -> Vec<InvariantViolation>;
}

/// The standard oracle: everything `noc_sim::invariants` checks at
/// [`InvariantLevel::Full`] — gating safety, flit conservation, VC state
/// consistency, credit conservation, duty closure — plus the per-policy
/// idle-on budget asserted by the explorer's controller slot.
#[derive(Debug, Default, Clone, Copy)]
pub struct StandardOracle;

impl InvariantOracle for StandardOracle {
    fn reset(&mut self) {}

    fn after_cycle(&mut self, net: &mut Network<NullSink>) -> Vec<InvariantViolation> {
        net.take_violations()
    }
}

/// A violating path and the violations its final cycle produced.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The shortest action sequence (BFS order) reaching the violation.
    pub path: Vec<CycleAction>,
    /// What the oracle reported at the path's final cycle.
    pub violations: Vec<InvariantViolation>,
}

/// What the explorer did and found.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Unique states discovered (after deduplication), root included.
    pub unique_states: usize,
    /// Transitions executed (cycles simulated for expansion, excluding
    /// path-rebuild replays).
    pub transitions: usize,
    /// Transitions whose successor was already in the seen-set.
    pub deduplicated: usize,
    /// Length of the longest discovered path.
    pub depth_reached: usize,
    /// `true` when the reachable state space closed below every bound —
    /// no depth-capped state, no seen-set overflow, no counterexample.
    pub exhausted: bool,
    /// Largest frontier length observed.
    pub peak_frontier: usize,
    /// Final seen-set size (equals [`ExploreReport::unique_states`]).
    pub peak_seen: usize,
    /// The first (shortest) violating path found, if any.
    pub counterexample: Option<Counterexample>,
}

impl ExploreReport {
    /// The one-line summary `nbti-noc verify` prints per policy.
    pub fn summary(&self) -> String {
        let closure = if self.counterexample.is_some() {
            "VIOLATION"
        } else if self.exhausted {
            "exhausted"
        } else {
            "bounded"
        };
        format!(
            "{} unique states, {} transitions, {} deduplicated, depth {}, {}",
            self.unique_states, self.transitions, self.deduplicated, self.depth_reached, closure
        )
    }
}

/// Runs one cycle of the transition system on `net`.
///
/// The order inside the cycle mirrors the experiment harness drive loop:
/// injection enqueues at the NIC, `begin_cycle` absorbs credits and
/// delivers flits, the controller slot applies gate commands mid-cycle
/// (and, when it fired, asserts the idle-on budget — the budget invariant
/// holds exactly after gate decisions are applied), `finish_cycle` runs
/// allocation and traversal. An armed fault fires before `begin_cycle` at
/// the first cycle where its corruption is possible, once per path.
pub fn run_cycle<T: TraceSink>(
    net: &mut Network<T>,
    action: CycleAction,
    ctrl: &mut Controller<'_>,
    cfg: &ExploreConfig,
    fault_fired: &mut bool,
) {
    if let Some(i) = action.inject {
        let (src, dst) = cfg.injections[i as usize];
        net.inject_packet_with_len(src, dst, cfg.packet_len);
    }
    if let Some(kind) = cfg.fault {
        if !*fault_fired {
            *fault_fired = match kind {
                FaultKind::GateOccupiedVc => net.fault_gate_occupied_vc().is_some(),
                FaultKind::DropFlit => net.fault_drop_buffered_flit().is_some(),
                FaultKind::DoubleCredit => {
                    let port = net.port_ids()[0];
                    net.fault_double_credit(port, 0);
                    true
                }
            };
            if *fault_fired {
                // Judge the corruption at its injection point: simulating
                // through it would hit the simulator's hard asserts (e.g.
                // delivering a flit into the gated buffer) instead of the
                // recording invariant checker.
                net.check_invariants_now();
                if !net.violations().is_empty() {
                    return;
                }
            }
        }
    }
    net.begin_cycle();
    if let Some(aux) = action.controller {
        let ports = net.port_ids().to_vec();
        for &pid in &ports {
            let view = net.port_view(pid);
            let gate = ctrl(aux as usize, &view);
            net.apply_gate(pid, gate);
        }
        if let Some(budget) = cfg.idle_on_budget {
            for &pid in &ports {
                net.check_idle_on_budget(pid, budget);
            }
        }
    }
    net.finish_cycle();
}

/// Rebuilds the network a path leads to by replaying it from the pristine
/// configuration. Exposed so tests can cross-check explorer states against
/// networks driven through the public API.
pub fn replay_path(
    cfg: &ExploreConfig,
    ctrl: &mut Controller<'_>,
    path: &[CycleAction],
) -> Network<NullSink> {
    let mut net = fresh(cfg);
    let mut fault_fired = false;
    for &action in path {
        run_cycle(&mut net, action, ctrl, cfg, &mut fault_fired);
        net.take_violations();
    }
    net
}

fn fresh(cfg: &ExploreConfig) -> Network<NullSink> {
    // lint:allow(no-unwrap) config validity is checked once, before the search starts
    let mut net = Network::new(cfg.noc.clone()).expect("explore config must be valid");
    net.set_invariant_level(InvariantLevel::Full);
    net
}

/// The seen-set key: the (canonical) state encoding extended with the
/// explorer-level state the network bytes cannot see — the remaining
/// injection budget and whether the armed fault already fired.
fn state_key<T: TraceSink>(
    net: &Network<T>,
    cfg: &ExploreConfig,
    remaining_budget: usize,
    fault_fired: bool,
) -> u64 {
    let mut bytes = if cfg.symmetry {
        encode_canonical(net)
    } else {
        encode(net)
    };
    bytes.push(remaining_budget.min(255) as u8);
    bytes.push(u8::from(fault_fired));
    fnv1a_64(&bytes)
}

/// The actions available from a state with `remaining_budget` injections
/// left, in deterministic order.
fn enumerate_actions(cfg: &ExploreConfig, remaining_budget: usize) -> Vec<CycleAction> {
    let mut injects: Vec<Option<u8>> = vec![None];
    if remaining_budget > 0 {
        injects.extend((0..cfg.injections.len()).map(|i| Some(i as u8)));
    }
    let mut controllers: Vec<Option<u8>> = vec![None];
    controllers.extend((0..cfg.aux_choices).map(|a| Some(a as u8)));
    let mut out = Vec::with_capacity(injects.len() * controllers.len());
    for &inject in &injects {
        for &controller in &controllers {
            out.push(CycleAction { inject, controller });
        }
    }
    out
}

/// Breadth-first exploration of every state reachable from the pristine
/// network under every interleaving of injections, controller firings and
/// control-epoch gaps. Stops at the first invariant violation (the BFS
/// order makes its path the shortest counterexample), at the depth bound,
/// or at the seen-set cap.
pub fn explore(
    cfg: &ExploreConfig,
    ctrl: &mut Controller<'_>,
    oracle: &mut dyn InvariantOracle,
) -> ExploreReport {
    let root = fresh(cfg);
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    seen.insert(state_key(&root, cfg, cfg.max_packets, false));

    // The frontier stores action paths only; states are rebuilt by replay.
    // Memory stays proportional to path bytes, not network clones.
    let mut frontier: VecDeque<Vec<CycleAction>> = VecDeque::new();
    frontier.push_back(Vec::new());

    let mut report = ExploreReport {
        unique_states: 1,
        transitions: 0,
        deduplicated: 0,
        depth_reached: 0,
        exhausted: true,
        peak_frontier: 1,
        peak_seen: 1,
        counterexample: None,
    };

    while let Some(path) = frontier.pop_front() {
        if path.len() >= cfg.depth {
            // Only possible for the root at depth 0; deeper paths are
            // never enqueued past the horizon.
            report.exhausted = false;
            continue;
        }
        // Rebuild the parent state from its path.
        let mut parent = fresh(cfg);
        let mut fault_fired = false;
        let mut budget = cfg.max_packets;
        oracle.reset();
        for &action in &path {
            if action.inject.is_some() {
                budget -= 1;
            }
            run_cycle(&mut parent, action, ctrl, cfg, &mut fault_fired);
            // Already judged when this prefix was first discovered.
            let _ = oracle.after_cycle(&mut parent);
        }

        for action in enumerate_actions(cfg, budget) {
            let mut child = parent.clone();
            let mut child_fault = fault_fired;
            run_cycle(&mut child, action, ctrl, cfg, &mut child_fault);
            report.transitions += 1;

            let violations = oracle.after_cycle(&mut child);
            if !violations.is_empty() {
                let mut cx_path = path.clone();
                cx_path.push(action);
                report.depth_reached = report.depth_reached.max(cx_path.len());
                report.exhausted = false;
                report.counterexample = Some(Counterexample {
                    path: cx_path,
                    violations,
                });
                return report;
            }

            let child_budget = budget - usize::from(action.inject.is_some());
            let key = state_key(&child, cfg, child_budget, child_fault);
            if !seen.insert(key) {
                report.deduplicated += 1;
                continue;
            }
            report.unique_states += 1;
            report.depth_reached = report.depth_reached.max(path.len() + 1);
            if path.len() + 1 < cfg.depth {
                let mut child_path = path.clone();
                child_path.push(action);
                frontier.push_back(child_path);
            } else {
                // A new state sits at the depth horizon: its successors
                // are unknown, so the space did not provably close.
                report.exhausted = false;
            }
            if report.unique_states >= cfg.max_states {
                report.exhausted = false;
                frontier.clear();
                break;
            }
        }
        report.peak_frontier = report.peak_frontier.max(frontier.len());
    }

    report.peak_seen = seen.len();
    report.exhausted = report.exhausted && report.counterexample.is_none();
    report
}

impl Counterexample {
    /// Replays the counterexample under a recording telemetry sink and
    /// returns the harvested event log. The log ends with the `violation`
    /// events of the final cycle.
    pub fn events(&self, cfg: &ExploreConfig, ctrl: &mut Controller<'_>) -> EventLog {
        let mut net = Network::with_sink(cfg.noc.clone(), RecordSink::unbounded())
            // lint:allow(no-unwrap) the same config already built the explored network
            .expect("explore config must be valid");
        net.set_invariant_level(InvariantLevel::Full);
        let mut fault_fired = false;
        for &action in &self.path {
            run_cycle(&mut net, action, ctrl, cfg, &mut fault_fired);
        }
        net.trace_mut()
            .harvest()
            // lint:allow(no-unwrap) RecordSink::harvest is Some by contract
            .expect("a record sink always harvests")
    }

    /// Lowers the counterexample to the standard JSONL trace stream —
    /// directly consumable by `nbti-noc stats --trace`.
    pub fn to_jsonl(&self, cfg: &ExploreConfig, ctrl: &mut Controller<'_>) -> String {
        let log = self.events(cfg, ctrl);
        let mut out = String::new();
        for event in &log.events {
            event.write_jsonl(&mut out);
        }
        out
    }

    /// A human-readable rendering of the violating interleaving.
    pub fn describe(&self) -> String {
        let steps: Vec<String> = self.path.iter().map(|a| a.to_string()).collect();
        let kinds: Vec<&str> = self.violations.iter().map(|v| v.kind.id()).collect();
        format!(
            "violated {} after {} cycles: [{}]",
            kinds.join("+"),
            self.path.len(),
            steps.join(" ")
        )
    }
}

/// The all-on controller (the baseline policy's behaviour) — handy for
/// tests and as the degenerate adversary.
pub fn all_on_controller() -> impl FnMut(usize, &PortView) -> GateAction {
    |_aux, _view| GateAction::AllOn
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExploreConfig {
        // One packet, shallow depth: a sub-second smoke configuration.
        let mut cfg = ExploreConfig::small();
        cfg.max_packets = 1;
        cfg.depth = 8;
        cfg
    }

    #[test]
    fn exploration_is_deterministic() {
        let cfg = tiny();
        let a = explore(&cfg, &mut all_on_controller(), &mut StandardOracle);
        let b = explore(&cfg, &mut all_on_controller(), &mut StandardOracle);
        assert_eq!(a.unique_states, b.unique_states);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.deduplicated, b.deduplicated);
        assert!(a.counterexample.is_none());
    }

    #[test]
    fn the_root_state_counts() {
        let mut cfg = tiny();
        cfg.depth = 0;
        let report = explore(&cfg, &mut all_on_controller(), &mut StandardOracle);
        assert_eq!(report.unique_states, 1);
        assert_eq!(report.transitions, 0);
        assert!(!report.exhausted, "the root's successors are unknown");
    }

    #[test]
    fn deeper_bounds_discover_at_least_as_many_states() {
        let mut shallow = tiny();
        shallow.depth = 3;
        let mut deep = tiny();
        deep.depth = 5;
        let a = explore(&shallow, &mut all_on_controller(), &mut StandardOracle);
        let b = explore(&deep, &mut all_on_controller(), &mut StandardOracle);
        assert!(b.unique_states >= a.unique_states);
        assert!(!a.exhausted, "depth 3 cannot close a 1-packet space");
    }

    #[test]
    fn symmetry_reduces_or_preserves_the_state_count() {
        let plain = tiny();
        let mut sym = tiny();
        sym.symmetry = true;
        let a = explore(&plain, &mut all_on_controller(), &mut StandardOracle);
        let b = explore(&sym, &mut all_on_controller(), &mut StandardOracle);
        assert!(
            b.unique_states <= a.unique_states,
            "symmetry must never add states ({} > {})",
            b.unique_states,
            a.unique_states
        );
    }

    #[test]
    fn a_double_credit_fault_is_found_immediately() {
        let mut cfg = tiny();
        cfg.fault = Some(FaultKind::DoubleCredit);
        let report = explore(&cfg, &mut all_on_controller(), &mut StandardOracle);
        let cx = report.counterexample.expect("fault must be caught");
        assert_eq!(cx.path.len(), 1, "the very first cycle detects it");
        assert!(cx
            .violations
            .iter()
            .any(|v| v.kind == InvariantKind::CreditConservation));
    }

    #[test]
    fn replaying_a_counterexample_reproduces_the_violation() {
        let mut cfg = tiny();
        cfg.fault = Some(FaultKind::DoubleCredit);
        let report = explore(&cfg, &mut all_on_controller(), &mut StandardOracle);
        let cx = report.counterexample.expect("fault must be caught");
        let mut net = fresh(&cfg);
        let mut fault_fired = false;
        for &action in &cx.path {
            run_cycle(&mut net, action, &mut all_on_controller(), &cfg, &mut fault_fired);
        }
        let replayed = net.take_violations();
        assert_eq!(
            replayed.iter().map(|v| v.kind).collect::<Vec<_>>(),
            cx.violations.iter().map(|v| v.kind).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn fault_ids_round_trip_through_parse() {
        for kind in [
            FaultKind::GateOccupiedVc,
            FaultKind::DoubleCredit,
            FaultKind::DropFlit,
        ] {
            assert_eq!(FaultKind::parse(kind.id()), Ok(kind));
        }
        assert!(FaultKind::parse("nope").is_err());
    }
}
