//! Fault-injection tests for the runtime invariant checker.
//!
//! Each test deliberately corrupts one protocol property through the
//! `#[doc(hidden)]` fault hooks on `Network` and asserts that the checker
//! reports the corruption with the right [`InvariantKind`] diagnostic —
//! and that an uncorrupted run stays violation-free at `Full` level.

use noc_sim::invariants::{InvariantKind, InvariantLevel};
use noc_sim::prelude::*;

/// A 2×2 mesh with 2 VCs and all-to-all traffic, invariants at `Full`.
fn loaded_network() -> Network {
    let mut net = Network::new(NocConfig::paper_synthetic(4, 2)).expect("valid config");
    net.set_invariant_level(InvariantLevel::Full);
    for src in 0..4 {
        for dst in 0..4 {
            if src != dst {
                net.inject_packet(NodeId(src), NodeId(dst));
            }
        }
    }
    net
}

/// Steps `net` until `fault` succeeds (the fault hooks mutate nothing when
/// they return `None`, so probing every cycle is safe).
fn step_until_fault<T>(net: &mut Network, mut fault: impl FnMut(&mut Network) -> Option<T>) -> T {
    for _ in 0..200 {
        net.step();
        if let Some(loc) = fault(net) {
            return loc;
        }
    }
    panic!("traffic never buffered a flit to corrupt");
}

fn kinds(net: &Network) -> Vec<InvariantKind> {
    net.violations().iter().map(|v| v.kind).collect()
}

#[test]
fn clean_run_has_zero_violations_at_full_level() {
    let mut net = Network::new(NocConfig::paper_synthetic(9, 2)).expect("valid config");
    net.set_invariant_level(InvariantLevel::Full);
    for src in 0..9 {
        net.inject_packet(NodeId(src), NodeId(8 - src));
    }
    net.step_cycles(300);
    assert!(net.stats().invariant_checks >= 300);
    assert_eq!(
        net.stats().invariant_violations,
        0,
        "clean traffic must not trip the checker: {:?}",
        net.violations()
    );
}

#[test]
fn gating_a_vc_holding_a_flit_is_reported() {
    let mut net = loaded_network();
    let loc = step_until_fault(&mut net, Network::fault_gate_occupied_vc);
    net.check_invariants_now();
    let ks = kinds(&net);
    assert!(
        ks.contains(&InvariantKind::GatingSafety),
        "expected gating-safety among {ks:?} after gating {loc:?}"
    );
    let diag = net
        .violations()
        .iter()
        .find(|v| v.kind == InvariantKind::GatingSafety)
        .expect("checked above");
    assert!(
        diag.detail.contains("power-gated but holds"),
        "diagnostic names the held flits: {diag}"
    );
}

#[test]
fn double_crediting_a_channel_is_reported() {
    let mut net = Network::new(NocConfig::paper_synthetic(4, 2)).expect("valid config");
    net.set_invariant_level(InvariantLevel::Full);
    let port = net.port_ids()[0];
    net.fault_double_credit(port, 1);
    net.check_invariants_now();
    let ks = kinds(&net);
    assert!(
        ks.contains(&InvariantKind::CreditConservation),
        "expected credit-conservation among {ks:?}"
    );
    let diag = net
        .violations()
        .iter()
        .find(|v| v.kind == InvariantKind::CreditConservation)
        .expect("checked above");
    assert!(
        diag.detail.contains("vc1") && diag.detail.contains("!= depth"),
        "diagnostic names the channel and the broken sum: {diag}"
    );
}

#[test]
fn dropping_a_buffered_flit_is_reported() {
    let mut net = loaded_network();
    step_until_fault(&mut net, Network::fault_drop_buffered_flit);
    net.check_invariants_now();
    let ks = kinds(&net);
    assert!(
        ks.contains(&InvariantKind::FlitConservation),
        "a vanished flit breaks flit conservation: {ks:?}"
    );
    assert!(
        ks.contains(&InvariantKind::CreditConservation),
        "a vanished flit also unbalances its channel: {ks:?}"
    );
}

#[test]
fn exceeding_the_idle_on_budget_is_reported() {
    let mut net = Network::new(NocConfig::paper_synthetic(4, 2)).expect("valid config");
    net.set_invariant_level(InvariantLevel::Cheap);
    // A fresh network has every VC idle and powered: any port with 2 VCs
    // has 2 idle-on VCs, which exceeds a budget of 1.
    let port = net.port_ids()[0];
    net.check_idle_on_budget(port, 1);
    let ks = kinds(&net);
    assert_eq!(ks, vec![InvariantKind::IdleOnBudget]);
    // A budget that covers all VCs passes.
    let mut ok = Network::new(NocConfig::paper_synthetic(4, 2)).expect("valid config");
    ok.set_invariant_level(InvariantLevel::Cheap);
    ok.check_idle_on_budget(port, 2);
    assert!(ok.violations().is_empty());
}

#[test]
fn violations_are_counted_beyond_the_record_cap() {
    let mut net = loaded_network();
    step_until_fault(&mut net, Network::fault_gate_occupied_vc);
    for _ in 0..100 {
        net.check_invariants_now();
    }
    let recorded = net.violations().len();
    assert!(recorded <= 64, "record cap respected, got {recorded}");
    assert!(
        net.stats().invariant_violations > recorded as u64,
        "the stats counter keeps counting past the cap"
    );
    let drained = net.take_violations();
    assert_eq!(drained.len(), recorded);
    assert!(net.violations().is_empty());
}

#[test]
fn off_level_skips_checking_entirely() {
    let mut net = loaded_network();
    step_until_fault(&mut net, Network::fault_gate_occupied_vc);
    net.set_invariant_level(InvariantLevel::Off);
    let checks_before = net.stats().invariant_checks;
    // check_idle_on_budget is a no-op when checking is off.
    let port = net.port_ids()[0];
    net.check_idle_on_budget(port, 0);
    assert_eq!(net.stats().invariant_checks, checks_before);
    assert!(net.violations().is_empty());
}
