//! Property-based tests of the simulator's building blocks.

use noc_sim::arbiter::RoundRobinArbiter;
use noc_sim::flit::{split_packet, PacketId};
use noc_sim::prelude::*;
use proptest::prelude::*;

proptest! {
    /// The arbiter only grants actual requesters and is starvation-free:
    /// over `n` consecutive rounds with a fixed request set, every
    /// requester wins at least once.
    #[test]
    fn arbiter_is_fair_and_sound(
        n in 1usize..12,
        mask in proptest::collection::vec(any::<bool>(), 1..12),
    ) {
        let n = n.min(mask.len());
        let mask = &mask[..n];
        let mut arb = RoundRobinArbiter::new(n);
        let requesters: Vec<usize> =
            (0..n).filter(|&i| mask[i]).collect();
        let mut wins = vec![0usize; n];
        for _ in 0..n {
            if let Some(g) = arb.grant(|i| mask[i]) {
                prop_assert!(mask[g], "granted a non-requester");
                wins[g] += 1;
            } else {
                prop_assert!(requesters.is_empty());
            }
        }
        for &r in &requesters {
            prop_assert!(wins[r] >= 1, "requester {r} starved: {wins:?}");
        }
    }

    /// Packet splitting: exactly one head, one tail, contiguous sequence
    /// numbers, and kind flags consistent with position.
    #[test]
    fn split_packet_is_well_formed(len in 1usize..40, src in 0usize..16, dst in 0usize..16) {
        let flits = split_packet(PacketId(1), NodeId(src), NodeId(dst), len, 5);
        prop_assert_eq!(flits.len(), len);
        prop_assert_eq!(flits.iter().filter(|f| f.is_head()).count(), 1);
        prop_assert_eq!(flits.iter().filter(|f| f.is_tail()).count(), 1);
        prop_assert!(flits[0].is_head());
        prop_assert!(flits[len - 1].is_tail());
        for (i, f) in flits.iter().enumerate() {
            prop_assert_eq!(f.seq as usize, i);
        }
    }

    /// Dimension-ordered routing always takes a minimal step: following the
    /// routed direction reduces the hop distance by exactly one.
    #[test]
    fn routing_is_minimal(
        cols in 1usize..6,
        rows in 1usize..6,
        a in 0usize..36,
        b in 0usize..36,
        yx in any::<bool>(),
    ) {
        let mesh = Mesh2D::new(cols, rows);
        let (a, b) = (a % mesh.num_nodes(), b % mesh.num_nodes());
        let (a, b) = (NodeId(a), NodeId(b));
        let alg = if yx { RoutingAlgorithm::YX } else { RoutingAlgorithm::XY };
        let mut cur = a;
        let mut steps = 0usize;
        while cur != b {
            let dir = alg.route(&mesh, cur, b);
            prop_assert_ne!(dir, Direction::Local);
            let next = mesh.neighbor(cur, dir).expect("stays in mesh");
            prop_assert_eq!(
                mesh.hop_distance(next, b) + 1,
                mesh.hop_distance(cur, b),
                "non-minimal step"
            );
            cur = next;
            steps += 1;
            prop_assert!(steps <= cols + rows, "routing loop");
        }
        prop_assert_eq!(steps, mesh.hop_distance(a, b));
    }

    /// Mesh coordinates and neighbour relations are mutually consistent.
    #[test]
    fn mesh_neighbors_are_consistent(cols in 1usize..8, rows in 1usize..8) {
        let mesh = Mesh2D::new(cols, rows);
        for node in mesh.nodes() {
            let mut degree = 0;
            for d in Direction::MESH {
                if let Some(n) = mesh.neighbor(node, d) {
                    degree += 1;
                    prop_assert_eq!(mesh.hop_distance(node, n), 1);
                    prop_assert_eq!(mesh.neighbor(n, d.opposite()), Some(node));
                }
            }
            let (x, y) = mesh.coords(node);
            let expect = usize::from(x > 0)
                + usize::from(x + 1 < cols)
                + usize::from(y > 0)
                + usize::from(y + 1 < rows);
            prop_assert_eq!(degree, expect);
        }
    }

    /// The network delivers every packet of a random batch and the latency
    /// of each hop count is at least the pipeline lower bound.
    #[test]
    fn batch_delivery_with_sane_latency(
        pairs in proptest::collection::vec((0usize..9, 0usize..9), 1..12),
    ) {
        let mut net = Network::new(NocConfig {
            cols: 3,
            rows: 3,
            vcs_per_port: 2,
            ..NocConfig::default()
        }).unwrap();
        for &(s, d) in &pairs {
            net.inject_packet(NodeId(s), NodeId(d));
        }
        for _ in 0..4_000 {
            net.step();
            if net.is_quiescent() {
                break;
            }
        }
        prop_assert!(net.is_quiescent());
        prop_assert_eq!(net.stats().packets_ejected, pairs.len() as u64);
        // Minimum latency: inject + at least one router traversal + eject.
        if let Some(avg) = net.stats().avg_latency() {
            prop_assert!(avg >= 5.0, "implausibly low latency {avg}");
        }
    }

    /// Permanently keeping a single designated VC still delivers all
    /// traffic (the paper's single-flit-per-cycle argument).
    #[test]
    fn single_designated_vc_suffices(
        pairs in proptest::collection::vec((0usize..4, 0usize..4), 1..10),
        vc in 0usize..2,
    ) {
        let mut net = Network::new(NocConfig::paper_synthetic(4, 2)).unwrap();
        for &(s, d) in &pairs {
            net.inject_packet(NodeId(s), NodeId(d));
        }
        for _ in 0..6_000 {
            net.begin_cycle();
            for pid in net.port_ids().to_vec() {
                net.apply_gate(pid, GateAction::KeepOneIdle { vc });
            }
            net.finish_cycle();
            if net.is_quiescent() {
                break;
            }
        }
        prop_assert!(net.is_quiescent(), "gated network failed to drain");
        prop_assert_eq!(net.stats().packets_ejected, pairs.len() as u64);
    }
}
