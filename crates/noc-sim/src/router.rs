//! The 3-stage virtual-channel router.
//!
//! Pipeline (mirroring the Garnet `Router_d` the paper builds on):
//!
//! 1. **BW + RC** — an arriving flit is written into its input VC buffer;
//!    head flits are routed (dimension-ordered).
//! 2. **VA + SA** — head flits in `Waiting` VCs arbitrate for a free output
//!    VC; VCs in `Active` state with a ready flit and downstream credits
//!    arbitrate for the crossbar (separable input-first allocator).
//! 3. **ST + LT** — the winning flits traverse switch and link; they are
//!    written downstream `1 + link_latency` cycles after winning SA.
//!
//! Stage 1 and the cross-router parts of stage 3 live in
//! [`crate::network::Network`]; this module owns the router-local state and
//! the VA/SA logic.

use crate::arbiter::RoundRobinArbiter;
use crate::invariants::{InvariantKind, InvariantViolation};
use crate::types::{Direction, NodeId};
use crate::unit::{InVcState, InputUnit, OutVcState, OutputUnit};
use noc_telemetry::{EventKind, TraceEvent, TraceSink, WorkCounters};

/// Number of ports (N, S, E, W, Local).
pub(crate) const NUM_PORTS: usize = 5;

/// A flit selected by the switch allocator this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SaWinner {
    pub in_port: usize,
    pub vc: usize,
    pub out_port: usize,
    pub out_vc: usize,
}

/// One router of the mesh.
#[derive(Debug, Clone)]
pub(crate) struct Router {
    /// Input units indexed by [`Direction::index`].
    pub inputs: Vec<InputUnit>,
    /// Output units indexed by [`Direction::index`].
    pub outputs: Vec<OutputUnit>,
    /// Per-input-port switch-allocation arbiters (over VCs).
    pub sa_in_arbs: Vec<RoundRobinArbiter>,
}

impl Router {
    /// Creates a router. `connected[d]` tells whether the mesh port in
    /// direction `d` has a neighbour; the local port is always connected.
    pub fn new(num_vcs: usize, depth: usize, connected: [bool; NUM_PORTS]) -> Self {
        Router {
            inputs: (0..NUM_PORTS)
                .map(|p| InputUnit::new(num_vcs, depth, connected[p]))
                .collect(),
            outputs: (0..NUM_PORTS)
                .map(|p| OutputUnit::new(num_vcs, depth, NUM_PORTS, connected[p]))
                .collect(),
            sa_in_arbs: (0..NUM_PORTS)
                .map(|_| RoundRobinArbiter::new(num_vcs))
                .collect(),
        }
    }

    /// Number of VCs per port.
    pub fn num_vcs(&self) -> usize {
        self.inputs[0].vcs.len()
    }

    /// `true` when at least one buffered head flit routed to `out_dir` has
    /// no output VC allocated yet — the paper's
    /// `is_new_traffic_outport_x()` predicate.
    pub fn has_new_traffic(&self, out_dir: Direction) -> bool {
        self.inputs.iter().any(|unit| {
            unit.vcs
                .iter()
                .any(|vc| matches!(vc.state, InVcState::Waiting { outport } if outport == out_dir))
        })
    }

    /// The VA stage: grants free, allocatable output VCs to waiting head
    /// flits. Under a gating policy at most one output VC per port is
    /// allocatable, matching the paper's single-new-VC-per-cycle property.
    ///
    /// Counts every grant into `work` and (when the sink is active) emits
    /// one [`EventKind::VaGrant`] per grant.
    pub fn vc_allocation<T: TraceSink>(
        &mut self,
        now: u64,
        depth: usize,
        node: NodeId,
        work: &mut WorkCounters,
        trace: &mut T,
    ) {
        let num_vcs = self.num_vcs();
        let inputs = &mut self.inputs;
        for (out_idx, out) in self.outputs.iter_mut().enumerate() {
            if !out.connected {
                continue;
            }
            let out_dir = Direction::from_index(out_idx);
            while let Some(ovc) = out
                .vcs
                .iter()
                .position(|v| v.state == OutVcState::Idle && v.allocatable && v.usable_at <= now)
            {
                let inputs_ref = &*inputs;
                let grant = out.va_arb.grant(|g| {
                    let (p, v) = (g / num_vcs, g % num_vcs);
                    let ivc = &inputs_ref.vcs_at(p, v);
                    ivc.va_ready_at <= now
                        && matches!(ivc.state, InVcState::Waiting { outport } if outport == out_dir)
                });
                let Some(g) = grant else { break };
                let (p, v) = (g / num_vcs, g % num_vcs);
                let ivc = &mut inputs[p].vcs[v];
                let InVcState::Waiting { outport } = ivc.state else {
                    unreachable!("VA granted a non-waiting VC");
                };
                ivc.state = InVcState::Active {
                    outport,
                    out_vc: ovc,
                };
                debug_assert_eq!(
                    out.vcs[ovc].credits, depth,
                    "an idle out VC must hold all its credits"
                );
                out.vcs[ovc].state = OutVcState::Active;
                work.va_grants += 1;
                if T::ACTIVE {
                    trace.emit(TraceEvent {
                        cycle: now,
                        kind: EventKind::VaGrant {
                            node: node.index() as u32,
                            in_port: p as u8,
                            vc: v as u8,
                            out_port: out_idx as u8,
                            out_vc: ovc as u8,
                        },
                    });
                }
            }
        }
    }

    /// The SA stage: a separable, input-first allocator. Returns the
    /// winner (if any) per output port — a fixed array so the per-cycle
    /// SA stage never allocates.
    #[allow(clippy::needless_range_loop)] // `p` indexes three parallel arrays
    pub fn switch_allocation(&mut self, now: u64) -> [Option<SaWinner>; NUM_PORTS] {
        // Input phase: each input port nominates one ready VC.
        let mut nominees: [Option<SaWinner>; NUM_PORTS] = [None; NUM_PORTS];
        for p in 0..NUM_PORTS {
            let unit = &self.inputs[p];
            let outputs = &self.outputs;
            let got = self.sa_in_arbs[p].grant(|v| {
                let ivc = &unit.vcs[v];
                let InVcState::Active { outport, out_vc } = ivc.state else {
                    return false;
                };
                match ivc.buffer.front() {
                    Some(front) => {
                        front.ready_at <= now && outputs[outport.index()].vcs[out_vc].credits > 0
                    }
                    None => false,
                }
            });
            if let Some(v) = got {
                let InVcState::Active { outport, out_vc } = unit.vcs[v].state else {
                    unreachable!();
                };
                nominees[p] = Some(SaWinner {
                    in_port: p,
                    vc: v,
                    out_port: outport.index(),
                    out_vc,
                });
            }
        }
        // Output phase: each output port admits one nominee.
        let mut winners: [Option<SaWinner>; NUM_PORTS] = [None; NUM_PORTS];
        for out_idx in 0..NUM_PORTS {
            let nominees_ref = &nominees;
            let got = self.outputs[out_idx]
                .sa_arb
                .grant(|p| matches!(nominees_ref[p], Some(w) if w.out_port == out_idx));
            if let Some(p) = got {
                // The grant closure only admits ports whose nominee is Some.
                winners[out_idx] = nominees[p];
            }
        }
        winners
    }

    /// Appends every invariant violation visible from this router's local
    /// state to `out`: gating safety always, VC state-machine consistency
    /// when `full`.
    pub fn collect_violations(
        &self,
        node: NodeId,
        cycle: u64,
        full: bool,
        out: &mut Vec<InvariantViolation>,
    ) {
        for (p, unit) in self.inputs.iter().enumerate() {
            let dir = Direction::from_index(p);
            // lint:allow(alloc-in-hot-path) diagnostic pass: only runs with invariants enabled
            unit.collect_gating_violations(cycle, &format!("router {node} in-{dir}"), out);
            if !full {
                continue;
            }
            for (v, vc) in unit.vcs.iter().enumerate() {
                if let InVcState::Active { outport, out_vc } = vc.state {
                    let ovc = &self.outputs[outport.index()].vcs[out_vc];
                    if ovc.state != OutVcState::Active {
                        // lint:allow(alloc-in-hot-path) cold branch: only runs on a violation
                        out.push(InvariantViolation {
                            cycle,
                            kind: InvariantKind::VcStateConsistency,
                            // lint:allow(alloc-in-hot-path) cold branch: only runs on a violation
                            detail: format!(
                                "router {node} in-{dir} vc{v} is active on out-{outport} \
                                 vc{out_vc}, which is {:?}",
                                ovc.state
                            ),
                        });
                    }
                }
            }
        }
    }

    /// Total flits buffered across all input units.
    pub fn buffered_flits(&self) -> usize {
        self.inputs.iter().map(super::unit::InputUnit::buffered_flits).sum()
    }

    /// Total flits in flight on incoming links.
    pub fn in_flight_flits(&self) -> usize {
        self.inputs.iter().map(super::unit::InputUnit::in_flight_flits).sum()
    }
}

/// Helper to express "index twice" inside the VA closure without capturing
/// a mutable borrow.
trait VcsAt {
    fn vcs_at(&self, port: usize, vc: usize) -> &crate::unit::InputVc;
}

impl VcsAt for Vec<InputUnit> {
    fn vcs_at(&self, port: usize, vc: usize) -> &crate::unit::InputVc {
        &self[port].vcs[vc]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{split_packet, PacketId};
    use crate::types::NodeId;

    fn router(num_vcs: usize) -> Router {
        Router::new(num_vcs, 4, [true; NUM_PORTS])
    }

    fn va(r: &mut Router, now: u64) {
        r.vc_allocation(
            now,
            4,
            NodeId(0),
            &mut WorkCounters::default(),
            &mut noc_telemetry::NullSink,
        );
    }

    fn put_waiting_head(r: &mut Router, in_port: usize, vc: usize, outport: Direction, now: u64) {
        let mut f = split_packet(PacketId(vc as u64 + 100), NodeId(0), NodeId(1), 3, 0)[0];
        f.vc = vc;
        r.inputs[in_port].write_flit(f, now, 4);
        r.inputs[in_port].vcs[vc].state = InVcState::Waiting { outport };
    }

    #[test]
    fn new_traffic_predicate_sees_waiting_heads() {
        let mut r = router(2);
        assert!(!r.has_new_traffic(Direction::East));
        put_waiting_head(&mut r, Direction::West.index(), 0, Direction::East, 0);
        assert!(r.has_new_traffic(Direction::East));
        assert!(!r.has_new_traffic(Direction::North));
        // Allocated VCs no longer count as new traffic.
        r.inputs[Direction::West.index()].vcs[0].state = InVcState::Active {
            outport: Direction::East,
            out_vc: 0,
        };
        assert!(!r.has_new_traffic(Direction::East));
    }

    #[test]
    fn va_grants_free_allocatable_vc() {
        let mut r = router(2);
        put_waiting_head(&mut r, Direction::West.index(), 0, Direction::East, 0);
        va(&mut r, 1);
        let st = r.inputs[Direction::West.index()].vcs[0].state;
        assert!(matches!(
            st,
            InVcState::Active {
                outport: Direction::East,
                out_vc: 0
            }
        ));
        assert_eq!(
            r.outputs[Direction::East.index()].vcs[0].state,
            OutVcState::Active
        );
    }

    #[test]
    fn va_respects_va_ready_cycle() {
        let mut r = router(2);
        put_waiting_head(&mut r, Direction::West.index(), 0, Direction::East, 5);
        // va_ready_at is 6; VA at cycle 5 must not grant.
        va(&mut r, 5);
        assert!(matches!(
            r.inputs[Direction::West.index()].vcs[0].state,
            InVcState::Waiting { .. }
        ));
        va(&mut r, 6);
        assert!(matches!(
            r.inputs[Direction::West.index()].vcs[0].state,
            InVcState::Active { .. }
        ));
    }

    #[test]
    fn va_respects_allocatable_mask() {
        let mut r = router(2);
        put_waiting_head(&mut r, Direction::West.index(), 0, Direction::East, 0);
        for vc in &mut r.outputs[Direction::East.index()].vcs {
            vc.allocatable = false;
        }
        va(&mut r, 1);
        assert!(matches!(
            r.inputs[Direction::West.index()].vcs[0].state,
            InVcState::Waiting { .. }
        ));
        // Re-enable only VC 1: the head must land there.
        r.outputs[Direction::East.index()].vcs[1].allocatable = true;
        va(&mut r, 2);
        assert!(matches!(
            r.inputs[Direction::West.index()].vcs[0].state,
            InVcState::Active { out_vc: 1, .. }
        ));
    }

    #[test]
    fn va_is_fair_across_requesters() {
        let mut r = router(2);
        // Two waiting heads from different ports racing for East.
        put_waiting_head(&mut r, Direction::West.index(), 0, Direction::East, 0);
        put_waiting_head(&mut r, Direction::North.index(), 0, Direction::East, 0);
        va(&mut r, 1);
        // Both get VCs this cycle (two free out VCs under AllOn).
        assert!(matches!(
            r.inputs[Direction::North.index()].vcs[0].state,
            InVcState::Active { .. }
        ));
        assert!(matches!(
            r.inputs[Direction::West.index()].vcs[0].state,
            InVcState::Active { .. }
        ));
    }

    #[test]
    fn sa_moves_at_most_one_flit_per_output() {
        let mut r = router(2);
        put_waiting_head(&mut r, Direction::West.index(), 0, Direction::East, 0);
        put_waiting_head(&mut r, Direction::North.index(), 0, Direction::East, 0);
        va(&mut r, 1);
        let winners = r.switch_allocation(1);
        let granted: Vec<SaWinner> = winners.into_iter().flatten().collect();
        assert_eq!(granted.len(), 1, "one grant per output port");
        assert_eq!(granted[0].out_port, Direction::East.index());
    }

    #[test]
    fn sa_requires_credits() {
        let mut r = router(2);
        put_waiting_head(&mut r, Direction::West.index(), 0, Direction::East, 0);
        va(&mut r, 1);
        r.outputs[Direction::East.index()].vcs[0].credits = 0;
        assert!(r.switch_allocation(1).iter().all(Option::is_none));
    }

    #[test]
    fn sa_respects_flit_readiness() {
        let mut r = router(2);
        put_waiting_head(&mut r, Direction::West.index(), 0, Direction::East, 10);
        va(&mut r, 11);
        // Flit ready_at = 11; SA at 10 would be too early (cannot happen in
        // practice, but the guard must hold).
        assert!(r.switch_allocation(10).iter().all(Option::is_none));
        assert_eq!(r.switch_allocation(11).iter().flatten().count(), 1);
    }

    #[test]
    fn distinct_outputs_proceed_in_parallel() {
        let mut r = router(2);
        put_waiting_head(&mut r, Direction::West.index(), 0, Direction::East, 0);
        put_waiting_head(&mut r, Direction::East.index(), 0, Direction::West, 0);
        va(&mut r, 1);
        let winners = r.switch_allocation(1);
        assert_eq!(winners.iter().flatten().count(), 2);
    }
}
