//! Runtime invariant checking for the sensor-wise gating protocol.
//!
//! The simulator's correctness argument rests on a handful of properties
//! that are true *by construction* — until a refactor, a new policy, or a
//! perf optimisation silently breaks one. This module turns them into
//! machine-checked invariants that [`crate::network::Network`] evaluates at
//! the end of every cycle when a non-[`Off`](InvariantLevel::Off) level is
//! selected:
//!
//! | Invariant | Level | Paper anchor |
//! |---|---|---|
//! | *gating safety* — a power-gated VC holds no flits and no allocation | Cheap | §III: "only idle VCs may be gated" |
//! | *flit conservation* — injected = delivered + in-flight | Cheap | credit-based wormhole substrate |
//! | *VC state consistency* — an `Active` input VC references an `Active` output VC | Full | Garnet `Router_d` state machine |
//! | *credit conservation* — credits + buffered + in-flight = depth, per channel | Full | credit-based flow control |
//! | *idle-on budget* — at most `k` idle-on VCs per port pair | on request | Algorithm 2's single-designation property |
//! | *duty closure* — stress + recovery = powered-era cycles | harness | §III-A NBTI-duty-cycle definition |
//!
//! The first four are structural and checked inside `noc-sim`; the last two
//! involve policy/monitor knowledge and are driven by the experiment
//! harness through [`crate::network::Network::check_idle_on_budget`] and
//! the `sensorwise` crate's duty accounting.
//!
//! Violations are *recorded*, not panicked on, so fault-injection tests and
//! the model-check harness can observe diagnostics; asserting emptiness is
//! the caller's job.

use std::fmt;
use std::str::FromStr;

/// How much invariant checking the network performs per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InvariantLevel {
    /// No checking (production sweeps).
    #[default]
    Off,
    /// O(ports × VCs) structural checks every cycle: gating safety and
    /// flit conservation.
    Cheap,
    /// Everything in `Cheap` plus per-channel credit conservation and VC
    /// state-machine consistency every cycle (model checking, CI).
    Full,
}

impl InvariantLevel {
    /// `true` unless the level is [`InvariantLevel::Off`].
    pub fn is_enabled(self) -> bool {
        self != InvariantLevel::Off
    }
}

impl fmt::Display for InvariantLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantLevel::Off => write!(f, "off"),
            InvariantLevel::Cheap => write!(f, "cheap"),
            InvariantLevel::Full => write!(f, "full"),
        }
    }
}

/// Error returned when parsing an [`InvariantLevel`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseInvariantLevelError(String);

impl fmt::Display for ParseInvariantLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown invariant level `{}` (expected off, cheap or full)",
            self.0
        )
    }
}

impl std::error::Error for ParseInvariantLevelError {}

impl FromStr for InvariantLevel {
    type Err = ParseInvariantLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(InvariantLevel::Off),
            "cheap" => Ok(InvariantLevel::Cheap),
            "full" => Ok(InvariantLevel::Full),
            other => Err(ParseInvariantLevelError(other.to_string())),
        }
    }
}

/// Which protocol property a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// A power-gated VC holds flits, or an allocated VC is unpowered.
    GatingSafety,
    /// Injected flits ≠ delivered flits + flits in the network.
    FlitConservation,
    /// An `Active` input VC references an output VC that is not `Active`
    /// (or a streaming NIC references an idle inject VC).
    VcStateConsistency,
    /// For one upstream/downstream channel: credits held + credits in
    /// flight + flits buffered + flits in flight ≠ buffer depth.
    CreditConservation,
    /// More idle-on (powered but unallocated) VCs on a port than the
    /// policy's designation budget allows.
    IdleOnBudget,
    /// A VC's stress + recovery cycle counts do not add up to the cycles
    /// it was monitored for.
    DutyClosure,
}

impl InvariantKind {
    /// Stable kebab-case identifier (used in diagnostics and CI output).
    pub fn id(self) -> &'static str {
        match self {
            InvariantKind::GatingSafety => "gating-safety",
            InvariantKind::FlitConservation => "flit-conservation",
            InvariantKind::VcStateConsistency => "vc-state-consistency",
            InvariantKind::CreditConservation => "credit-conservation",
            InvariantKind::IdleOnBudget => "idle-on-budget",
            InvariantKind::DutyClosure => "duty-closure",
        }
    }
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One detected protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The cycle whose end-of-cycle check detected the violation.
    pub cycle: u64,
    /// The broken property.
    pub kind: InvariantKind,
    /// Human-readable location and evidence.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}: [{}] {}", self.cycle, self.kind, self.detail)
    }
}

/// Cap on the violations a network keeps in memory. Every violation is
/// still *counted* in [`crate::stats::NetStats::invariant_violations`];
/// only the detailed records stop accumulating, so a long broken run
/// cannot exhaust memory.
pub const MAX_RECORDED_VIOLATIONS: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parses_round_trip() {
        for level in [
            InvariantLevel::Off,
            InvariantLevel::Cheap,
            InvariantLevel::Full,
        ] {
            assert_eq!(level.to_string().parse::<InvariantLevel>(), Ok(level));
        }
        assert!("FULL".parse::<InvariantLevel>().is_err());
        let err = "x".parse::<InvariantLevel>().unwrap_err();
        assert!(err.to_string().contains("unknown invariant level"));
    }

    #[test]
    fn level_default_is_off_and_enablement_matches() {
        assert_eq!(InvariantLevel::default(), InvariantLevel::Off);
        assert!(!InvariantLevel::Off.is_enabled());
        assert!(InvariantLevel::Cheap.is_enabled());
        assert!(InvariantLevel::Full.is_enabled());
    }

    #[test]
    fn violation_display_carries_kind_and_cycle() {
        let v = InvariantViolation {
            cycle: 42,
            kind: InvariantKind::CreditConservation,
            detail: "r0-E vc1: 3 + 0 + 0 + 0 != 4".to_string(),
        };
        let s = v.to_string();
        assert!(s.contains("cycle 42"), "{s}");
        assert!(s.contains("credit-conservation"), "{s}");
    }

    #[test]
    fn kind_ids_are_unique() {
        let kinds = [
            InvariantKind::GatingSafety,
            InvariantKind::FlitConservation,
            InvariantKind::VcStateConsistency,
            InvariantKind::CreditConservation,
            InvariantKind::IdleOnBudget,
            InvariantKind::DutyClosure,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.id(), b.id());
            }
        }
    }
}
