//! Canonical state encoding for exhaustive protocol exploration.
//!
//! The `noc-modelcheck` crate enumerates every reachable whole-cycle state
//! of a small mesh by breadth-first search. This module provides the piece
//! that must live inside `noc-sim` because it reads router/NIC internals:
//! a **compact canonical byte encoding** of a [`Network`]'s
//! behaviour-relevant state, plus the symmetry relabelings the explorer
//! uses to merge orbit-equivalent states.
//!
//! # The encoding contract
//!
//! [`encode`] packs, per router and NIC, everything that can influence any
//! future cycle:
//!
//! * per input VC: power state, the VA state machine
//!   (`Idle`/`Waiting`/`Active` with routed outport and allocated out-VC),
//!   the VA-ready delay and the buffered flits,
//! * the in-flight flit arrival queue of every input unit (relative due
//!   times),
//! * per output VC: allocation state, credit count, allocatability and
//!   wake-up delay; plus the in-flight credit queue,
//! * every round-robin arbiter pointer (VA, SA per-output, SA per-input),
//! * NIC injection queue, streaming state and eject-side buffers.
//!
//! Everything time-like is encoded *relative* to the current cycle
//! (saturating at zero, capped at [`DELTA_CAP`]), so two states reached at
//! different absolute cycles compare equal when their future behaviour is
//! identical. Packet identifiers are renumbered in order of first
//! appearance inside the scan for the same reason. Statistics counters,
//! flit sources and injection timestamps are deliberately excluded: they
//! never feed back into simulation decisions.
//!
//! States may only be encoded at the cycle boundary
//! ([`Network::at_cycle_boundary`]): the mid-cycle controller slot is not a
//! state of the explored transition system, it is *part of the transition*.
//!
//! # Symmetry reduction
//!
//! [`encode_canonical`] returns the lexicographic minimum of the encoding
//! over a symmetry group: the mesh reflections that preserve XY routing
//! (identity, X flip, Y flip and their composition — 90° rotations swap
//! the routing dimensions and are therefore *not* automorphisms) crossed
//! with all virtual-channel permutations. Round-robin arbiter pointers are
//! **excluded** from the relabeled encodings: a pointer is an index into a
//! fixed cyclic order, and a mesh/VC relabeling is not in general a cyclic
//! rotation, so no relabeled pointer value would be faithful. Canonical
//! mode therefore merges states *up to arbitration fairness position* — a
//! documented abstraction (bugs that depend on a specific round-robin
//! phase can hide in a merged orbit), which is why the exhaustive CI gate
//! runs with symmetry off and the `--symmetry` mode is an opt-in
//! state-count reducer.

use crate::flit::{Flit, FlitKind, PacketId};
use crate::network::Network;
use crate::router::NUM_PORTS;
use crate::types::Direction;
use crate::unit::{InVcState, InputUnit, OutVcState, OutputUnit};
use noc_telemetry::TraceSink;
use std::collections::BTreeMap;

/// Relative times saturate at this value in the encoding. Latencies in an
/// explorable configuration are single-digit cycles, so the cap is never
/// reached by a behaviour-relevant delta.
pub const DELTA_CAP: u64 = 255;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a hash — the seen-set key of the explorer.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A relabeling of the mesh: node, direction and VC permutations, stored
/// as inverse maps (`*_inv[new] = old`) for the encoder's scan order plus
/// forward maps (`*_fwd[old] = new`) for values embedded in the state.
#[derive(Debug, Clone)]
struct Relabel {
    node_fwd: Vec<usize>,
    node_inv: Vec<usize>,
    dir_fwd: [usize; NUM_PORTS],
    dir_inv: [usize; NUM_PORTS],
    vc_fwd: Vec<usize>,
    vc_inv: Vec<usize>,
    /// Identity relabelings keep arbiter pointers in the encoding; see the
    /// module docs for why relabeled pointers are dropped.
    identity: bool,
}

impl Relabel {
    fn identity(nodes: usize, vcs: usize) -> Self {
        Relabel {
            node_fwd: (0..nodes).collect(),
            node_inv: (0..nodes).collect(),
            dir_fwd: [0, 1, 2, 3, 4],
            dir_inv: [0, 1, 2, 3, 4],
            vc_fwd: (0..vcs).collect(),
            vc_inv: (0..vcs).collect(),
            identity: true,
        }
    }
}

/// Inverts a permutation.
fn invert(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        inv[new] = old;
    }
    inv
}

/// All permutations of `0..n` in deterministic (lexicographic) order.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn rec(prefix: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..rest.len() {
            let v = rest.remove(i);
            prefix.push(v);
            rec(prefix, rest, out);
            prefix.pop();
            rest.insert(i, v);
        }
    }
    let mut out = Vec::new();
    rec(&mut Vec::new(), &mut (0..n).collect(), &mut out);
    out
}

/// The XY-routing-preserving mesh symmetries crossed with VC permutations.
/// VC permutation counts are capped at `4! = 24` (beyond that the orbit
/// sweep would dominate the exploration itself); larger configurations
/// fall back to the spatial group alone.
fn symmetry_group(cols: usize, rows: usize, vcs: usize) -> Vec<Relabel> {
    let nodes = cols * rows;
    let vc_perms = if vcs <= 4 {
        permutations(vcs)
    } else {
        vec![(0..vcs).collect()]
    };
    let mut group = Vec::new();
    for flip_x in [false, true] {
        for flip_y in [false, true] {
            let node_fwd: Vec<usize> = (0..nodes)
                .map(|n| {
                    let (x, y) = (n % cols, n / cols);
                    let x = if flip_x { cols - 1 - x } else { x };
                    let y = if flip_y { rows - 1 - y } else { y };
                    y * cols + x
                })
                .collect();
            let mut dir_fwd = [0usize; NUM_PORTS];
            for d in Direction::ALL {
                let mapped = match d {
                    Direction::East if flip_x => Direction::West,
                    Direction::West if flip_x => Direction::East,
                    Direction::North if flip_y => Direction::South,
                    Direction::South if flip_y => Direction::North,
                    other => other,
                };
                dir_fwd[d.index()] = mapped.index();
            }
            for vc_fwd in &vc_perms {
                let identity = !flip_x
                    && !flip_y
                    && vc_fwd.iter().enumerate().all(|(i, &v)| i == v);
                group.push(Relabel {
                    node_fwd: node_fwd.clone(),
                    node_inv: invert(&node_fwd),
                    dir_fwd,
                    dir_inv: {
                        let inv = invert(&dir_fwd);
                        [inv[0], inv[1], inv[2], inv[3], inv[4]]
                    },
                    vc_fwd: vc_fwd.clone(),
                    vc_inv: invert(vc_fwd),
                    identity,
                });
            }
        }
    }
    group
}

/// Encoder scratch state: the output buffer plus the packet-id renumbering
/// established in scan order.
struct Encoder<'a> {
    out: Vec<u8>,
    ids: BTreeMap<u64, u8>,
    now: u64,
    relabel: &'a Relabel,
}

impl Encoder<'_> {
    fn push(&mut self, b: u8) {
        self.out.push(b);
    }

    fn delta(&mut self, t: u64) {
        self.push(t.saturating_sub(self.now).min(DELTA_CAP) as u8);
    }

    fn packet(&mut self, id: PacketId) {
        let next = self.ids.len() as u8;
        let v = *self.ids.entry(id.0).or_insert(next);
        self.push(v);
    }

    fn flit(&mut self, f: &Flit) {
        self.packet(f.packet);
        self.push(match f.kind {
            FlitKind::Head => 0,
            FlitKind::Body => 1,
            FlitKind::Tail => 2,
            FlitKind::HeadTail => 3,
        });
        self.push(self.relabel.node_fwd[f.dst.index()] as u8);
        self.push(f.seq.min(255) as u8);
        self.push(self.relabel.vc_fwd[f.vc] as u8);
        self.delta(f.ready_at);
    }

    fn input_unit(&mut self, unit: &InputUnit) {
        let vcs = self.relabel.vc_inv.len();
        for new_v in 0..vcs {
            let vc = &unit.vcs[self.relabel.vc_inv[new_v]];
            self.push(u8::from(vc.powered));
            match vc.state {
                InVcState::Idle => {
                    self.push(0);
                    self.push(0);
                    self.push(0);
                }
                InVcState::Waiting { outport } => {
                    self.push(1);
                    self.push(self.relabel.dir_fwd[outport.index()] as u8);
                    self.push(0);
                }
                InVcState::Active { outport, out_vc } => {
                    self.push(2);
                    self.push(self.relabel.dir_fwd[outport.index()] as u8);
                    self.push(self.relabel.vc_fwd[out_vc] as u8);
                }
            }
            self.delta(vc.va_ready_at);
            self.push(vc.buffer.len() as u8);
            for f in &vc.buffer {
                self.flit(f);
            }
        }
        self.push(unit.arrivals.len() as u8);
        for (due, f) in &unit.arrivals {
            self.delta(*due);
            self.flit(f);
        }
    }

    /// `ports` is the size of the output unit's input-port space (routers:
    /// [`NUM_PORTS`], NIC injectors: 1); the VA arbiter indexes the flat
    /// `(port, vc)` space.
    fn output_unit(&mut self, unit: &OutputUnit, ports: usize) {
        let vcs = self.relabel.vc_inv.len();
        for new_v in 0..vcs {
            let vc = &unit.vcs[self.relabel.vc_inv[new_v]];
            self.push(u8::from(vc.state == OutVcState::Active));
            self.push(vc.credits as u8);
            self.push(u8::from(vc.allocatable));
            self.delta(vc.usable_at);
        }
        self.push(unit.credit_arrivals.len() as u8);
        for &(due, credit) in &unit.credit_arrivals {
            self.delta(due);
            self.push(self.relabel.vc_fwd[credit.vc] as u8);
            self.push(u8::from(credit.is_free));
        }
        if self.relabel.identity {
            let _ = ports;
            self.push(unit.va_arb.priority() as u8);
            self.push(unit.sa_arb.priority() as u8);
        }
    }
}

/// Encodes the network state with the given relabeling.
fn encode_with<T: TraceSink>(net: &Network<T>, relabel: &Relabel) -> Vec<u8> {
    assert!(
        net.at_cycle_boundary(),
        "states are only encoded at the cycle boundary"
    );
    let vcs = net.config().vcs_per_port;
    let mut e = Encoder {
        out: Vec::with_capacity(1024),
        ids: BTreeMap::new(),
        now: net.cycle(),
        relabel,
    };
    let nodes = net.topology().num_nodes();
    for new_n in 0..nodes {
        let old_n = relabel.node_inv[new_n];
        let router = &net.routers[old_n];
        for new_d in 0..NUM_PORTS {
            let old_d = relabel.dir_inv[new_d];
            e.input_unit(&router.inputs[old_d]);
        }
        for new_d in 0..NUM_PORTS {
            let old_d = relabel.dir_inv[new_d];
            e.output_unit(&router.outputs[old_d], NUM_PORTS);
        }
        if relabel.identity {
            for new_d in 0..NUM_PORTS {
                let old_d = relabel.dir_inv[new_d];
                e.push(router.sa_in_arbs[old_d].priority() as u8);
            }
        }
        let nic = &net.nics[old_n];
        e.push(nic.queue.len() as u8);
        for p in &nic.queue {
            let (id, dst, len) = (p.id, p.dst, p.len);
            e.packet(id);
            e.push(relabel.node_fwd[dst.index()] as u8);
            e.push(len.min(255) as u8);
        }
        match &nic.current {
            None => e.push(0),
            Some(tx) => {
                let (id, dst, len, seq, out_vc) = (
                    tx.packet.id,
                    tx.packet.dst,
                    tx.packet.len,
                    tx.next_seq,
                    tx.out_vc,
                );
                e.push(1);
                e.packet(id);
                e.push(relabel.node_fwd[dst.index()] as u8);
                e.push(len.min(255) as u8);
                e.push(seq.min(255) as u8);
                e.push(relabel.vc_fwd[out_vc] as u8);
            }
        }
        e.output_unit(&nic.inject, 1);
        e.input_unit(&nic.eject);
    }
    debug_assert!(vcs <= 255, "encoding uses one byte per VC index");
    e.out
}

/// The exact whole-cycle state encoding (identity relabeling, arbiter
/// pointers included). Two networks with equal encodings behave
/// identically under identical future inputs.
///
/// # Panics
///
/// Panics when called mid-cycle (between [`Network::begin_cycle`] and
/// [`Network::finish_cycle`]).
pub fn encode<T: TraceSink>(net: &Network<T>) -> Vec<u8> {
    encode_with(net, &Relabel::identity(net.topology().num_nodes(), net.config().vcs_per_port))
}

/// The canonical encoding under the symmetry group (see the module docs
/// for the group and the arbiter-pointer abstraction): the lexicographic
/// minimum over every orbit member.
///
/// # Panics
///
/// Panics when called mid-cycle.
pub fn encode_canonical<T: TraceSink>(net: &Network<T>) -> Vec<u8> {
    let cfg = net.config();
    symmetry_group(cfg.cols, cfg.rows, cfg.vcs_per_port)
        .iter()
        .map(|r| {
            // Canonical mode drops arbiter pointers from *every* orbit
            // member (identity included) so orbit members compare over the
            // same fields.
            let mut r = r.clone();
            r.identity = false;
            encode_with(net, &r)
        })
        .min()
        // The group always contains at least the identity.
        .unwrap_or_default()
}

/// The number of relabelings [`encode_canonical`] sweeps for a
/// configuration (4 spatial × `min(V, 4)!` VC permutations).
pub fn orbit_size(cols: usize, rows: usize, vcs: usize) -> usize {
    symmetry_group(cols, rows, vcs).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::types::NodeId;

    fn small() -> NocConfig {
        NocConfig {
            cols: 2,
            rows: 2,
            vcs_per_port: 2,
            buffer_depth: 2,
            flits_per_packet: 2,
            ..NocConfig::default()
        }
    }

    #[test]
    fn identical_histories_encode_identically() {
        let mut a = Network::new(small()).unwrap();
        let mut b = Network::new(small()).unwrap();
        for net in [&mut a, &mut b] {
            net.inject_packet(NodeId(0), NodeId(3));
            for _ in 0..5 {
                net.step();
            }
        }
        assert_eq!(encode(&a), encode(&b));
        assert_eq!(encode_canonical(&a), encode_canonical(&b));
    }

    #[test]
    fn a_step_with_traffic_changes_the_encoding() {
        let mut net = Network::new(small()).unwrap();
        let before = encode(&net);
        net.inject_packet(NodeId(0), NodeId(3));
        net.step();
        assert_ne!(before, encode(&net));
    }

    #[test]
    fn encoding_is_relative_to_the_current_cycle() {
        // An empty network idling forward stays in the same canonical
        // state: absolute time must not leak into the encoding.
        let mut net = Network::new(small()).unwrap();
        let fresh = encode(&net);
        for _ in 0..7 {
            net.step();
        }
        assert_eq!(fresh, encode(&net));
    }

    #[test]
    fn mirrored_scenarios_share_a_canonical_encoding() {
        // Injecting 0→3 and its 180°-rotated twin 3→0 are the same state
        // up to relabeling before any arbitration has happened.
        let mut a = Network::new(small()).unwrap();
        let mut b = Network::new(small()).unwrap();
        a.inject_packet(NodeId(0), NodeId(3));
        b.inject_packet(NodeId(3), NodeId(0));
        assert_ne!(encode(&a), encode(&b));
        assert_eq!(encode_canonical(&a), encode_canonical(&b));
    }

    #[test]
    fn orbit_size_matches_the_group() {
        assert_eq!(orbit_size(2, 2, 2), 4 * 2);
        assert_eq!(orbit_size(2, 2, 3), 4 * 6);
        assert_eq!(orbit_size(3, 3, 5), 4);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    #[should_panic(expected = "cycle boundary")]
    fn encoding_mid_cycle_panics() {
        let mut net = Network::new(small()).unwrap();
        net.begin_cycle();
        let _ = encode(&net);
    }
}
