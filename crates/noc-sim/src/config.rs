//! Simulator configuration.

use crate::routing::RoutingAlgorithm;
use crate::topology::{AnyTopology, IrregularTopology, MeshTopology, RingTopology, TorusTopology};

/// Which fabric graph the NoC is built on.
///
/// `cols`/`rows` keep their meaning per kind: a mesh or torus is
/// `cols × rows`; a ring or irregular fabric has `cols * rows` nodes (use
/// `rows = 1` for the natural spelling). The default is the paper's mesh,
/// so every pre-existing configuration — and its telemetry digest — is
/// unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TopologyKind {
    /// The paper's 2D mesh, routed by [`NocConfig::routing`].
    #[default]
    Mesh,
    /// A 2D torus: the mesh plus wrap links (idle under the
    /// dateline-avoiding routing, and therefore maximally NBTI-stressed).
    Torus,
    /// A 1-D ring with `cw`/`ccw` ports, routed as a cut linear array.
    Ring,
    /// An arbitrary connected degree-≤4 graph over the node count, routed
    /// up-down along its BFS spanning tree.
    Irregular {
        /// Undirected edges as node-index pairs.
        edges: Vec<(usize, usize)>,
    },
}

impl TopologyKind {
    /// The short kind name used by the CLI and the job codec.
    pub fn name(&self) -> &'static str {
        match self {
            TopologyKind::Mesh => "mesh",
            TopologyKind::Torus => "torus",
            TopologyKind::Ring => "ring",
            TopologyKind::Irregular { .. } => "irregular",
        }
    }
}

/// Static configuration of a simulated NoC.
///
/// The defaults reproduce the paper's router: a 3-stage wormhole-switched
/// virtual-channel router with 4-flit-deep buffers on a 2D mesh, 1-cycle
/// links and credit return.
///
/// ```
/// use noc_sim::config::NocConfig;
///
/// let cfg = NocConfig::paper_synthetic(4, 2); // 4-core mesh, 2 VCs
/// assert_eq!(cfg.num_nodes(), 4);
/// assert_eq!(cfg.vcs_per_port, 2);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocConfig {
    /// Mesh columns.
    pub cols: usize,
    /// Mesh rows.
    pub rows: usize,
    /// Virtual channels per input port (paper: 2 or 4).
    pub vcs_per_port: usize,
    /// Buffer depth per VC in flits (paper: 4).
    pub buffer_depth: usize,
    /// Default packet length in flits.
    pub flits_per_packet: usize,
    /// Link traversal latency in cycles (paper: 1).
    pub link_latency: u64,
    /// Credit return latency in cycles.
    pub credit_latency: u64,
    /// Sleep-transistor wake-up penalty in cycles: a power-gated VC buffer
    /// becomes allocatable this many cycles after being switched back on.
    /// The paper's header-PMOS gating is modelled as instantaneous (0);
    /// the `ablation_wakeup` bench sweeps this.
    pub wakeup_latency: u64,
    /// Routing algorithm (used by the mesh topology; the other fabrics
    /// carry their own deadlock-free routing function).
    pub routing: RoutingAlgorithm,
    /// Fabric graph (default: the paper's 2D mesh).
    pub topology: TopologyKind,
}

/// Error returned by [`NocConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidConfigError(String);

impl std::fmt::Display for InvalidConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid NoC configuration: {}", self.0)
    }
}

impl std::error::Error for InvalidConfigError {}

impl NocConfig {
    /// The paper's synthetic-traffic setup: a square mesh with `num_cores`
    /// tiles (must be a perfect square) and the given VC count.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is not a perfect square.
    pub fn paper_synthetic(num_cores: usize, vcs: usize) -> Self {
        let k = (num_cores as f64).sqrt().round() as usize;
        assert_eq!(k * k, num_cores, "num_cores must be a perfect square");
        NocConfig {
            cols: k,
            rows: k,
            vcs_per_port: vcs,
            ..NocConfig::default()
        }
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.cols * self.rows
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns an error if any dimension, VC count, buffer depth or packet
    /// length is zero, or latencies are zero.
    pub fn validate(&self) -> Result<(), InvalidConfigError> {
        let fail = |msg: &str| Err(InvalidConfigError(msg.to_string()));
        if self.cols == 0 || self.rows == 0 {
            return fail("mesh dimensions must be positive");
        }
        if self.vcs_per_port == 0 {
            return fail("at least one virtual channel per port is required");
        }
        if self.buffer_depth == 0 {
            return fail("buffer depth must be positive");
        }
        if self.flits_per_packet == 0 {
            return fail("packets must have at least one flit");
        }
        if self.link_latency == 0 || self.credit_latency == 0 {
            return fail("link and credit latencies must be at least one cycle");
        }
        if let Err(e) = self.build_topology() {
            return Err(InvalidConfigError(e.to_string()));
        }
        Ok(())
    }

    /// Builds the concrete fabric this configuration describes.
    ///
    /// # Errors
    ///
    /// Returns an error when an irregular edge list does not describe a
    /// valid fabric over `num_nodes()` nodes.
    pub fn build_topology(&self) -> Result<AnyTopology, InvalidConfigError> {
        Ok(match &self.topology {
            TopologyKind::Mesh => {
                AnyTopology::Mesh(MeshTopology::new(self.cols, self.rows, self.routing))
            }
            TopologyKind::Torus => AnyTopology::Torus(TorusTopology::new(self.cols, self.rows)),
            TopologyKind::Ring => AnyTopology::Ring(RingTopology::new(self.num_nodes())),
            TopologyKind::Irregular { edges } => AnyTopology::Irregular(
                IrregularTopology::new(self.num_nodes(), edges)
                    .map_err(|e| InvalidConfigError(format!("irregular topology: {e}")))?,
            ),
        })
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            cols: 4,
            rows: 4,
            vcs_per_port: 4,
            buffer_depth: 4,
            flits_per_packet: 5,
            link_latency: 1,
            credit_latency: 1,
            wakeup_latency: 0,
            routing: RoutingAlgorithm::XY,
            topology: TopologyKind::Mesh,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn default_is_valid() {
        NocConfig::default().validate().unwrap();
    }

    #[test]
    fn paper_presets() {
        let c4 = NocConfig::paper_synthetic(4, 2);
        assert_eq!((c4.cols, c4.rows), (2, 2));
        let c16 = NocConfig::paper_synthetic(16, 4);
        assert_eq!((c16.cols, c16.rows), (4, 4));
        assert_eq!(c16.vcs_per_port, 4);
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn non_square_core_count_panics() {
        let _ = NocConfig::paper_synthetic(6, 2);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let base = NocConfig::default();
        let cases: Vec<(NocConfig, &str)> = vec![
            (
                NocConfig {
                    cols: 0,
                    ..base.clone()
                },
                "dimensions",
            ),
            (
                NocConfig {
                    vcs_per_port: 0,
                    ..base.clone()
                },
                "virtual channel",
            ),
            (
                NocConfig {
                    buffer_depth: 0,
                    ..base.clone()
                },
                "buffer depth",
            ),
            (
                NocConfig {
                    flits_per_packet: 0,
                    ..base.clone()
                },
                "at least one flit",
            ),
            (
                NocConfig {
                    link_latency: 0,
                    ..base.clone()
                },
                "latencies",
            ),
            (
                NocConfig {
                    credit_latency: 0,
                    ..base
                },
                "latencies",
            ),
        ];
        for (cfg, needle) in cases {
            let err = cfg.validate().unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn bad_irregular_edges_fail_validation() {
        let cfg = NocConfig {
            cols: 4,
            rows: 1,
            topology: TopologyKind::Irregular {
                edges: vec![(0, 1), (2, 3)],
            },
            ..NocConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("not connected"), "{err}");
    }

    #[test]
    fn every_topology_kind_builds() {
        for kind in [
            TopologyKind::Mesh,
            TopologyKind::Torus,
            TopologyKind::Ring,
            TopologyKind::Irregular {
                edges: vec![(0, 1), (1, 2), (2, 3), (0, 2)],
            },
        ] {
            let cfg = NocConfig {
                cols: 2,
                rows: 2,
                topology: kind.clone(),
                ..NocConfig::default()
            };
            let topo = cfg.build_topology().unwrap();
            assert_eq!(topo.num_nodes(), 4, "{}", kind.name());
        }
    }
}
