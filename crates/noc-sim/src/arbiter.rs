//! Round-robin arbitration.
//!
//! Used by the VC allocator and both stages of the separable switch
//! allocator. The arbiter remembers the last grantee and gives lowest
//! priority to it in the next round, which guarantees strong fairness among
//! persistent requesters.

/// A round-robin arbiter over `n` requesters.
///
/// ```
/// use noc_sim::arbiter::RoundRobinArbiter;
///
/// let mut arb = RoundRobinArbiter::new(3);
/// // Everyone requests: grants rotate.
/// assert_eq!(arb.grant(|_| true), Some(0));
/// assert_eq!(arb.grant(|_| true), Some(1));
/// assert_eq!(arb.grant(|_| true), Some(2));
/// assert_eq!(arb.grant(|_| true), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRobinArbiter {
    n: usize,
    /// Index with highest priority in the next round.
    next: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requester");
        RoundRobinArbiter { n, next: 0 }
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// The index that holds highest priority in the next round — the
    /// arbiter's only mutable state, exposed for snapshot/restore.
    pub fn priority(&self) -> usize {
        self.next
    }

    /// Restores a priority pointer previously read with
    /// [`priority`](Self::priority).
    ///
    /// # Panics
    ///
    /// Panics if `next` is out of range for this arbiter.
    pub fn set_priority(&mut self, next: usize) {
        assert!(next < self.n, "priority {next} out of range (n = {})", self.n);
        self.next = next;
    }

    /// Always `false`: the constructor rejects zero requesters.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Grants the highest-priority index for which `requesting` returns
    /// `true`, advancing the priority pointer past the grantee. Returns
    /// `None` (and leaves priority unchanged) when nobody requests.
    pub fn grant<F: FnMut(usize) -> bool>(&mut self, mut requesting: F) -> Option<usize> {
        for off in 0..self.n {
            let idx = (self.next + off) % self.n;
            if requesting(idx) {
                self.next = (idx + 1) % self.n;
                return Some(idx);
            }
        }
        None
    }

    /// Like [`grant`](Self::grant) but does not rotate priority — used to
    /// peek at who would win.
    pub fn peek<F: FnMut(usize) -> bool>(&self, mut requesting: F) -> Option<usize> {
        (0..self.n)
            .map(|off| (self.next + off) % self.n)
            .find(|&idx| requesting(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_requester_always_wins() {
        let mut arb = RoundRobinArbiter::new(4);
        for _ in 0..10 {
            assert_eq!(arb.grant(|i| i == 2), Some(2));
        }
    }

    #[test]
    fn no_request_no_grant() {
        let mut arb = RoundRobinArbiter::new(4);
        assert_eq!(arb.grant(|_| false), None);
        // Priority unchanged: index 0 wins next.
        assert_eq!(arb.grant(|_| true), Some(0));
    }

    #[test]
    fn fairness_among_persistent_requesters() {
        let mut arb = RoundRobinArbiter::new(5);
        let mut counts = [0usize; 5];
        for _ in 0..100 {
            let g = arb.grant(|i| i == 1 || i == 3).unwrap();
            counts[g] += 1;
        }
        assert_eq!(counts[1], 50);
        assert_eq!(counts[3], 50);
    }

    #[test]
    fn peek_does_not_rotate() {
        let mut arb = RoundRobinArbiter::new(3);
        assert_eq!(arb.peek(|_| true), Some(0));
        assert_eq!(arb.peek(|_| true), Some(0));
        assert_eq!(arb.grant(|_| true), Some(0));
        assert_eq!(arb.peek(|_| true), Some(1));
    }

    #[test]
    #[should_panic(expected = "at least one requester")]
    fn zero_requesters_panics() {
        let _ = RoundRobinArbiter::new(0);
    }
}
